//! A dependability drill: crash a firewall mid-operation, watch the
//! blackholed traffic being *counted* (never silently bypassing its
//! chain), then let the controller recompute and restore full delivery —
//! all through the public API.
//!
//! Run with: `cargo run --release --example failure_drill`

use sdm::core::{
    Controller, Deployment, EnforcementOptions, KConfig, MiddleboxSpec, SteerPoint, Strategy,
};
use sdm::netsim::{FiveTuple, Protocol, StubId};
use sdm::policy::{ActionList, NetworkFunction, Policy, PolicySet, TrafficDescriptor};
use sdm::topology::campus::campus;

fn flows(c: &Controller, n: u16) -> Vec<FiveTuple> {
    (0..n)
        .map(|i| FiveTuple {
            src: c.addr_plan().host(StubId((i % 10) as u32), 0),
            dst: c.addr_plan().host(StubId(((i + 3) % 10) as u32), 0),
            src_port: 20_000 + i,
            dst_port: 80,
            proto: Protocol::Tcp,
        })
        .collect()
}

fn main() {
    use NetworkFunction::*;
    let plan = campus(8);
    let mut dep = Deployment::new();
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
    dep.add(MiddleboxSpec::new(Firewall, plan.cores()[8], 1.0));
    dep.add(MiddleboxSpec::new(Ids, plan.cores()[4], 1.0));
    let mut policies = PolicySet::new();
    policies.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([Firewall, Ids]),
    ));
    let mut controller = Controller::new(plan, dep, policies, KConfig::uniform(2));
    let traffic = flows(&controller, 200);

    // Phase 0: healthy.
    let mut enf = controller.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    for &ft in &traffic {
        enf.inject_flow(ft, 5, 300);
    }
    enf.run();
    println!(
        "phase 0 (healthy):    delivered {:>4} / 1000",
        enf.sim().stats().delivered
    );

    // Phase 1: crash the firewall stub 0 depends on; stale config keeps
    // steering into the black hole.
    let victim = controller
        .assignments()
        .closest(SteerPoint::Proxy(StubId(0)), NetworkFunction::Firewall)
        .expect("a firewall exists");
    let mut enf = controller.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    enf.fail_middlebox(victim);
    for &ft in &traffic {
        enf.inject_flow(ft, 5, 300);
    }
    enf.run();
    let lost = enf.mbox_state(victim).lock().counters.dropped_failed;
    println!(
        "phase 1 (crashed {victim}): delivered {:>4} / 1000, {lost} blackholed (counted, not bypassed)",
        enf.sim().stats().delivered
    );

    // Phase 2: the controller reacts.
    controller.fail_middlebox(victim);
    let mut enf = controller.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    enf.fail_middlebox(victim); // still down in the data plane
    for &ft in &traffic {
        enf.inject_flow(ft, 5, 300);
    }
    enf.run();
    println!(
        "phase 2 (recomputed): delivered {:>4} / 1000, victim load {}",
        enf.sim().stats().delivered,
        enf.middlebox_loads()[victim.index()]
    );
    assert_eq!(enf.sim().stats().delivered, 1000);

    // Phase 3: the box comes back.
    controller.restore_middlebox(victim);
    let back = controller
        .assignments()
        .closest(SteerPoint::Proxy(StubId(0)), NetworkFunction::Firewall)
        .unwrap();
    println!("phase 3 (restored):   {victim} is once again a candidate (closest = {back})");
}
