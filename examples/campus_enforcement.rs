//! The paper's evaluation pipeline on the campus topology, end to end:
//! generate the three policy classes and a power-law workload, run
//! hot-potato enforcement (whose proxies measure traffic), let the
//! controller solve the Eq. (2) load-balancing LP, then rerun the same
//! traffic load-balanced and compare per-type maximum loads.
//!
//! Run with: `cargo run --release --example campus_enforcement`

use sdm::core::{Controller, Deployment, EnforcementOptions, KConfig, LbOptions, Strategy};
use sdm::netsim::AddressPlan;
use sdm::policy::NetworkFunction;
use sdm::topology::campus::campus;
use sdm::workload::{evaluation_policies, generate_flows_with_total, PolicyClassCounts,
                    WorkloadConfig};

const TOTAL_PACKETS: u64 = 1_000_000;

fn main() {
    let seed = 3;
    let plan = campus(seed);
    let deployment = Deployment::evaluation_default(&plan, seed + 1);
    let addrs = AddressPlan::new(&plan);
    let generated = evaluation_policies(&addrs, PolicyClassCounts::default(), seed + 2);
    println!(
        "campus world: {} middleboxes, {} policies, target {} packets",
        deployment.len(),
        generated.set.len(),
        TOTAL_PACKETS
    );
    let controller = Controller::new(
        plan,
        deployment.clone(),
        generated.set.clone(),
        KConfig::paper_default(),
    );
    let flows = generate_flows_with_total(
        &generated,
        controller.addr_plan(),
        &WorkloadConfig { seed, ..Default::default() },
        TOTAL_PACKETS,
    );
    println!("generated {} flows", flows.len());

    // Pass 1: hot-potato. Proxies measure T_{s,d,p} while enforcing.
    let mut hp = controller.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    for f in &flows {
        hp.inject_flow(f.five_tuple, f.packets, 512);
    }
    hp.run();
    let measurements = hp.measurements();
    println!(
        "hot-potato done: {} packets delivered, {} policy cells measured",
        hp.sim().stats().delivered + hp.sim().stats().delivered_external,
        measurements.len()
    );

    // Controller: solve the reduced load-balancing LP (Eq. 2).
    let (weights, report) = controller
        .solve_load_balanced(&measurements, LbOptions::default())
        .expect("LP must solve");
    println!(
        "LP solved: lambda = {:.0} packets on the worst box ({} vars, {} constraints, {} pivots)",
        report.lambda, report.variables, report.constraints, report.iterations
    );

    // Pass 2: the same flows, load-balanced.
    let mut lb = controller.enforcement(
        Strategy::LoadBalanced,
        Some(weights),
        EnforcementOptions::default(),
    );
    for f in &flows {
        lb.inject_flow(f.five_tuple, f.packets, 512);
    }
    lb.run();

    println!("\nper-type maximum load (packets), hot-potato vs load-balanced:");
    let hp_report = hp.load_report(&deployment);
    let lb_report = lb.load_report(&deployment);
    for f in [
        NetworkFunction::Firewall,
        NetworkFunction::Ids,
        NetworkFunction::WebProxy,
        NetworkFunction::TrafficMonitor,
    ] {
        let h = hp_report.row(f).map_or(0, |r| r.max);
        let l = lb_report.row(f).map_or(0, |r| r.max);
        println!(
            "  {:<4} HP {:>9}   LB {:>9}   ({:.1}% reduction)",
            f.abbrev(),
            h,
            l,
            100.0 * (1.0 - l as f64 / h.max(1) as f64)
        );
    }
}
