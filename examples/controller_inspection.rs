//! Inspecting what the controller computes and distributes (§III.B):
//! the hot-potato targets `m_x^e`, candidate sets `M_x^e`, per-node policy
//! tables `P_x`, and what happens to them when a middlebox fails.
//!
//! Run with: `cargo run --release --example controller_inspection`

use sdm::core::{Controller, Deployment, KConfig, SteerPoint};
use sdm::netsim::{AddressPlan, StubId};
use sdm::policy::NetworkFunction;
use sdm::topology::campus::campus;
use sdm::workload::{evaluation_policies, PolicyClassCounts};

fn main() {
    let plan = campus(3);
    let deployment = Deployment::evaluation_default(&plan, 4);
    let addrs = AddressPlan::new(&plan);
    let generated = evaluation_policies(&addrs, PolicyClassCounts::default(), 5);
    let mut controller = Controller::new(
        plan,
        deployment.clone(),
        generated.set.clone(),
        KConfig::paper_default(),
    );

    println!("deployment:\n{}", controller.deployment());

    // m_x^e and M_x^e for each proxy, per function (the controller pushes
    // exactly this to each proxy).
    println!("candidate sets M_x^e (closest first; index 0 is m_x^e):");
    for stub in controller.addr_plan().stubs().take(4) {
        println!("  proxy of {stub} (subnet {}):", controller.addr_plan().subnet(stub));
        for f in NetworkFunction::EVALUATION_SET {
            let cands = controller
                .assignments()
                .candidates(SteerPoint::Proxy(stub), f);
            let names: Vec<String> = cands.iter().map(|m| m.to_string()).collect();
            println!("    {:<4} -> [{}]", f.abbrev(), names.join(", "));
        }
    }

    // The policy tables the controller installs.
    let stub0 = StubId(0);
    let p0 = controller.proxy_policies(stub0);
    println!("\nP_x at the proxy of {stub0}: {} of {} policies", p0.len(), generated.set.len());
    let some_box = sdm::core::MiddleboxId(0);
    let pm = controller.middlebox_policies(some_box);
    println!(
        "P_x at middlebox m0 [{}]: {} policies (those whose chains use its function)",
        controller
            .deployment()
            .spec(some_box)
            .functions
            .iter()
            .map(|f| f.abbrev())
            .collect::<Vec<_>>()
            .join("+"),
        pm.len()
    );

    // §V scalability: what the controller actually has to distribute.
    let fp = controller.config_footprint(None);
    println!(
        "\nconfig footprint: {} managed devices (routers: 0), {} policy entries, \
{} candidate entries, ~{} bytes total",
        fp.managed_devices,
        fp.proxy_policy_entries + fp.mbox_policy_entries,
        fp.candidate_entries,
        fp.total_bytes()
    );

    // Failure reaction: candidate sets recompute without the failed box.
    let victim = controller
        .assignments()
        .closest(SteerPoint::Proxy(stub0), NetworkFunction::Firewall)
        .expect("a firewall exists");
    println!("\nfailing {victim} (the FW closest to {stub0})...");
    controller.fail_middlebox(victim);
    let after = controller
        .assignments()
        .candidates(SteerPoint::Proxy(stub0), NetworkFunction::Firewall);
    println!(
        "new M_x^FW for {stub0}: [{}] (victim gone, set refilled)",
        after.iter().map(|m| m.to_string()).collect::<Vec<_>>().join(", ")
    );
    assert!(!after.contains(&victim));
    controller.restore_middlebox(victim);
    println!("restored {victim}.");
}
