//! A walkthrough of the paper's §III.F example (Figure 3): web traffic
//! from stub network A is steered WP → FW → IDS. The first packet travels
//! IP-over-IP and installs label-table entries at each middlebox; the last
//! middlebox sends a control packet back to the proxy; every later packet
//! is label-switched — destination rewriting only, no encapsulation, no
//! fragmentation risk.
//!
//! Run with: `cargo run --release --example label_switching_walkthrough`

use sdm::core::{Controller, Deployment, EnforcementOptions, KConfig, MiddleboxId,
                MiddleboxSpec, SteeringEncoding, Strategy};
use sdm::netsim::{FiveTuple, Protocol, SimTime, StubId};
use sdm::policy::{ActionList, NetworkFunction, Policy, PolicySet, TrafficDescriptor};
use sdm::topology::campus::campus;

fn main() {
    let plan = campus(2);
    use NetworkFunction::*;

    // One middlebox per function, as in Figure 3.
    let mut deployment = Deployment::new();
    let wp = deployment.add(MiddleboxSpec::new(WebProxy, plan.cores()[2], 1.0));
    let fw = deployment.add(MiddleboxSpec::new(Firewall, plan.cores()[6], 1.0));
    let ids = deployment.add(MiddleboxSpec::new(Ids, plan.cores()[10], 1.0));

    // The Figure 3 policy: stub A's web traffic through WP -> FW -> IDS.
    let mut policies = PolicySet::new();
    policies.push(Policy::new(
        TrafficDescriptor::new().dst_port(80),
        ActionList::chain([WebProxy, Firewall, Ids]),
    ));

    let controller = Controller::new(plan, deployment, policies, KConfig::uniform(1));
    let mut enf = controller.enforcement(
        Strategy::HotPotato,
        None,
        EnforcementOptions {
            encoding: SteeringEncoding::LabelSwitching,
            ..Default::default()
        },
    );

    // A flow from stub A (stub 0) to a web server in stub 8.
    let flow = FiveTuple {
        src: controller.addr_plan().host(StubId(0), 1),
        dst: controller.addr_plan().host(StubId(8), 1),
        src_port: 50_000,
        dst_port: 80,
        proto: Protocol::Tcp,
    };
    println!("flow f: {flow}");
    println!("action list a: WP -> FW -> IDS\n");

    // Send the packets spaced out so the control packet round trip
    // completes after the first packet.
    enf.inject_flow_packets(flow, 20, 1000, SimTime(0), 200);
    enf.run();

    // Inspect the protocol state the walk left behind.
    let proxy = enf.proxy_state(StubId(0));
    {
        let p = proxy.lock();
        println!("policy proxy y (stub A):");
        println!("  flow table: {}", p.flows);
        println!("  control packets received: {}", p.counters.control_received);
        println!("  packets label-switched:   {}", p.counters.label_switched);
        println!("  packets tunneled:         {}",
                 p.counters.steered - p.counters.label_switched);
    }
    for (name, id) in [("web proxy", wp), ("FW1", fw), ("IDS", ids)] {
        let st = enf.mbox_state(id);
        let s = st.lock();
        println!(
            "{name}: label-table entries = {}, tunneled in = {}, label-switched in = {}",
            s.labels.len(),
            s.counters.tunneled_in,
            s.counters.label_switched_in
        );
    }
    let stats = enf.sim().stats();
    println!(
        "\ndelivered {} / 20 packets; encapsulated hops {}, label-switched hops ride free",
        stats.delivered, stats.encapsulated_hops
    );
    assert_eq!(stats.delivered, 20);

    // Show per-middlebox visit equality: every packet visited all three.
    let loads = enf.middlebox_loads();
    assert!(loads.iter().all(|&l| l == 20), "loads = {loads:?}");
    println!("every packet traversed WP -> FW -> IDS exactly once.");
    let _ = MiddleboxId(0);
}
