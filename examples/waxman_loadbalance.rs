//! Load-balanced enforcement at scale: the Waxman random topology with
//! 400 stub networks and 25 core routers (the paper's second evaluation
//! network), comparing hot-potato against LP-driven load balancing.
//!
//! Run with: `cargo run --release --example waxman_loadbalance`

use sdm::core::{Controller, Deployment, EnforcementOptions, KConfig, LbOptions, Strategy};
use sdm::netsim::AddressPlan;
use sdm::policy::NetworkFunction;
use sdm::topology::waxman::waxman;
use sdm::workload::{evaluation_policies, generate_flows_with_total, PolicyClassCounts,
                    WorkloadConfig};

fn main() {
    let seed = 5;
    let plan = waxman(seed);
    println!(
        "Waxman topology: {} cores, {} edge routers, {} links",
        plan.cores().len(),
        plan.edges().len(),
        plan.topology().link_count()
    );
    let deployment = Deployment::evaluation_default(&plan, seed + 1);
    let addrs = AddressPlan::new(&plan);
    let generated = evaluation_policies(&addrs, PolicyClassCounts::default(), seed + 2);
    let controller = Controller::new(
        plan,
        deployment.clone(),
        generated.set.clone(),
        KConfig::paper_default(),
    );

    let flows = generate_flows_with_total(
        &generated,
        controller.addr_plan(),
        &WorkloadConfig { seed, ..Default::default() },
        500_000,
    );
    println!("{} flows, 500k packets", flows.len());

    let mut hp = controller.enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    for f in &flows {
        hp.inject_flow(f.five_tuple, f.packets, 512);
    }
    hp.run();

    let (weights, report) = controller
        .solve_load_balanced(&hp.measurements(), LbOptions::default())
        .expect("LP must solve");
    println!(
        "LP: lambda={:.0}, {} variables, {} constraints",
        report.lambda, report.variables, report.constraints
    );

    let mut lb = controller.enforcement(
        Strategy::LoadBalanced,
        Some(weights),
        EnforcementOptions::default(),
    );
    for f in &flows {
        lb.inject_flow(f.five_tuple, f.packets, 512);
    }
    lb.run();

    println!("\nmax/min load per type:");
    let hp_r = hp.load_report(&deployment);
    let lb_r = lb.load_report(&deployment);
    for f in [
        NetworkFunction::Firewall,
        NetworkFunction::Ids,
        NetworkFunction::WebProxy,
        NetworkFunction::TrafficMonitor,
    ] {
        let (h, l) = (hp_r.row(f).unwrap(), lb_r.row(f).unwrap());
        println!(
            "  {:<4} HP {:>8}/{:<8}  LB {:>8}/{:<8}",
            f.abbrev(),
            h.max,
            h.min,
            l.max,
            l.min
        );
    }
}
