//! Quickstart: build the paper's campus network, install the six example
//! policies of **Table I**, and watch a few flows get steered through
//! their middlebox chains.
//!
//! Run with: `cargo run --release --example quickstart`

use sdm::core::{Controller, Deployment, EnforcementOptions, KConfig, MiddleboxSpec, Strategy};
use sdm::netsim::{FiveTuple, Prefix, Protocol, StubId};
use sdm::policy::{ActionList, NetworkFunction, Policy, PolicySet, TrafficDescriptor};
use sdm::topology::campus::campus;

fn main() {
    // 1. The traditional, non-SDN campus network: OSPF shortest paths,
    //    policy-oblivious routers.
    let plan = campus(1);
    println!("topology: {} nodes, {} links, {} stub networks",
        plan.topology().node_count(),
        plan.topology().link_count(),
        plan.edges().len());

    // 2. Software-defined middleboxes on core routers.
    let mut deployment = Deployment::new();
    use NetworkFunction::*;
    deployment.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
    deployment.add(MiddleboxSpec::new(Firewall, plan.cores()[8], 1.0));
    deployment.add(MiddleboxSpec::new(Ids, plan.cores()[4], 1.0));
    deployment.add(MiddleboxSpec::new(WebProxy, plan.cores()[12], 1.0));

    // 3. The paper's Table I, with "subnet a" = the whole 10.0.0.0/8
    //    enterprise space.
    let subnet_a: Prefix = "10.0.0.0/8".parse().unwrap();
    let mut policies = PolicySet::new();
    policies.push(Policy::permit(
        TrafficDescriptor::new().src_prefix(subnet_a).dst_prefix(subnet_a).dst_port(80),
    ));
    policies.push(Policy::permit(
        TrafficDescriptor::new().src_prefix(subnet_a).dst_prefix(subnet_a).src_port(80),
    ));
    policies.push(Policy::new(
        TrafficDescriptor::new().dst_prefix(subnet_a).dst_port(80),
        ActionList::chain([Firewall, Ids]),
    ));
    policies.push(Policy::new(
        TrafficDescriptor::new().src_prefix(subnet_a).src_port(80),
        ActionList::chain([Ids, Firewall]),
    ));
    policies.push(Policy::new(
        TrafficDescriptor::new().src_prefix(subnet_a).dst_port(8080),
        ActionList::chain([Firewall, Ids, WebProxy]),
    ));
    policies.push(Policy::new(
        TrafficDescriptor::new().dst_prefix(subnet_a).src_port(8080),
        ActionList::chain([WebProxy, Ids, Firewall]),
    ));
    for (id, p) in policies.iter() {
        println!("  {id}: {p}");
    }

    // 4. The controller distributes assignments and policy tables; build
    //    an enforcement simulation with hot-potato steering.
    let controller = Controller::new(plan, deployment.clone(), policies, KConfig::paper_default());
    let mut enf = controller.enforcement(
        Strategy::HotPotato,
        None,
        EnforcementOptions::default(),
    );

    // 5. Internal web traffic: matches the permit, touches no middlebox.
    let internal = FiveTuple {
        src: controller.addr_plan().host(StubId(0), 1),
        dst: controller.addr_plan().host(StubId(4), 1),
        src_port: 40_000,
        dst_port: 80,
        proto: Protocol::Tcp,
    };
    enf.inject_flow(internal, 100, 512);

    // 6. Outbound traffic on port 8080: FW -> IDS -> WP.
    let outbound = FiveTuple {
        src: controller.addr_plan().host(StubId(2), 7),
        dst: controller.addr_plan().host(StubId(9), 7),
        src_port: 41_000,
        dst_port: 8080,
        proto: Protocol::Tcp,
    };
    enf.inject_flow(outbound, 200, 512);

    enf.run();
    let stats = enf.sim().stats();
    println!("\ndelivered {} packets ({} hops traversed)", stats.delivered, stats.link_hops);
    println!("middlebox loads (packets):");
    let loads = enf.middlebox_loads();
    for (id, spec) in deployment.iter() {
        println!(
            "  {id} [{}] -> {}",
            spec.functions.iter().map(|f| f.abbrev()).collect::<Vec<_>>().join("+"),
            loads[id.index()]
        );
    }
    assert_eq!(stats.delivered, 300);
    println!("\nthe permit flow bypassed all middleboxes; the 8080 flow visited FW, IDS, WP.");
}
