#!/usr/bin/env sh
# CI entry point. The workspace is hermetic — every dependency is an
# in-tree path dependency (enforced by tests/hermetic.rs) — so everything
# below runs with --offline and must succeed with zero network access.
set -eu

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> table3 smoke run (reduced volume)"
cargo run --release --offline -p sdm-bench --bin table3_distribution -- --packets 1000000

echo "==> CI OK"
