#!/usr/bin/env sh
# CI entry point. The workspace is hermetic — every dependency is an
# in-tree path dependency (enforced by tests/hermetic.rs) — so everything
# below runs with --offline and must succeed with zero network access.
set -eu

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> table3 smoke run (reduced volume)"
cargo run --release --offline -p sdm-bench --bin table3_distribution -- --packets 1000000

echo "==> micro-benchmarks -> results/BENCH_pr2.json"
SDM_BENCH_OUT=results/BENCH_pr2.json cargo bench --workspace --offline

echo "==> bench regression gate (>25% median slowdown fails)"
cargo run --release --offline -p sdm-bench --bin bench_gate

echo "==> CI OK"
