#!/usr/bin/env sh
# CI entry point. The workspace is hermetic — every dependency is an
# in-tree path dependency (enforced by tests/hermetic.rs) — so everything
# below runs with --offline and must succeed with zero network access.
set -eu

# Per-phase wall-clock: phase <name> ends the previous phase (if any),
# prints its duration, and starts the next.
PHASE_NAME=""
PHASE_START=0
phase() {
    phase_end
    PHASE_NAME="$1"
    PHASE_START=$(date +%s)
    echo "==> $1"
}
phase_end() {
    if [ -n "$PHASE_NAME" ]; then
        echo "    [$PHASE_NAME took $(($(date +%s) - PHASE_START))s]"
    fi
}

phase "cargo build --release --offline"
cargo build --release --offline

phase "cargo clippy --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

phase "cargo test -q --offline --workspace"
cargo test -q --offline --workspace

phase "cargo doc --no-deps (rustdoc warnings are errors) + doc-examples"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace
cargo test -q --doc --offline --workspace

phase "sdm-lint: hermetic source-lint gate over the workspace"
cargo run --release --offline -p sdm-verify --bin sdm-lint -- --root .

phase "verify-plan smoke: static plan verifier on campus + Waxman"
cargo run --release --offline -p sdm-bench --bin verify_plan -- --packets 100000

phase "table3 smoke run (reduced volume)"
cargo run --release --offline -p sdm-bench --bin table3_distribution -- --packets 1000000

phase "sharded determinism smoke: SDM_SHARDS=1 vs SDM_SHARDS=4 byte-identical"
SDM_SHARDS=1 cargo run --release --offline -p sdm-bench --bin table3_distribution -- \
    --packets 1000000 > /tmp/sdm_table3_shards1.txt
SDM_SHARDS=4 cargo run --release --offline -p sdm-bench --bin table3_distribution -- \
    --packets 1000000 > /tmp/sdm_table3_shards4.txt
cmp /tmp/sdm_table3_shards1.txt /tmp/sdm_table3_shards4.txt
echo "    table3 output is byte-identical at 1 and 4 shards"

phase "batched determinism smoke: SDM_BATCH=1 vs SDM_BATCH=256 byte-identical"
SDM_BATCH=1 cargo run --release --offline -p sdm-bench --bin table3_distribution -- \
    --packets 1000000 > /tmp/sdm_table3_batch1.txt
SDM_BATCH=256 cargo run --release --offline -p sdm-bench --bin table3_distribution -- \
    --packets 1000000 > /tmp/sdm_table3_batch256.txt
cmp /tmp/sdm_table3_batch1.txt /tmp/sdm_table3_batch256.txt
echo "    table3 output is byte-identical at batch 1 and 256"

phase "re-steer epoch golden: transcript byte-identical to results/resteer_golden.txt"
SDM_SHARDS=1 SDM_BATCH=1 cargo run --release --offline -p sdm-bench --bin resteer \
    > /tmp/sdm_resteer_s1b1.txt
cmp results/resteer_golden.txt /tmp/sdm_resteer_s1b1.txt
SDM_SHARDS=4 SDM_BATCH=256 cargo run --release --offline -p sdm-bench --bin resteer \
    > /tmp/sdm_resteer_s4b256.txt
cmp results/resteer_golden.txt /tmp/sdm_resteer_s4b256.txt
echo "    re-steer transcript matches the golden at 1/1 and 4/256 shards/batch"

phase "telemetry zero-perturbation: table3 byte-identical with SDM_TELEMETRY=1"
SDM_TELEMETRY=1 SDM_SHARDS=1 cargo run --release --offline -p sdm-bench --bin table3_distribution -- \
    --packets 1000000 > /tmp/sdm_table3_tel.txt
cmp /tmp/sdm_table3_shards1.txt /tmp/sdm_table3_tel.txt
echo "    table3 output is byte-identical with telemetry on and off"

phase "telemetry golden: sdm-metrics byte-identical to results/telemetry_golden.json"
SDM_SHARDS=1 SDM_BATCH=1 cargo run --release --offline -p sdm-bench --bin sdm-metrics \
    > /tmp/sdm_metrics_s1b1.json
cmp results/telemetry_golden.json /tmp/sdm_metrics_s1b1.json
SDM_SHARDS=4 SDM_BATCH=256 cargo run --release --offline -p sdm-bench --bin sdm-metrics \
    > /tmp/sdm_metrics_s4b256.json
cmp results/telemetry_golden.json /tmp/sdm_metrics_s4b256.json
echo "    metrics snapshot matches the golden at 1/1 and 4/256 shards/batch"

phase "exhaustion-attack determinism: byte-identical at 1/1 and 4/256 shards/batch"
SDM_SHARDS=1 SDM_BATCH=1 cargo run --release --offline -p sdm-bench --bin exhaustion -- \
    --flows 50000 > /tmp/sdm_exhaustion_s1b1.txt
SDM_SHARDS=4 SDM_BATCH=256 cargo run --release --offline -p sdm-bench --bin exhaustion -- \
    --flows 50000 > /tmp/sdm_exhaustion_s4b256.txt
cmp /tmp/sdm_exhaustion_s1b1.txt /tmp/sdm_exhaustion_s4b256.txt
echo "    exhaustion-attack report (incl. neg-cache evictions) is shard/batch-invariant"

phase "reach golden: symbolic isolation checker on campus + 21k-node hierarchical"
cargo run --release --offline -p sdm-bench --bin sdm-reach -- \
    --campus-assertions results/assertions_campus.txt \
    --hier-assertions results/assertions_hier.txt \
    --corpus-out /tmp/sdm_reach_corpus.json > /tmp/sdm_reach_golden.json
cmp results/reach_golden.json /tmp/sdm_reach_golden.json
cmp results/reach_corpus.json /tmp/sdm_reach_corpus.json
echo "    reach report and counterexample corpus are byte-identical to the goldens"

phase "reach replay: every committed counterexample confirmed by the simulator"
SDM_SHARDS=1 SDM_BATCH=1 cargo run --release --offline -p sdm-bench --bin sdm-reach -- \
    --replay results/reach_corpus.json > /tmp/sdm_reach_replay_s1b1.json
SDM_SHARDS=4 SDM_BATCH=256 cargo run --release --offline -p sdm-bench --bin sdm-reach -- \
    --replay results/reach_corpus.json > /tmp/sdm_reach_replay_s4b256.json
cmp /tmp/sdm_reach_replay_s1b1.json /tmp/sdm_reach_replay_s4b256.json
echo "    simulator agrees with every static witness at 1/1 and 4/256 shards/batch"

phase "micro-benchmarks -> results/BENCH_pr10.json"
SDM_BENCH_OUT=results/BENCH_pr10.json cargo bench --workspace --offline

phase "bench regression gate (>25% median slowdown fails; table_scale bounds enforced)"
cargo run --release --offline -p sdm-bench --bin bench_gate

phase_end
echo "==> CI OK"
