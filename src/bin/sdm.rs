//! `sdm` — command-line scenario runner for the SDM policy-enforcement
//! reproduction.
//!
//! Builds one of the paper's evaluation worlds, runs an enforcement
//! strategy over a generated workload and prints the per-type load report.
//!
//! Examples:
//!
//! ```text
//! sdm --topology campus --strategy lb --packets 1000000
//! sdm --topology waxman --strategy hp --packets 500000 --seed 7
//! sdm --strategy lb --encoding label --k 3 --fail-busiest-fw
//! ```

use std::process::ExitCode;

use sdm::core::{
    EnforcementOptions, KConfig, LbOptions, SteerPoint, SteeringEncoding, Strategy,
};
use sdm::policy::NetworkFunction;
use sdm_bench::{ExperimentConfig, TopologyKind, World};

const HELP: &str = "\
sdm — dependable policy enforcement in traditional non-SDN networks

USAGE:
    sdm [OPTIONS]

OPTIONS:
    --topology <campus|waxman>   evaluation topology        [default: campus]
    --strategy <hp|rand|lb>      enforcement strategy       [default: lb]
    --encoding <ipip|label|sr>   steering encoding          [default: ipip]
    --packets <N>                total packets to generate  [default: 1000000]
    --seed <N>                   world + workload seed      [default: 3]
    --k <N>                      uniform candidate-set size (default: paper's 4/4/2/2)
    --policies <FILE>            load policies from a text file (one per line,
                                 'src=10.0.0.0/8 dport=80 => FW, IDS'); flows are
                                 synthesized to match them
    --save-flows <FILE>          write the generated workload as a flow trace
    --load-flows <FILE>          replay a previously saved flow trace
    --fail-busiest-fw            crash the busiest firewall and recover
    --help                       print this help
";

/// Builds flows that match the loaded policies: for each policy in turn,
/// pick a source host inside its source prefix (and inside some stub) and
/// a destination/ports satisfying the descriptor. Policies whose source
/// space contains no stub host are skipped (their traffic cannot
/// originate inside the enterprise).
fn synthesize_flows(world: &World, target_packets: u64, seed: u64) -> Vec<sdm_workload::Flow> {
    use sdm::netsim::{FiveTuple, Protocol};
    use sdm::policy::{PortMatch, ProtoMatch};
    let addrs = world.controller.addr_plan();
    let policies = world.controller.policies();
    let mut out = Vec::new();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let pick_port = |m: PortMatch, r: u64| -> u16 {
        match m {
            PortMatch::Any => 10_000 + (r % 50_000) as u16,
            PortMatch::Exact(p) => p,
            PortMatch::Range(lo, hi) => lo + (r % (hi - lo + 1) as u64) as u16,
        }
    };
    let mut total = 0u64;
    'outer: while total < target_packets {
        let mut progressed = false;
        for (id, p) in policies.iter() {
            // source: a stub whose subnet overlaps the src prefix
            let src_stub = addrs
                .stubs()
                .find(|&s| p.descriptor.src.overlaps(addrs.subnet(s)));
            let Some(src_stub) = src_stub else { continue };
            let src_host = {
                // scan for a host index matching the (possibly narrower) prefix
                (0..64u32)
                    .map(|h| addrs.host(src_stub, next() as u32 % 1000 + h))
                    .find(|&a| p.descriptor.src.contains(a))
            };
            let Some(src) = src_host else { continue };
            let dst = if p.descriptor.dst.is_any() {
                let d = loop {
                    let d = sdm::netsim::StubId((next() % addrs.stub_count() as u64) as u32);
                    if d != src_stub {
                        break d;
                    }
                };
                addrs.host(d, (next() % 900) as u32)
            } else {
                // any address inside the dst prefix
                sdm::netsim::Ipv4Addr(p.descriptor.dst.addr().0 + 1)
            };
            let ft = FiveTuple {
                src,
                dst,
                src_port: pick_port(p.descriptor.src_port, next()),
                dst_port: pick_port(p.descriptor.dst_port, next()),
                proto: match p.descriptor.proto {
                    ProtoMatch::Any => Protocol::Tcp,
                    ProtoMatch::Is(pr) => pr,
                },
            };
            // only keep it if this policy is really the first match
            if policies.first_match(&ft).map(|(i, _)| i) != Some(id) {
                continue;
            }
            let packets = 1 + next() % 60;
            total += packets;
            progressed = true;
            out.push(sdm_workload::Flow {
                five_tuple: ft,
                packets,
                policy: id,
            });
            if total >= target_packets {
                break 'outer;
            }
        }
        if !progressed {
            break; // no policy can originate inside the enterprise
        }
    }
    out
}

fn arg(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }

    let seed: u64 = arg(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(3);
    let packets: u64 = arg(&args, "--packets")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let topology = match arg(&args, "--topology").as_deref() {
        None | Some("campus") => TopologyKind::Campus,
        Some("waxman") => TopologyKind::Waxman,
        Some(other) => {
            eprintln!("unknown topology '{other}' (expected campus|waxman)");
            return ExitCode::FAILURE;
        }
    };
    let strategy = match arg(&args, "--strategy").as_deref() {
        Some("hp") => Strategy::HotPotato,
        Some("rand") => Strategy::Random { salt: seed },
        None | Some("lb") => Strategy::LoadBalanced,
        Some(other) => {
            eprintln!("unknown strategy '{other}' (expected hp|rand|lb)");
            return ExitCode::FAILURE;
        }
    };
    let encoding = match arg(&args, "--encoding").as_deref() {
        None | Some("ipip") => SteeringEncoding::IpOverIp,
        Some("label") => SteeringEncoding::LabelSwitching,
        Some("sr") => SteeringEncoding::SourceRouting,
        Some(other) => {
            eprintln!("unknown encoding '{other}' (expected ipip|label|sr)");
            return ExitCode::FAILURE;
        }
    };
    let k = arg(&args, "--k").and_then(|v| v.parse::<usize>().ok());
    let fail_fw = args.iter().any(|a| a == "--fail-busiest-fw");
    let policy_file = arg(&args, "--policies");
    let save_flows = arg(&args, "--save-flows");
    let load_flows = arg(&args, "--load-flows");

    let mut cfg = match topology {
        TopologyKind::Campus => ExperimentConfig::campus(seed),
        TopologyKind::Waxman => ExperimentConfig::waxman(seed),
    };
    if let Some(k) = k {
        if k == 0 {
            eprintln!("--k must be at least 1");
            return ExitCode::FAILURE;
        }
        cfg.k = KConfig::uniform(k);
    }

    let mut world = World::build(&cfg);

    // Optionally replace the generated policies with a user-supplied file.
    if let Some(path) = &policy_file {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let set = match sdm::policy::parse_policies(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if set.is_empty() {
            eprintln!("{path}: no policies");
            return ExitCode::FAILURE;
        }
        for (shadowed, by) in set.find_shadowed() {
            eprintln!("warning: policy {shadowed} is shadowed by {by} and can never fire");
        }
        world.controller = sdm::core::Controller::new(
            world.controller.plan().clone(),
            world.deployment.clone(),
            set,
            world.controller.k_config().clone(),
        );
    }
    println!(
        "world: {:?} topology, {} middleboxes, {} policies, seed {seed}",
        topology,
        world.deployment.len(),
        world.controller.policies().len()
    );
    let flows = if let Some(path) = &load_flows {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| sdm_workload::flows_from_text(&t).map_err(|e| e.to_string()))
        {
            Ok(f) => {
                println!("replaying {} flows from {path}", f.len());
                f
            }
            Err(e) => {
                eprintln!("cannot load flows from {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if policy_file.is_some() {
        synthesize_flows(&world, packets, seed.wrapping_add(17))
    } else {
        world.flows(packets, seed.wrapping_add(17))
    };
    if let Some(path) = &save_flows {
        if let Err(e) = std::fs::write(path, sdm_workload::flows_to_text(&flows)) {
            eprintln!("cannot save flows to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("saved {} flows to {path}", flows.len());
    }
    let total: u64 = flows.iter().map(|f| f.packets).sum();
    println!("workload: {} flows, {total} packets", flows.len());

    // Load-balanced needs a measurement pass + LP.
    let weights = if strategy == Strategy::LoadBalanced {
        let hp = world.run_strategy(Strategy::HotPotato, None, &flows);
        match world
            .controller
            .solve_load_balanced(&hp.measurements, LbOptions::default())
        {
            Ok((w, report)) => {
                println!(
                    "LP: lambda {:.0}, {} vars, {} constraints, {} pivots, config {} B",
                    report.lambda,
                    report.variables,
                    report.constraints,
                    report.iterations,
                    w.footprint_bytes()
                );
                Some(w)
            }
            Err(e) => {
                eprintln!("load-balancing failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let mut enf = world.controller.enforcement(
        strategy,
        weights.clone(),
        EnforcementOptions {
            encoding,
            ..Default::default()
        },
    );
    let victim = fail_fw.then(|| {
        let v = world
            .controller
            .assignments()
            .closest(
                SteerPoint::Proxy(sdm::netsim::StubId(0)),
                NetworkFunction::Firewall,
            )
            .expect("a firewall exists");
        enf.fail_middlebox(v);
        println!("crashed firewall {v} in the data plane");
        v
    });
    for f in &flows {
        enf.inject_flow(f.five_tuple, f.packets, 512);
    }
    enf.run();

    let stats = enf.sim().stats();
    println!(
        "\ndelivered {} / {total} packets ({} link hops, {} encapsulated, {} frag events)",
        stats.delivered + stats.delivered_external,
        stats.link_hops,
        stats.encapsulated_hops,
        stats.frag_events
    );
    println!("\nper-type loads:\n{}", enf.load_report(&world.deployment));

    if let Some(v) = victim {
        let dropped = enf.mbox_state(v).lock().counters.dropped_failed;
        println!("blackholed at crashed {v}: {dropped} packets");
        println!("(run the controller recovery: see the failure_recovery experiment)");
    }
    ExitCode::SUCCESS
}
