//! Umbrella crate for the SDM policy-enforcement reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single crate:
//!
//! * [`topology`] — network graph, OSPF-style routing, campus/Waxman generators.
//! * [`netsim`] — discrete-event packet simulator.
//! * [`policy`] — traffic descriptors, classifiers, flow caches, label tables.
//! * [`lp`] — linear-programming solver used for load-balanced enforcement.
//! * [`core`] — controller, policy proxies, middleboxes and steering strategies.
//! * [`workload`] — workload generation per the paper's evaluation section.
//! * [`verify`] — static analysis: the enforcement-plan verifier and the
//!   `sdm-lint` source scanner.
//! * [`telemetry`] — deterministic metrics registry, per-shard collectors
//!   and JSON/Prometheus exporters.
//! * [`util`] — in-tree infrastructure (PRNG, property-testing and bench
//!   harnesses, JSON, scoped-thread parallel map); keeps the build hermetic.
//!
//! # Example
//!
//! ```
//! use sdm::topology::campus::campus;
//! let plan = campus(1);
//! assert!(plan.topology().is_connected());
//! ```

#![forbid(unsafe_code)]

pub use sdm_core as core;
pub use sdm_lp as lp;
pub use sdm_netsim as netsim;
pub use sdm_policy as policy;
pub use sdm_telemetry as telemetry;
pub use sdm_topology as topology;
pub use sdm_util as util;
pub use sdm_verify as verify;
pub use sdm_workload as workload;
