#!/usr/bin/env sh
# Regenerates results/full_run.txt: every experiment binary in release
# mode, concatenated with section headers. Deterministic modulo the dated
# first line and the wall-clock timing columns of the lp_formulations and
# flow_cache sections.
set -eu
out="${1:-results/full_run.txt}"
: > "$out"
echo "# Full experiment run — $(date -u)" >> "$out"
echo "# All generators use the in-tree sdm-util PRNG (seeded, reproducible);" >> "$out"
echo "# numbers shift vs pre-migration runs but every paper shape is preserved." >> "$out"
run() {
  name="$1"; shift
  echo "" >> "$out"
  echo "=== $name ===" >> "$out"
  cargo run --release --offline -q -p sdm-bench --bin "$@" >> "$out"
}
run fig4_campus fig4_campus
run fig5_waxman fig5_waxman
run table3_distribution table3_distribution
run k_sweep k_sweep
run lp_formulations lp_formulations
run flow_cache flow_cache
run failure_recovery failure_recovery
run adaptivity adaptivity
run path_stretch path_stretch
run queueing queueing
run "label_switching (count mode)" label_switching
run "label_switching (--emulate: real fragmentation/reassembly)" label_switching -- --emulate
