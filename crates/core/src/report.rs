//! Load reporting: per-function-type maximum / minimum / mean middlebox
//! loads, the quantities of the paper's Figures 4–5 and Table III.

use std::fmt;

use sdm_policy::NetworkFunction;
use sdm_util::json::{FromJson, Json, JsonError, ToJson};

use crate::deployment::Deployment;

/// Load summary for one middlebox type (one row pair of Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadRow {
    /// The function the middleboxes implement.
    pub function: NetworkFunction,
    /// Number of middleboxes of this type.
    pub count: usize,
    /// Maximum load (packets) on any box of this type.
    pub max: u64,
    /// Minimum load (packets) on any box of this type.
    pub min: u64,
    /// Total load across boxes of this type.
    pub total: u64,
}

impl LoadRow {
    /// Mean load per box.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Imbalance ratio max/min (∞ when min is 0, 1.0 for a perfectly even
    /// spread).
    pub fn imbalance(&self) -> f64 {
        if self.min == 0 {
            f64::INFINITY
        } else {
            self.max as f64 / self.min as f64
        }
    }
}

impl ToJson for LoadRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("function", Json::from(self.function.abbrev())),
            ("count", Json::from(self.count)),
            ("max", Json::from(self.max)),
            ("min", Json::from(self.min)),
            ("total", Json::from(self.total)),
        ])
    }
}

impl FromJson for LoadRow {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = v
            .req("function")?
            .as_str()
            .ok_or_else(|| JsonError::msg("function must be a string"))?;
        let function = NetworkFunction::from_abbrev(name)
            .ok_or_else(|| JsonError::msg(format!("unknown function `{name}`")))?;
        let field = |key: &str| {
            v.req(key)?
                .as_u64()
                .ok_or_else(|| JsonError::msg(format!("{key} must be a non-negative integer")))
        };
        Ok(LoadRow {
            function,
            count: field("count")? as usize,
            max: field("max")?,
            min: field("min")?,
            total: field("total")?,
        })
    }
}

/// Per-type load report computed from per-middlebox packet loads.
///
/// # Example
///
/// ```
/// use sdm_core::{Deployment, LoadReport, MiddleboxSpec};
/// use sdm_policy::NetworkFunction;
///
/// let plan = sdm_topology::campus::campus(1);
/// let mut dep = Deployment::new();
/// dep.add(MiddleboxSpec::new(NetworkFunction::Firewall, plan.cores()[0], 1.0));
/// dep.add(MiddleboxSpec::new(NetworkFunction::Firewall, plan.cores()[1], 1.0));
/// let report = LoadReport::from_loads(&dep, &[30, 70]);
/// let row = report.row(NetworkFunction::Firewall).unwrap();
/// assert_eq!((row.max, row.min, row.total), (70, 30, 100));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    rows: Vec<LoadRow>,
}

impl LoadReport {
    /// Summarizes `loads` (indexed by middlebox id) per function type. A
    /// multi-function box contributes its full load to each of its types.
    ///
    /// # Panics
    ///
    /// Panics if `loads.len() != deployment.len()`.
    pub fn from_loads(deployment: &Deployment, loads: &[u64]) -> Self {
        assert_eq!(
            loads.len(),
            deployment.len(),
            "one load per middlebox required"
        );
        let mut rows = Vec::new();
        for f in deployment.functions() {
            let boxes = deployment.offering(f);
            let vals: Vec<u64> = boxes.iter().map(|m| loads[m.index()]).collect();
            rows.push(LoadRow {
                function: f,
                count: vals.len(),
                max: vals.iter().copied().max().unwrap_or(0),
                min: vals.iter().copied().min().unwrap_or(0),
                total: vals.iter().sum(),
            });
        }
        LoadReport { rows }
    }

    /// The row for one function type.
    pub fn row(&self, f: NetworkFunction) -> Option<&LoadRow> {
        self.rows.iter().find(|r| r.function == f)
    }

    /// All rows, ordered by function.
    pub fn rows(&self) -> &[LoadRow] {
        &self.rows
    }

    /// The largest max-load across all types (the headline number of
    /// Figures 4–5).
    pub fn overall_max(&self) -> u64 {
        self.rows.iter().map(|r| r.max).max().unwrap_or(0)
    }
}

impl ToJson for LoadReport {
    fn to_json(&self) -> Json {
        Json::obj([(
            "rows",
            Json::Arr(self.rows.iter().map(ToJson::to_json).collect()),
        )])
    }
}

impl FromJson for LoadReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let rows = v
            .req("rows")?
            .as_arr()
            .ok_or_else(|| JsonError::msg("rows must be an array"))?
            .iter()
            .map(LoadRow::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LoadReport { rows })
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<6} {:>6} {:>12} {:>12} {:>12}", "type", "count", "max", "min", "mean")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:>6} {:>12} {:>12} {:>12.1}",
                r.function.abbrev(),
                r.count,
                r.max,
                r.min,
                r.mean()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::MiddleboxSpec;
    use sdm_policy::NetworkFunction::*;
    use sdm_topology::campus::campus;

    fn dep3() -> Deployment {
        let plan = campus(1);
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
        dep.add(MiddleboxSpec::new(Ids, plan.cores()[2], 1.0));
        dep
    }

    #[test]
    fn summarizes_per_type() {
        let report = LoadReport::from_loads(&dep3(), &[10, 40, 25]);
        let fw = report.row(Firewall).unwrap();
        assert_eq!((fw.max, fw.min, fw.total, fw.count), (40, 10, 50, 2));
        assert_eq!(fw.mean(), 25.0);
        assert_eq!(fw.imbalance(), 4.0);
        let ids = report.row(Ids).unwrap();
        assert_eq!((ids.max, ids.min), (25, 25));
        assert_eq!(report.overall_max(), 40);
        assert!(report.row(WebProxy).is_none());
    }

    #[test]
    fn zero_min_reports_infinite_imbalance() {
        let report = LoadReport::from_loads(&dep3(), &[0, 40, 5]);
        assert!(report.row(Firewall).unwrap().imbalance().is_infinite());
    }

    #[test]
    #[should_panic(expected = "one load per middlebox")]
    fn length_mismatch_rejected() {
        let _ = LoadReport::from_loads(&dep3(), &[1, 2]);
    }

    #[test]
    fn json_round_trip() {
        let report = LoadReport::from_loads(&dep3(), &[10, 40, 25]);
        let text = report.to_json().to_string_pretty();
        let back = LoadReport::from_json(&sdm_util::json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn json_rejects_unknown_function() {
        let v = sdm_util::json::Json::parse(
            r#"{"function":"BOGUS","count":1,"max":1,"min":1,"total":1}"#,
        )
        .unwrap();
        assert!(LoadRow::from_json(&v).is_err());
    }

    #[test]
    fn display_is_tabular() {
        let report = LoadReport::from_loads(&dep3(), &[10, 40, 25]);
        let s = report.to_string();
        assert!(s.contains("FW"));
        assert!(s.contains("IDS"));
        assert!(s.contains("40"));
    }
}
