//! The gateway ingress proxy: a policy proxy attached at an Internet
//! gateway (the proxy-`y` wiring of Figure 2), enforcing policies on
//! traffic *entering* the enterprise from outside. Without it, inbound
//! traffic would reach its destination proxy and be delivered without ever
//! traversing its chain — the bypass the architecture must prevent.

use std::sync::Arc;

use sdm_netsim::{Device, DeviceCtx, Packet, PacketKind};
use sdm_policy::LocalClassifier;

use crate::runtime::{ProxyState, RuntimeConfig, Shared};
use crate::steer::SteerPoint;

/// The ingress policy proxy at one gateway.
pub struct IngressProxy {
    /// Dense index into the plan's gateway list.
    gateway: u32,
    policies: LocalClassifier,
    config: Arc<RuntimeConfig>,
    state: Shared<ProxyState>,
}

impl IngressProxy {
    /// Creates the ingress proxy with its controller-installed policy
    /// table (policies whose sources can lie outside the enterprise).
    pub fn new(
        gateway: u32,
        policies: LocalClassifier,
        config: Arc<RuntimeConfig>,
        state: Shared<ProxyState>,
    ) -> Self {
        IngressProxy {
            gateway,
            policies,
            config,
            state,
        }
    }
}

impl Device for IngressProxy {
    fn receive(&mut self, ctx: &mut DeviceCtx<'_>, mut pkt: Packet) {
        let mut state = self.state.lock();

        if let PacketKind::LabelReady(flow) = pkt.kind {
            state.counters.control_received += pkt.weight;
            state.flows.flag_label_switched(&flow);
            return;
        }

        state.counters.outbound += pkt.weight; // "entering the enterprise"
        let ft = pkt.five_tuple();
        let now = ctx.now();
        let weight = pkt.weight;

        // Flow cache, then policy table — same §III.D fast path as stub
        // proxies.
        let cached = state
            .flows
            .lookup(&ft, now, weight)
            .map(|e| (e.action.clone(), e.label, e.label_switched));
        let (action, label, label_switched) = match cached {
            Some(c) => c,
            None => match self.policies.first_match(&ft) {
                None => {
                    state.flows.insert_negative(ft, now);
                    (None, None, false)
                }
                Some((id, policy)) => {
                    let actions = policy.actions.clone();
                    state.flows.insert_positive(ft, id, actions.clone(), now);
                    let label = if self.config.label_switching() && !actions.is_permit() {
                        let l = state.labels.allocate();
                        if let Some(l) = l {
                            state.flows.set_label(&ft, l);
                        }
                        l
                    } else {
                        None
                    };
                    (Some((id, actions)), label, false)
                }
            },
        };

        let Some((policy_id, actions)) = action else {
            state.counters.permitted += weight;
            drop(state);
            ctx.forward(pkt);
            return;
        };
        if actions.is_permit() {
            state.counters.permitted += weight;
            drop(state);
            ctx.forward(pkt);
            return;
        }

        let point = SteerPoint::Gateway(self.gateway);
        if self.config.encoding == crate::steer::SteeringEncoding::SourceRouting {
            let Some(chain) = self.config.resolve_chain(point, policy_id, &actions, &ft) else {
                state.counters.unenforceable += weight;
                return;
            };
            let final_dst = pkt.inner.dst;
            let mut segments: Vec<sdm_netsim::Ipv4Addr> =
                chain.iter().map(|&m| self.config.mbox_addr(m)).collect();
            segments.push(final_dst);
            pkt.set_source_route(segments);
            state.counters.steered += weight;
            drop(state);
            ctx.forward(pkt);
            return;
        }

        let first_fn = actions.first().expect("non-permit chain");
        let commodity = self.config.commodity_of(&pkt);
        let Some(next) =
            self.config
                .select_for_commodity(point, policy_id, first_fn, 0, &ft, commodity)
        else {
            state.counters.unenforceable += weight;
            return;
        };
        let next_addr = self.config.mbox_addr(next);

        if label_switched && self.config.label_switching() {
            if let Some(l) = label {
                pkt.label = Some(l);
                pkt.inner.dst = next_addr;
                state.counters.label_switched += weight;
                state.counters.steered += weight;
                drop(state);
                ctx.forward(pkt);
                return;
            }
        }
        pkt.label = label;
        pkt.encapsulate(ctx.addr(), next_addr);
        state.counters.steered += weight;
        drop(state);
        ctx.forward(pkt);
    }
}
