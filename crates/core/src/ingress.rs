//! The gateway ingress proxy: a policy proxy attached at an Internet
//! gateway (the proxy-`y` wiring of Figure 2), enforcing policies on
//! traffic *entering* the enterprise from outside. Without it, inbound
//! traffic would reach its destination proxy and be delivered without ever
//! traversing its chain — the bypass the architecture must prevent.

use std::sync::Arc;

use sdm_netsim::{Device, DeviceCtx, PacketKind};
use sdm_policy::LocalClassifier;

use crate::runtime::{ProxyState, RuntimeConfig, Shared};
use crate::steer::SteerPoint;

/// The ingress policy proxy at one gateway.
pub struct IngressProxy {
    /// Dense index into the plan's gateway list.
    gateway: u32,
    policies: LocalClassifier,
    config: Arc<RuntimeConfig>,
    state: Shared<ProxyState>,
}

impl IngressProxy {
    /// Creates the ingress proxy with its controller-installed policy
    /// table (policies whose sources can lie outside the enterprise).
    pub fn new(
        gateway: u32,
        policies: LocalClassifier,
        config: Arc<RuntimeConfig>,
        state: Shared<ProxyState>,
    ) -> Self {
        IngressProxy {
            gateway,
            policies,
            config,
            state,
        }
    }
}

impl Device for IngressProxy {
    fn receive(&mut self, ctx: &mut DeviceCtx<'_>, pkt: sdm_netsim::PacketId) {
        let mut state = self.state.lock();

        if let PacketKind::LabelReady(flow) = ctx.pkt(pkt).kind {
            state.counters.control_received += ctx.pkt(pkt).weight;
            state.flows.flag_label_switched(&flow);
            ctx.drop_pkt(pkt);
            return;
        }

        let (ft, weight) = {
            let p = ctx.pkt(pkt);
            (p.five_tuple(), p.weight)
        };
        state.counters.outbound += weight; // "entering the enterprise"
        let now = ctx.now();

        // Flow cache, then policy table — same §III.D fast path as stub
        // proxies.
        let cached = state
            .flows
            .lookup(&ft, now, weight)
            .map(|e| (e.action.clone(), e.label, e.label_switched));
        let (action, label, label_switched) = match cached {
            Some(c) => c,
            None => match self.policies.first_match(&ft) {
                None => {
                    state.flows.insert_negative(ft, now);
                    (None, None, false)
                }
                Some((id, policy)) => {
                    let actions = policy.actions.clone();
                    state.flows.insert_positive(ft, id, actions.clone(), now);
                    let label = if self.config.label_switching() && !actions.is_permit() {
                        let l = state.labels.allocate();
                        if let Some(l) = l {
                            state.flows.set_label(&ft, l);
                        }
                        l
                    } else {
                        None
                    };
                    (Some((id, actions)), label, false)
                }
            },
        };

        let Some((policy_id, actions)) = action else {
            state.counters.permitted += weight;
            drop(state);
            ctx.forward(pkt);
            return;
        };
        if actions.is_permit() {
            state.counters.permitted += weight;
            drop(state);
            ctx.forward(pkt);
            return;
        }

        let point = SteerPoint::Gateway(self.gateway);
        if self.config.encoding == crate::steer::SteeringEncoding::SourceRouting {
            let Some(chain) = self.config.resolve_chain(point, policy_id, &actions, &ft) else {
                state.counters.unenforceable += weight;
                ctx.drop_pkt(pkt);
                return;
            };
            let final_dst = ctx.pkt(pkt).inner.dst;
            let mut segments: Vec<sdm_netsim::Ipv4Addr> =
                chain.iter().map(|&m| self.config.mbox_addr(m)).collect();
            segments.push(final_dst);
            ctx.pkt_mut(pkt).set_source_route(segments);
            state.counters.steered += weight;
            drop(state);
            ctx.forward(pkt);
            return;
        }

        // Pinned first hop wins, so an epoch weight swap never re-steers a
        // live inbound flow (§III.B stickiness); the lookup above already
        // resolved the flow at this instant, so the pin cannot be stale.
        let next = match state.flows.pinned_next(&ft) {
            Some(raw) => crate::deployment::MiddleboxId(raw),
            None => {
                let first_fn = actions.first().expect("non-permit chain");
                let commodity = self.config.commodity_of(ctx.pkt(pkt));
                let Some(next) = self.config.select_for_commodity(
                    point, policy_id, first_fn, 0, &ft, commodity,
                ) else {
                    state.counters.unenforceable += weight;
                    ctx.drop_pkt(pkt);
                    return;
                };
                state.flows.pin_next(&ft, next.0);
                next
            }
        };
        let next_addr = self.config.mbox_addr(next);

        if label_switched && self.config.label_switching() {
            if let Some(l) = label {
                let p = ctx.pkt_mut(pkt);
                p.label = Some(l);
                p.inner.dst = next_addr;
                state.counters.label_switched += weight;
                state.counters.steered += weight;
                drop(state);
                ctx.forward(pkt);
                return;
            }
        }
        let entry = ctx.addr();
        let p = ctx.pkt_mut(pkt);
        p.label = label;
        p.encapsulate(entry, next_addr);
        state.counters.steered += weight;
        drop(state);
        ctx.forward(pkt);
    }
}
