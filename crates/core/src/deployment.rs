//! Middlebox deployment description: which software-defined middleboxes
//! exist, what functions they implement, where they attach, and their
//! processing capacities (§III.A).

use std::collections::BTreeSet;
use std::fmt;

use sdm_util::rng::StdRng;

use sdm_netsim::Attachment;
use sdm_policy::NetworkFunction;
use sdm_topology::{NetworkPlan, NodeId};

/// Identifier of a middlebox (dense index within a [`Deployment`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MiddleboxId(pub u32);

impl MiddleboxId {
    /// Dense index of the middlebox.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MiddleboxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// How a middlebox is wired to the simulator; serialized configs store the
/// variant name.
fn default_attachment() -> String {
    "off-path".to_string()
}

/// Static description of one software-defined middlebox.
#[derive(Debug, Clone)]
pub struct MiddleboxSpec {
    /// Functions this middlebox implements (non-empty). The paper's
    /// evaluation uses single-function middleboxes; multi-function boxes
    /// are supported and apply consecutive chain functions locally.
    pub functions: BTreeSet<NetworkFunction>,
    /// The router it attaches to (core routers in the paper's evaluation).
    pub router: NodeId,
    /// Processing capacity `C(x)` in packets per measurement epoch.
    pub capacity: f64,
    /// In-path or off-path attachment (§III.A); stored as a string for
    /// config-friendliness, parsed by [`MiddleboxSpec::attachment`].
    pub attachment_kind: String,
}

impl MiddleboxSpec {
    /// A single-function, off-path middlebox.
    pub fn new(function: NetworkFunction, router: NodeId, capacity: f64) -> Self {
        MiddleboxSpec {
            functions: BTreeSet::from([function]),
            router,
            capacity,
            attachment_kind: default_attachment(),
        }
    }

    /// Switches the attachment mode.
    pub fn in_path(mut self) -> Self {
        self.attachment_kind = "in-path".to_string();
        self
    }

    /// The parsed attachment mode (defaults to off-path on unknown values).
    pub fn attachment(&self) -> Attachment {
        if self.attachment_kind == "in-path" {
            Attachment::InPath
        } else {
            Attachment::OffPath
        }
    }

    /// True if the box implements `f`.
    pub fn implements(&self, f: NetworkFunction) -> bool {
        self.functions.contains(&f)
    }
}

/// The complete middlebox deployment over a network.
///
/// # Example
///
/// The paper's evaluation deployment (4 WP, 7 FW, 7 IDS, 4 TM on random
/// core routers):
///
/// ```
/// use sdm_core::Deployment;
/// let plan = sdm_topology::campus::campus(1);
/// let dep = Deployment::evaluation_default(&plan, 7);
/// assert_eq!(dep.len(), 22);
/// assert_eq!(dep.offering(sdm_policy::NetworkFunction::Firewall).len(), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Deployment {
    specs: Vec<MiddleboxSpec>,
    /// Middleboxes currently marked failed: they keep their ids but are
    /// excluded from [`Deployment::offering`], so assignments and LPs
    /// computed against this deployment route around them.
    failed: BTreeSet<MiddleboxId>,
}

impl Deployment {
    /// An empty deployment; add boxes with [`Deployment::add`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a middlebox, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the spec implements no function or has a non-positive
    /// capacity.
    pub fn add(&mut self, spec: MiddleboxSpec) -> MiddleboxId {
        assert!(
            !spec.functions.is_empty(),
            "middlebox must implement at least one function"
        );
        assert!(spec.capacity > 0.0, "capacity must be positive");
        let id = MiddleboxId(self.specs.len() as u32);
        self.specs.push(spec);
        id
    }

    /// Number of middleboxes.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if no middleboxes are deployed.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The spec of a middlebox.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn spec(&self, id: MiddleboxId) -> &MiddleboxSpec {
        &self.specs[id.index()]
    }

    /// Iterates over `(id, spec)`.
    pub fn iter(&self) -> impl Iterator<Item = (MiddleboxId, &MiddleboxSpec)> + '_ {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| (MiddleboxId(i as u32), s))
    }

    /// All *available* middleboxes offering function `e` — the paper's
    /// `M^e`, excluding boxes marked failed.
    pub fn offering(&self, e: NetworkFunction) -> Vec<MiddleboxId> {
        self.iter()
            .filter(|(id, s)| s.implements(e) && !self.failed.contains(id))
            .map(|(id, _)| id)
            .collect()
    }

    /// Marks a middlebox as failed: it keeps its id but disappears from
    /// every [`Deployment::offering`] set, so recomputed assignments and
    /// LPs route around it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fail(&mut self, id: MiddleboxId) {
        assert!(id.index() < self.specs.len(), "unknown middlebox {id}");
        self.failed.insert(id);
    }

    /// Clears a failure mark.
    pub fn restore(&mut self, id: MiddleboxId) {
        self.failed.remove(&id);
    }

    /// Whether a middlebox is currently marked failed.
    pub fn is_failed(&self, id: MiddleboxId) -> bool {
        self.failed.contains(&id)
    }

    /// The set of functions deployed anywhere — the paper's Π.
    pub fn functions(&self) -> BTreeSet<NetworkFunction> {
        self.specs
            .iter()
            .flat_map(|s| s.functions.iter().copied())
            .collect()
    }

    /// The paper's evaluation deployment (§IV.A): 4 web proxies, 7
    /// firewalls, 7 IDSes and 4 traffic monitors, each attached to a
    /// randomly chosen core router, all with equal capacity.
    ///
    /// Capacity is set to 1.0 for every box; since the LP minimizes the
    /// *relative* load factor λ and the paper reports absolute packet
    /// loads, a uniform capacity reproduces its setting.
    pub fn evaluation_default(plan: &NetworkPlan, seed: u64) -> Self {
        Self::evaluation_with_counts(plan, seed, &[4, 7, 7, 4])
    }

    /// Like [`Deployment::evaluation_default`] with explicit per-function
    /// counts in the order WP, FW, IDS, TM.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no core routers.
    pub fn evaluation_with_counts(plan: &NetworkPlan, seed: u64, counts: &[usize; 4]) -> Self {
        assert!(
            !plan.cores().is_empty(),
            "deployment requires core routers to attach middleboxes to"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dep = Deployment::new();
        let order = [
            (NetworkFunction::WebProxy, counts[0]),
            (NetworkFunction::Firewall, counts[1]),
            (NetworkFunction::Ids, counts[2]),
            (NetworkFunction::TrafficMonitor, counts[3]),
        ];
        for (f, n) in order {
            for _ in 0..n {
                let router = plan.cores()[rng.gen_range(0..plan.cores().len())];
                dep.add(MiddleboxSpec::new(f, router, 1.0));
            }
        }
        dep
    }
}

impl fmt::Display for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "deployment: {} middleboxes", self.specs.len())?;
        for (id, s) in self.iter() {
            let fns: Vec<String> = s.functions.iter().map(|g| g.abbrev()).collect();
            writeln!(
                f,
                "  {id} [{}] at n{} cap={} ({})",
                fns.join("+"),
                s.router.index(),
                s.capacity,
                s.attachment_kind
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_policy::NetworkFunction::*;
    use sdm_topology::campus::campus;

    #[test]
    fn evaluation_counts_match_paper() {
        let plan = campus(1);
        let dep = Deployment::evaluation_default(&plan, 3);
        assert_eq!(dep.offering(WebProxy).len(), 4);
        assert_eq!(dep.offering(Firewall).len(), 7);
        assert_eq!(dep.offering(Ids).len(), 7);
        assert_eq!(dep.offering(TrafficMonitor).len(), 4);
        assert_eq!(dep.functions().len(), 4);
        // all attached to core routers
        for (_, s) in dep.iter() {
            assert!(plan.cores().contains(&s.router));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let plan = campus(1);
        let a = Deployment::evaluation_default(&plan, 9);
        let b = Deployment::evaluation_default(&plan, 9);
        for (id, s) in a.iter() {
            assert_eq!(s.router, b.spec(id).router);
        }
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn rejects_functionless_box() {
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec {
            functions: BTreeSet::new(),
            router: NodeId::from_index(0),
            capacity: 1.0,
            attachment_kind: "off-path".into(),
        });
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let plan = campus(1);
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 0.0));
    }

    #[test]
    fn attachment_modes() {
        let plan = campus(1);
        let off = MiddleboxSpec::new(Ids, plan.cores()[0], 1.0);
        assert_eq!(off.attachment(), Attachment::OffPath);
        let inp = off.clone().in_path();
        assert_eq!(inp.attachment(), Attachment::InPath);
    }

    #[test]
    fn multi_function_box() {
        let plan = campus(1);
        let mut dep = Deployment::new();
        let spec = MiddleboxSpec {
            functions: BTreeSet::from([Firewall, Ids]),
            router: plan.cores()[0],
            capacity: 2.0,
            attachment_kind: "off-path".into(),
        };
        let id = dep.add(spec);
        assert!(dep.offering(Firewall).contains(&id));
        assert!(dep.offering(Ids).contains(&id));
        assert!(dep.offering(WebProxy).is_empty());
    }
}
