//! The middlebox controller (§III.A–C): knows the topology, the middlebox
//! placement and the policies; computes assignments (`m_x^e`, `M_x^e`),
//! distributes per-node policy tables (`P_x`), aggregates traffic
//! measurements and solves the load-balancing LP; and wires up a complete
//! enforcement simulation.
//!
//! Unlike an SDN controller it is *not* on the data path: everything it
//! produces is pushed to the proxies and middleboxes ahead of traffic.

use std::sync::Arc;

use sdm_util::sync::Mutex;
use sdm_util::FxHashMap;

use sdm_netsim::{
    preassigned_device_addr, AddressPlan, Attachment, FiveTuple, Packet, SimTime, Simulator,
    StubId,
};
use sdm_policy::{ClassifierKind, LocalClassifier, PolicySet, ProjectedPolicies};
use sdm_topology::{NetworkPlan, RoutingTables};

use crate::deployment::{Deployment, MiddleboxId};
use crate::lp_model::{
    build_full, build_reduced, build_reduced_with_cache, LbError, LbOptions, LbReport,
    LbWarmCache,
};
use crate::ingress::IngressProxy;
use crate::measure::TrafficMatrix;
use crate::middlebox::MiddleboxDevice;
use crate::proxy::ProxyDevice;
use crate::report::LoadReport;
use crate::runtime::{MboxState, ProxyState, RuntimeConfig, Shared, WeightsCell};
use crate::steer::{Assignments, KConfig, SteeringEncoding, SteeringWeights, Strategy};

/// Options for building an enforcement simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnforcementOptions {
    /// How steering is encoded on the wire.
    pub encoding: SteeringEncoding,
    /// Soft-state lifetime of flow-cache entries (ticks).
    pub flow_ttl: u64,
    /// Soft-state lifetime of label-table entries (ticks).
    pub label_ttl: u64,
    /// Uniform link MTU for fragmentation accounting.
    pub mtu: u32,
    /// Lookup structure for the per-device policy tables (§III.D).
    pub classifier: ClassifierKind,
    /// Hot-path telemetry collection: `Some(b)` forces it on/off, `None`
    /// defers to the `SDM_TELEMETRY` environment variable
    /// ([`sdm_telemetry::env_enabled`]).
    pub telemetry: Option<bool>,
    /// Negative-cache sets per flow table (must be a power of two; the cap
    /// is `neg_cache_sets * `[`sdm_policy::NEG_WAYS`] markers). Bounds the
    /// memory a flow-table exhaustion attack can pin per device; the
    /// default ([`sdm_policy::DEFAULT_NEG_SETS`]) is far above legitimate
    /// negative-entry populations, so eviction engages only under attack.
    pub neg_cache_sets: usize,
}

impl Default for EnforcementOptions {
    fn default() -> Self {
        EnforcementOptions {
            encoding: SteeringEncoding::IpOverIp,
            flow_ttl: 1_000_000,
            label_ttl: 1_000_000,
            mtu: 1500,
            classifier: ClassifierKind::Linear,
            telemetry: None,
            neg_cache_sets: sdm_policy::DEFAULT_NEG_SETS,
        }
    }
}

/// Size of the configuration a controller distributes (§V scalability).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigFootprint {
    /// Devices the controller manages (proxies + middleboxes) — *not* the
    /// routers, which stay untouched.
    pub managed_devices: usize,
    /// Total policy-table entries installed across proxies.
    pub proxy_policy_entries: u64,
    /// Total policy-table entries installed across middleboxes.
    pub mbox_policy_entries: u64,
    /// Total candidate-set (`M_x^e`) entries installed.
    pub candidate_entries: u64,
    /// Estimated bytes of policy tables.
    pub policy_bytes: u64,
    /// Estimated bytes of candidate sets.
    pub candidate_bytes: u64,
    /// Estimated bytes of LP split weights (0 without load balancing).
    pub weight_bytes: u64,
}

impl ConfigFootprint {
    /// Total estimated bytes distributed.
    pub fn total_bytes(&self) -> u64 {
        self.policy_bytes + self.candidate_bytes + self.weight_bytes
    }
}

/// The central controller.
///
/// # Example
///
/// ```
/// use sdm_core::{Controller, Deployment, KConfig, Strategy, EnforcementOptions};
/// use sdm_policy::PolicySet;
///
/// let plan = sdm_topology::campus::campus(1);
/// let deployment = Deployment::evaluation_default(&plan, 7);
/// let controller = Controller::new(plan, deployment, PolicySet::new(), KConfig::paper_default());
/// let mut enf = controller.enforcement(Strategy::HotPotato, None,
///                                      EnforcementOptions::default());
/// enf.run();
/// assert_eq!(enf.middlebox_loads().iter().sum::<u64>(), 0); // no traffic yet
/// ```
pub struct Controller {
    plan: NetworkPlan,
    addr_plan: AddressPlan,
    routes: RoutingTables,
    deployment: Deployment,
    policies: PolicySet,
    k: KConfig,
    assignments: Assignments,
    assertions: Vec<sdm_verify::reach::Assertion>,
}

impl Controller {
    /// Creates the controller and converges its view of routing and
    /// assignments.
    ///
    /// # Panics
    ///
    /// Panics if the static plan verifier ([`crate::verify_controller`])
    /// finds a fatal misconfiguration: a policy chain that repeats a
    /// function (e.g. `FW → IDS → FW` — the data plane resolves a
    /// middlebox's chain position by its function, which is ambiguous
    /// under repetition), a function no available middlebox implements, a
    /// steer point with no candidate for a required function, a steering
    /// loop, an address collision, or a middlebox attached to a
    /// non-existent router. The panic message is the full diagnostic
    /// report with `V0xx` error codes.
    pub fn new(
        plan: NetworkPlan,
        deployment: Deployment,
        policies: PolicySet,
        k: KConfig,
    ) -> Self {
        let routes = plan.topology().routing_tables();
        let addr_plan = AddressPlan::new(&plan);
        let assignments = Assignments::compute_with_gateways(
            &deployment,
            &routes,
            plan.edges(),
            plan.gateways(),
            &k,
        );
        let controller = Controller {
            plan,
            addr_plan,
            routes,
            deployment,
            policies,
            k,
            assignments,
            assertions: Vec::new(),
        };
        let report = crate::verify::verify_controller(&controller);
        assert!(!report.has_errors(), "{report}");
        controller
    }

    /// The network plan under management.
    pub fn plan(&self) -> &NetworkPlan {
        &self.plan
    }

    /// The addressing plan.
    pub fn addr_plan(&self) -> &AddressPlan {
        &self.addr_plan
    }

    /// Converged routing tables.
    pub fn routes(&self) -> &RoutingTables {
        &self.routes
    }

    /// The middlebox deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The network-wide policy list.
    pub fn policies(&self) -> &PolicySet {
        &self.policies
    }

    /// The candidate-set configuration.
    pub fn k_config(&self) -> &KConfig {
        &self.k
    }

    /// The computed candidate sets `M_x^e`.
    pub fn assignments(&self) -> &Assignments {
        &self.assignments
    }

    /// Installs the operator's isolation/waypoint assertions. They are
    /// carried on the controller so every reach verification — the
    /// converged checks ([`crate::verify_reach`]) and the epoch-hazard
    /// checks ([`crate::EpochLoop::verify_reach`]) — tests the same set.
    pub fn set_assertions(&mut self, assertions: Vec<sdm_verify::reach::Assertion>) {
        self.assertions = assertions;
    }

    /// The installed isolation/waypoint assertions.
    pub fn assertions(&self) -> &[sdm_verify::reach::Assertion] {
        &self.assertions
    }

    /// Reacts to a middlebox failure: marks it failed in the deployment
    /// and recomputes all candidate sets so freshly built enforcement
    /// routes around it. Existing [`Enforcement`] instances are
    /// unaffected (their devices were configured before the failure); use
    /// [`Enforcement::fail_middlebox`] to crash a box inside a running
    /// simulation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fail_middlebox(&mut self, id: MiddleboxId) {
        self.deployment.fail(id);
        self.repair_assignments(id);
    }

    /// Clears a failure mark and recomputes candidate sets.
    pub fn restore_middlebox(&mut self, id: MiddleboxId) {
        self.deployment.restore(id);
        self.repair_assignments(id);
    }

    /// Incremental candidate-set repair after `changed` flipped its
    /// availability: rebuilds only the columns for the functions that box
    /// implements (see [`Assignments::repair_for_middlebox`]); equivalent
    /// to the full recompute but proportionally cheaper.
    fn repair_assignments(&mut self, changed: MiddleboxId) {
        self.assignments.repair_for_middlebox(
            changed,
            &self.deployment,
            &self.routes,
            self.plan.edges(),
            self.plan.gateways(),
            &self.k,
        );
    }

    /// The local policy table for a gateway ingress proxy: policies whose
    /// source space reaches outside the enterprise (traffic from inside is
    /// already enforced by its stub proxy).
    pub fn ingress_policies(&self) -> ProjectedPolicies {
        let enterprise = self.addr_plan.enterprise_prefix();
        let ids: Vec<_> = self
            .policies
            .iter()
            .filter(|(_, p)| !p.descriptor.src.is_subset_of(enterprise))
            .map(|(id, _)| id)
            .collect();
        self.policies.project(&ids)
    }

    /// Estimates the configuration the controller must distribute to the
    /// data plane — the scalability argument of §V ("only select network
    /// devices are connected to the controller"), quantified.
    pub fn config_footprint(&self, weights: Option<&SteeringWeights>) -> ConfigFootprint {
        // bytes per policy entry: descriptor (13 B packed) + chain
        const POLICY_BYTES: u64 = 16;
        // bytes per candidate-set entry: function tag + middlebox address
        const CANDIDATE_BYTES: u64 = 6;
        let functions = self.deployment.functions();
        let mut proxy_policy_entries = 0u64;
        let mut candidate_entries = 0u64;
        for stub in self.addr_plan.stubs() {
            proxy_policy_entries += self.proxy_policies(stub).len() as u64;
            for &f in &functions {
                candidate_entries += self
                    .assignments
                    .candidates(crate::steer::SteerPoint::Proxy(stub), f)
                    .len() as u64;
            }
        }
        let mut mbox_policy_entries = 0u64;
        for (id, _) in self.deployment.iter() {
            mbox_policy_entries += self.middlebox_policies(id).len() as u64;
            for &f in &functions {
                candidate_entries += self
                    .assignments
                    .candidates(crate::steer::SteerPoint::Middlebox(id), f)
                    .len() as u64;
            }
        }
        let weight_bytes = weights.map_or(0, |w| w.footprint_bytes());
        ConfigFootprint {
            managed_devices: self.addr_plan.stub_count()
                + self.deployment.len()
                + self.plan.gateways().len(),
            proxy_policy_entries,
            mbox_policy_entries,
            candidate_entries,
            policy_bytes: (proxy_policy_entries + mbox_policy_entries) * POLICY_BYTES,
            candidate_bytes: candidate_entries * CANDIDATE_BYTES,
            weight_bytes,
        }
    }

    /// The local policy table `P_x` for a proxy: policies whose descriptors
    /// can match traffic sourced from its subnet (§III.B).
    pub fn proxy_policies(&self, stub: StubId) -> ProjectedPolicies {
        let subnet = self.addr_plan.subnet(stub);
        let ids = self.policies.relevant_to_source(subnet);
        self.policies.project(&ids)
    }

    /// The local policy table `P_x` for a middlebox: policies whose action
    /// lists contain any function it performs (§III.B).
    pub fn middlebox_policies(&self, id: MiddleboxId) -> ProjectedPolicies {
        let functions: Vec<_> = self
            .deployment
            .spec(id)
            .functions
            .iter()
            .copied()
            .collect();
        let ids = self.policies.relevant_to_functions(&functions);
        self.policies.project(&ids)
    }

    /// Solves the reduced load-balancing LP (Eq. 2) on measured traffic.
    ///
    /// # Errors
    ///
    /// See [`LbError`].
    pub fn solve_load_balanced(
        &self,
        traffic: &TrafficMatrix,
        options: LbOptions,
    ) -> Result<(SteeringWeights, LbReport), LbError> {
        build_reduced(&self.deployment, &self.assignments, &self.policies, traffic, options)
    }

    /// Like [`Controller::solve_load_balanced`], but reuses the simplex
    /// bases cached in `cache` from the previous epoch's solve when the
    /// LP shape is unchanged — the warm-start path of the online re-steer
    /// control loop. Falls back to a cold solve (and refreshes the cache)
    /// whenever the traffic support or candidate sets changed shape.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Controller::solve_load_balanced`].
    pub fn solve_load_balanced_with_cache(
        &self,
        traffic: &TrafficMatrix,
        options: LbOptions,
        cache: &mut LbWarmCache,
    ) -> Result<(SteeringWeights, LbReport), LbError> {
        build_reduced_with_cache(
            &self.deployment,
            &self.assignments,
            &self.policies,
            traffic,
            options,
            Some(cache),
        )
    }

    /// Solves the full per-(s,d,p) LP (Eq. 1); for the formulation
    /// ablation.
    ///
    /// # Errors
    ///
    /// See [`LbError`].
    pub fn solve_load_balanced_full(
        &self,
        traffic: &TrafficMatrix,
        options: LbOptions,
    ) -> Result<(SteeringWeights, LbReport), LbError> {
        build_full(&self.deployment, &self.assignments, &self.policies, traffic, options)
    }

    /// Builds a ready-to-run enforcement simulation: one simulator with all
    /// middleboxes and one policy proxy per stub attached and configured.
    ///
    /// `weights` must be provided for [`Strategy::LoadBalanced`] (obtained
    /// from [`Controller::solve_load_balanced`]); it is ignored by the
    /// other strategies.
    pub fn enforcement(
        &self,
        strategy: Strategy,
        weights: Option<SteeringWeights>,
        options: EnforcementOptions,
    ) -> Enforcement {
        let mbox_addrs: Vec<_> = (0..self.deployment.len())
            .map(preassigned_device_addr)
            .collect();
        let addr_to_mbox: FxHashMap<_, _> = mbox_addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, MiddleboxId(i as u32)))
            .collect();
        let tel = Arc::new(sdm_telemetry::ShardTelemetry::new(
            options.telemetry.unwrap_or_else(sdm_telemetry::env_enabled),
        ));
        let config = Arc::new(RuntimeConfig {
            strategy,
            assignments: self.assignments.clone(),
            weights: WeightsCell::new(weights),
            mbox_addrs,
            addr_to_mbox,
            addr_plan: self.addr_plan.clone(),
            encoding: options.encoding,
            mbox_functions: self
                .deployment
                .iter()
                .map(|(_, spec)| spec.functions.clone())
                .collect(),
            tel: Arc::clone(&tel),
        });

        let mut sim = Simulator::new(&self.plan);
        sim.set_mtu(options.mtu);
        sim.set_telemetry(Arc::clone(&tel));
        let measurements = Arc::new(Mutex::new(TrafficMatrix::new()));

        // Middleboxes first so their device ids (and addresses) are dense
        // from zero, matching `preassigned_device_addr`.
        let mut mbox_devices = Vec::with_capacity(self.deployment.len());
        let mut mbox_states = Vec::with_capacity(self.deployment.len());
        for (id, spec) in self.deployment.iter() {
            let state: Shared<MboxState> = Arc::new(Mutex::new(MboxState::new(
                options.flow_ttl,
                options.label_ttl,
                options.neg_cache_sets,
            )));
            let device = MiddleboxDevice::new(
                id,
                spec.functions.clone(),
                LocalClassifier::new(self.middlebox_policies(id), options.classifier),
                Arc::clone(&config),
                Arc::clone(&state),
            );
            let (dev, addr) = sim.attach(spec.router, spec.attachment(), Box::new(device));
            debug_assert_eq!(addr, config.mbox_addr(id));
            mbox_devices.push(dev);
            mbox_states.push(state);
        }

        // One proxy per stub network (§III.A). In-path attachment: the
        // proxy sits between the stub and its edge router.
        let mut proxy_devices = Vec::with_capacity(self.plan.edges().len());
        let mut proxy_states = Vec::with_capacity(self.plan.edges().len());
        for stub in self.addr_plan.stubs() {
            let state: Shared<ProxyState> =
                Arc::new(Mutex::new(ProxyState::new(options.flow_ttl, options.neg_cache_sets)));
            let device = ProxyDevice::new(
                stub,
                self.addr_plan.subnet(stub),
                LocalClassifier::new(self.proxy_policies(stub), options.classifier),
                Arc::clone(&config),
                Arc::clone(&state),
                Arc::clone(&measurements),
            );
            let (dev, _) = sim.attach(
                self.addr_plan.edge_router(stub),
                Attachment::InPath,
                Box::new(device),
            );
            sim.set_stub_handler(stub, dev);
            proxy_devices.push(dev);
            proxy_states.push(state);
        }

        // Gateway ingress proxies (Figure 2's proxy-y wiring): enforce
        // policies on traffic entering from outside.
        let mut ingress_states = Vec::with_capacity(self.plan.gateways().len());
        for (gi, &gw) in self.plan.gateways().iter().enumerate() {
            let state: Shared<ProxyState> =
                Arc::new(Mutex::new(ProxyState::new(options.flow_ttl, options.neg_cache_sets)));
            let device = IngressProxy::new(
                gi as u32,
                sdm_policy::LocalClassifier::new(self.ingress_policies(), options.classifier),
                Arc::clone(&config),
                Arc::clone(&state),
            );
            let (dev, _) = sim.attach(gw, Attachment::InPath, Box::new(device));
            sim.set_ingress_handler(gw, dev);
            ingress_states.push(state);
        }

        Enforcement {
            sim,
            mbox_devices,
            proxy_devices,
            mbox_states,
            proxy_states,
            ingress_states,
            measurements,
            config,
            tel,
            deployment_len: self.deployment.len(),
        }
    }
}

/// A wired-up enforcement simulation: inject traffic, run, read loads.
pub struct Enforcement {
    sim: Simulator,
    mbox_devices: Vec<sdm_netsim::DeviceId>,
    proxy_devices: Vec<sdm_netsim::DeviceId>,
    mbox_states: Vec<Shared<MboxState>>,
    proxy_states: Vec<Shared<ProxyState>>,
    ingress_states: Vec<Shared<ProxyState>>,
    measurements: Arc<Mutex<TrafficMatrix>>,
    config: Arc<RuntimeConfig>,
    tel: Arc<sdm_telemetry::ShardTelemetry>,
    deployment_len: usize,
}

impl Enforcement {
    /// The underlying simulator (read access for statistics).
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Mutable access to the simulator (e.g. to change the MTU).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// The runtime configuration in force.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The hot-path telemetry collector shared by this enforcement's
    /// devices and simulator.
    pub fn telemetry(&self) -> &sdm_telemetry::ShardTelemetry {
        &self.tel
    }

    /// Number of gateway ingress proxies attached.
    pub fn ingress_count(&self) -> usize {
        self.ingress_states.len()
    }

    /// Number of middleboxes attached.
    pub fn middlebox_count(&self) -> usize {
        self.deployment_len
    }

    /// Assembles the full deterministic metrics [`sdm_telemetry::Snapshot`]
    /// for this enforcement: device-table and steering counters, simulator
    /// totals and the hot-path histograms.
    pub fn telemetry_snapshot(&self) -> sdm_telemetry::Snapshot {
        crate::telemetry::scrape(self)
    }

    /// Injects one flow as a single aggregate event of `packets` identical
    /// packets (the exact fast path for load experiments).
    ///
    /// # Panics
    ///
    /// Panics if the flow's source address is not inside any stub subnet.
    pub fn inject_flow(&mut self, flow: FiveTuple, packets: u64, payload: u32) {
        let stub = self
            .config
            .addr_plan
            .stub_of(flow.src)
            .expect("flow source must lie in a stub subnet");
        self.sim
            .inject_from_stub(stub, Packet::with_weight(flow, payload, packets));
    }

    /// Injects one flow as `packets` individual packets starting at
    /// `start`, one every `gap` ticks (packet-level mode; lets control
    /// round trips complete between packets).
    ///
    /// # Panics
    ///
    /// Panics if the flow's source address is not inside any stub subnet.
    pub fn inject_flow_packets(
        &mut self,
        flow: FiveTuple,
        packets: u64,
        payload: u32,
        start: SimTime,
        gap: u64,
    ) {
        let stub = self
            .config
            .addr_plan
            .stub_of(flow.src)
            .expect("flow source must lie in a stub subnet");
        for i in 0..packets {
            self.sim
                .inject_from_stub_at(stub, Packet::data(flow, payload), start.after(i * gap));
        }
    }

    /// Runs the simulation to completion; returns events processed.
    pub fn run(&mut self) -> u64 {
        self.sim.run_until_idle()
    }

    /// Per-middlebox packet loads (indexed by [`MiddleboxId`]) — the
    /// quantity of Figures 4–5.
    pub fn middlebox_loads(&self) -> Vec<u64> {
        self.mbox_devices
            .iter()
            .map(|d| self.sim.stats().device_received[d.index()])
            .collect()
    }

    /// Per-type load summary (Table III).
    pub fn load_report(&self, deployment: &Deployment) -> LoadReport {
        assert_eq!(deployment.len(), self.deployment_len, "deployment mismatch");
        LoadReport::from_loads(deployment, &self.middlebox_loads())
    }

    /// Snapshot of the traffic measurements the proxies collected.
    pub fn measurements(&self) -> TrafficMatrix {
        self.measurements.lock().clone()
    }

    /// Drains the accumulated traffic measurements, leaving an empty
    /// matrix behind. The epoch control loop calls this at each epoch
    /// boundary so every re-solve sees exactly one epoch's traffic.
    pub fn take_measurements(&self) -> TrafficMatrix {
        std::mem::take(&mut *self.measurements.lock())
    }

    /// Swaps a new weight table into the shared runtime config (§III.C
    /// re-steering). Takes effect for *new* flows on their next
    /// flow-cache miss; live flows stay sticky to their cached decision.
    pub fn update_weights(&self, weights: Option<SteeringWeights>) {
        self.config.weights.swap(weights);
    }

    /// Handle to one proxy's mutable state (flow cache, counters).
    pub fn proxy_state(&self, stub: StubId) -> Shared<ProxyState> {
        Arc::clone(&self.proxy_states[stub.index()])
    }

    /// Handle to one gateway ingress proxy's state (index into the plan's
    /// gateway list).
    pub fn ingress_state(&self, gateway: usize) -> Shared<ProxyState> {
        Arc::clone(&self.ingress_states[gateway])
    }

    /// Handle to one middlebox's mutable state (tables, counters).
    pub fn mbox_state(&self, id: MiddleboxId) -> Shared<MboxState> {
        Arc::clone(&self.mbox_states[id.index()])
    }

    /// Gives every middlebox the same finite processing rate (see
    /// [`sdm_netsim::Simulator::set_device_service_time`]); packets then
    /// queue in front of overloaded boxes, turning load imbalance into
    /// observable delay.
    pub fn set_middlebox_service_time(&mut self, ticks_per_packet: u64) {
        for i in 0..self.mbox_devices.len() {
            let dev = self.mbox_devices[i];
            self.sim.set_device_service_time(dev, ticks_per_packet);
        }
    }

    /// Crashes a middlebox inside this running simulation: from now on it
    /// blackholes everything it receives. Pair with
    /// [`Controller::fail_middlebox`] + a fresh enforcement to model the
    /// controller's recovery.
    pub fn fail_middlebox(&mut self, id: MiddleboxId) {
        self.mbox_states[id.index()].lock().failed = true;
    }

    /// Restores a crashed middlebox inside this running simulation.
    pub fn restore_middlebox(&mut self, id: MiddleboxId) {
        self.mbox_states[id.index()].lock().failed = false;
    }

    /// Device id of a proxy inside the simulator.
    pub fn proxy_device(&self, stub: StubId) -> sdm_netsim::DeviceId {
        self.proxy_devices[stub.index()]
    }

    /// Device id of a middlebox inside the simulator.
    pub fn mbox_device(&self, id: MiddleboxId) -> sdm_netsim::DeviceId {
        self.mbox_devices[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::MiddleboxSpec;
    use crate::measure::DestKey;
    use sdm_netsim::Protocol;
    use sdm_policy::{ActionList, NetworkFunction::*, Policy, PolicyId, TrafficDescriptor};
    use sdm_topology::campus::campus;

    fn world(label_switching: bool) -> (Controller, EnforcementOptions) {
        let plan = campus(1);
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[8], 1.0));
        dep.add(MiddleboxSpec::new(Ids, plan.cores()[4], 1.0));
        let mut policies = PolicySet::new();
        // web traffic: FW -> IDS
        policies.push(Policy::new(
            TrafficDescriptor::new().dst_port(80),
            ActionList::chain([Firewall, Ids]),
        ));
        let controller = Controller::new(plan, dep, policies, KConfig::uniform(2));
        let options = EnforcementOptions {
            encoding: if label_switching {
                SteeringEncoding::LabelSwitching
            } else {
                SteeringEncoding::IpOverIp
            },
            ..Default::default()
        };
        (controller, options)
    }

    fn web_flow(c: &Controller, from: u32, to: u32, sp: u16) -> FiveTuple {
        FiveTuple {
            src: c.addr_plan().host(StubId(from), 0),
            dst: c.addr_plan().host(StubId(to), 0),
            src_port: sp,
            dst_port: 80,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn hot_potato_chain_end_to_end() {
        let (c, opts) = world(false);
        let mut enf = c.enforcement(Strategy::HotPotato, None, opts);
        let ft = web_flow(&c, 0, 5, 1000);
        enf.inject_flow(ft, 100, 500);
        enf.run();
        // delivered to stub 5
        assert_eq!(enf.sim().stats().delivered, 100);
        let loads = enf.middlebox_loads();
        // exactly one FW and the IDS processed the flow
        assert_eq!(loads[2], 100, "IDS load");
        assert_eq!(loads[0] + loads[1], 100, "one FW");
        assert!(loads[0] == 0 || loads[1] == 0);
        // measurements recorded
        let tm = enf.measurements();
        assert_eq!(tm.volume(StubId(0), DestKey::Stub(StubId(5)), PolicyId(0)), 100.0);
    }

    #[test]
    fn non_matching_traffic_bypasses_middleboxes() {
        let (c, opts) = world(false);
        let mut enf = c.enforcement(Strategy::HotPotato, None, opts);
        let mut ft = web_flow(&c, 0, 5, 1000);
        ft.dst_port = 22; // no policy
        enf.inject_flow(ft, 50, 500);
        enf.run();
        assert_eq!(enf.sim().stats().delivered, 50);
        assert_eq!(enf.middlebox_loads().iter().sum::<u64>(), 0);
        // negative caching: second flow packet batch hits the cache
        // (counters are weighted: the first aggregate of 50 packets counts
        // as 50 misses)
        let st = enf.proxy_state(StubId(0));
        assert_eq!(st.lock().flows.stats().misses, 50);
        enf.inject_flow(ft, 50, 500);
        enf.run();
        assert_eq!(st.lock().flows.stats().hits, 50);
    }

    #[test]
    fn random_strategy_spreads_over_candidates() {
        let (c, opts) = world(false);
        let mut enf = c.enforcement(Strategy::Random { salt: 42 }, None, opts);
        for sp in 0..200 {
            enf.inject_flow(web_flow(&c, 0, 5, 1000 + sp), 1, 100);
        }
        enf.run();
        let loads = enf.middlebox_loads();
        assert!(loads[0] > 20, "fw0 unused: {loads:?}");
        assert!(loads[1] > 20, "fw1 unused: {loads:?}");
        assert_eq!(loads[0] + loads[1], 200);
    }

    #[test]
    fn load_balanced_follows_lp_weights() {
        let (c, opts) = world(false);
        // measurement pass under hot-potato
        let mut measure = c.enforcement(Strategy::HotPotato, None, opts);
        for sp in 0..400u16 {
            measure.inject_flow(web_flow(&c, (sp % 4) as u32, 5, 1000 + sp), 10, 100);
        }
        measure.run();
        let tm = measure.measurements();
        assert_eq!(tm.total(PolicyId(0)), 4000.0);
        let (weights, report) = c.solve_load_balanced(&tm, LbOptions::default()).unwrap();
        // two equal FWs: each should carry 2000; IDS carries 4000
        assert!((report.lambda - 4000.0).abs() < 1e-6);
        let mut enf = c.enforcement(Strategy::LoadBalanced, Some(weights), opts);
        for sp in 0..400u16 {
            enf.inject_flow(web_flow(&c, (sp % 4) as u32, 5, 1000 + sp), 10, 100);
        }
        enf.run();
        let loads = enf.middlebox_loads();
        // hash-based splitting approximates the 50/50 optimum
        let frac = loads[0] as f64 / 4000.0;
        assert!((0.40..0.60).contains(&frac), "loads={loads:?}");
        assert_eq!(loads[2], 4000);
    }

    #[test]
    fn label_switching_equivalent_delivery_less_encapsulation() {
        let (c, opts_tunnel) = world(false);
        let (c2, opts_label) = world(true);

        // same flow pattern under both modes, packet-level
        let mut tun = c.enforcement(Strategy::HotPotato, None, opts_tunnel);
        let ft = web_flow(&c, 0, 5, 2000);
        tun.inject_flow_packets(ft, 50, 500, SimTime(0), 100);
        tun.run();

        let mut lab = c2.enforcement(Strategy::HotPotato, None, opts_label);
        let ft2 = web_flow(&c2, 0, 5, 2000);
        lab.inject_flow_packets(ft2, 50, 500, SimTime(0), 100);
        lab.run();

        // identical delivery and identical middlebox loads
        assert_eq!(tun.sim().stats().delivered, 50);
        assert_eq!(lab.sim().stats().delivered, 50);
        assert_eq!(tun.middlebox_loads(), lab.middlebox_loads());
        // label switching drastically reduces encapsulated hops
        assert!(
            lab.sim().stats().encapsulated_hops < tun.sim().stats().encapsulated_hops,
            "label {} vs tunnel {}",
            lab.sim().stats().encapsulated_hops,
            tun.sim().stats().encapsulated_hops
        );
        // the proxy flagged the flow and label-switched later packets
        let st = lab.proxy_state(StubId(0));
        let counters = st.lock().counters;
        assert!(counters.control_received >= 1);
        assert!(counters.label_switched > 0);
    }

    #[test]
    fn config_footprint_scales_with_managed_devices_only() {
        let (c, _) = world(false);
        let fp = c.config_footprint(None);
        // 3 middleboxes + 10 proxies + 2 gateway ingress proxies, never
        // the routers themselves
        assert_eq!(fp.managed_devices, 15);
        assert!(fp.proxy_policy_entries > 0);
        assert!(fp.candidate_entries > 0);
        assert_eq!(fp.weight_bytes, 0);
        assert!(fp.total_bytes() > 0);
        // with LP weights the footprint grows by exactly their bytes
        let mut measure = c.enforcement(Strategy::HotPotato, None, Default::default());
        measure.inject_flow(web_flow(&c, 0, 5, 1000), 100, 100);
        measure.run();
        let (w, _) = c
            .solve_load_balanced(&measure.measurements(), LbOptions::default())
            .unwrap();
        let fp2 = c.config_footprint(Some(&w));
        assert_eq!(fp2.total_bytes(), fp.total_bytes() + w.footprint_bytes());
    }

    #[test]
    fn inbound_traffic_is_delivered_via_proxy() {
        let (c, opts) = world(false);
        let mut enf = c.enforcement(Strategy::HotPotato, None, opts);
        let ft = web_flow(&c, 3, 7, 1234);
        enf.inject_flow(ft, 10, 100);
        enf.run();
        assert_eq!(enf.sim().stats().delivered, 10);
        let dst_proxy = enf.proxy_state(StubId(7));
        assert_eq!(dst_proxy.lock().counters.inbound, 10);
    }

    #[test]
    #[should_panic(expected = "stub subnet")]
    fn foreign_source_rejected() {
        let (c, opts) = world(false);
        let mut enf = c.enforcement(Strategy::HotPotato, None, opts);
        let ft = FiveTuple {
            src: "8.8.8.8".parse().unwrap(),
            dst: c.addr_plan().host(StubId(0), 0),
            src_port: 1,
            dst_port: 80,
            proto: Protocol::Tcp,
        };
        enf.inject_flow(ft, 1, 100);
    }
}
