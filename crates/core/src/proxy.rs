//! The policy proxy (§III.A–B): intercepts all traffic entering or leaving
//! its stub network, matches outbound packets against its policy table
//! `P_x`, steers policy traffic into middlebox chains via IP-over-IP (or
//! label switching once established), measures per-policy volumes, and
//! delivers inbound traffic into the stub.

use std::sync::Arc;

use sdm_util::sync::Mutex;

use sdm_netsim::{Device, DeviceCtx, FiveTuple, Label, Packet, PacketId, PacketKind, Prefix, StubId};
use sdm_policy::{ActionList, LocalClassifier, PolicyId};

use crate::measure::{DestKey, TrafficMatrix};
use crate::runtime::{ProxyState, RuntimeConfig, Shared};
use crate::steer::SteerPoint;

/// The steering decision for one outbound flow: matched policy + actions
/// (`None` = no policy), the assigned label, whether the flow has been
/// flagged label-switched, and the pinned first-hop middlebox (raw id) if
/// one is recorded. Exactly the tuple the flow-cache lookup yields, so one
/// probe's result can be reused across a same-flow run in a batch.
type FlowDecision = (Option<(PolicyId, ActionList)>, Option<Label>, bool, Option<u32>);

/// The policy-proxy device for one stub network.
pub struct ProxyDevice {
    stub: StubId,
    subnet: Prefix,
    policies: LocalClassifier,
    config: Arc<RuntimeConfig>,
    state: Shared<ProxyState>,
    measurements: Arc<Mutex<TrafficMatrix>>,
}

impl ProxyDevice {
    /// Creates the proxy for `stub` with its controller-installed local
    /// policy table `P_x`.
    pub fn new(
        stub: StubId,
        subnet: Prefix,
        policies: LocalClassifier,
        config: Arc<RuntimeConfig>,
        state: Shared<ProxyState>,
        measurements: Arc<Mutex<TrafficMatrix>>,
    ) -> Self {
        ProxyDevice {
            stub,
            subnet,
            policies,
            config,
            state,
            measurements,
        }
    }

    fn dest_key(&self, pkt: &Packet) -> DestKey {
        match self.config.addr_plan.stub_of(pkt.inner.dst) {
            Some(s) => DestKey::Stub(s),
            None => DestKey::External,
        }
    }

    /// Resolves the steering decision for an outbound packet: flow-cache
    /// fast path (§III.D), falling back to the multi-field policy lookup
    /// and caching the result (with optional label allocation, §III.E).
    fn probe_flow(
        &self,
        state: &mut ProxyState,
        ft: &FiveTuple,
        now: sdm_netsim::SimTime,
        weight: u64,
    ) -> FlowDecision {
        let cached = state
            .flows
            .lookup(ft, now, weight)
            .map(|e| (e.action.clone(), e.label, e.label_switched, e.pinned_next));
        match cached {
            Some(c) => c,
            None => {
                // Slow path: multi-field policy lookup, then cache.
                match self.policies.first_match(ft) {
                    None => {
                        state.flows.insert_negative(*ft, now);
                        (None, None, false, None)
                    }
                    Some((id, policy)) => {
                        let actions = policy.actions.clone();
                        state.flows.insert_positive(*ft, id, actions.clone(), now);
                        let label = if self.config.label_switching() && !actions.is_permit() {
                            let l = state.labels.allocate();
                            if let Some(l) = l {
                                state.flows.set_label(ft, l);
                            }
                            l
                        } else {
                            None
                        };
                        (Some((id, actions)), label, false, None)
                    }
                }
            }
        }
    }

    /// Applies a resolved [`FlowDecision`] to one outbound packet: measure,
    /// then permit / source-route / label-switch / encapsulate exactly as
    /// the scalar path does. The proxy state lock is already held.
    fn steer_outbound(
        &self,
        ctx: &mut DeviceCtx<'_>,
        state: &mut ProxyState,
        pkt: PacketId,
        ft: &FiveTuple,
        weight: u64,
        decision: &FlowDecision,
    ) {
        let (action, label, label_switched, pinned) = decision;
        let Some((policy_id, actions)) = action else {
            // No policy: forward unchanged.
            state.counters.permitted += weight;
            ctx.forward(pkt);
            return;
        };
        let policy_id = *policy_id;

        // Measure T_{s,d,p} for the controller (§III.C).
        self.measurements
            .lock()
            .record(self.stub, self.dest_key(ctx.pkt(pkt)), policy_id, weight as f64);

        if actions.is_permit() {
            state.counters.permitted += weight;
            ctx.forward(pkt);
            return;
        }

        // Strict source routing: compute the whole chain here and embed it.
        if self.config.encoding == crate::steer::SteeringEncoding::SourceRouting {
            let Some(chain) =
                self.config
                    .resolve_chain(SteerPoint::Proxy(self.stub), policy_id, actions, ft)
            else {
                state.counters.unenforceable += weight;
                ctx.drop_pkt(pkt);
                return;
            };
            let final_dst = ctx.pkt(pkt).inner.dst;
            let mut segments: Vec<sdm_netsim::Ipv4Addr> =
                chain.iter().map(|&m| self.config.mbox_addr(m)).collect();
            segments.push(final_dst);
            ctx.pkt_mut(pkt).set_source_route(segments);
            state.counters.steered += weight;
            ctx.forward(pkt);
            return;
        }

        // Steer to the first function's middlebox. A pin recorded on the
        // flow entry wins: live flows keep their original selection even
        // after the epoch loop swapped in new weights (§III.B stickiness).
        let next = match pinned {
            Some(raw) => {
                self.config.tel.steer_pin_replay(sdm_telemetry::Hop::Proxy);
                crate::deployment::MiddleboxId(*raw)
            }
            None => {
                let first_fn = actions.first().expect("non-permit chain");
                let commodity = self.config.commodity_of(ctx.pkt(pkt));
                let Some(next) = self.config.select_for_commodity(
                    SteerPoint::Proxy(self.stub),
                    policy_id,
                    first_fn,
                    0,
                    ft,
                    commodity,
                ) else {
                    state.counters.unenforceable += weight;
                    ctx.drop_pkt(pkt); // drop: the policy cannot be enforced
                    return;
                };
                // A *fresh* selection is one that first pins the flow —
                // batched run-mates replay the first packet's unpinned
                // decision tuple and re-derive the same selection, so the
                // counter keys off the pin transition, which happens
                // exactly once per flow on every execution path.
                if self.config.tel.enabled() && state.flows.pinned_next(ft).is_none() {
                    self.config.tel.steer_decision(sdm_telemetry::Hop::Proxy);
                }
                state.flows.pin_next(ft, next.0);
                next
            }
        };
        let next_addr = self.config.mbox_addr(next);

        if *label_switched && self.config.label_switching() {
            // §III.E fast path: label + destination rewrite, no tunnel.
            if let Some(l) = label {
                let p = ctx.pkt_mut(pkt);
                p.label = Some(*l);
                p.inner.dst = next_addr;
                state.counters.label_switched += weight;
                state.counters.steered += weight;
                ctx.forward(pkt);
                return;
            }
        }

        // §III.B: IP-over-IP with the proxy as outer source.
        let entry = ctx.addr();
        let p = ctx.pkt_mut(pkt);
        p.label = *label;
        p.encapsulate(entry, next_addr);
        state.counters.steered += weight;
        ctx.forward(pkt);
    }

    /// Handles a label-ready control packet (§III.E). Returns `true` if the
    /// packet was consumed.
    fn handle_control(
        &self,
        ctx: &mut DeviceCtx<'_>,
        state: &mut ProxyState,
        pkt: PacketId,
    ) -> bool {
        if let PacketKind::LabelReady(flow) = ctx.pkt(pkt).kind {
            state.counters.control_received += ctx.pkt(pkt).weight;
            state.flows.flag_label_switched(&flow);
            ctx.drop_pkt(pkt);
            return true;
        }
        false
    }

    /// Delivers an inbound packet into the stub. Returns `true` if the
    /// packet was addressed to us and consumed.
    fn handle_inbound(
        &self,
        ctx: &mut DeviceCtx<'_>,
        state: &mut ProxyState,
        pkt: PacketId,
    ) -> bool {
        if self.subnet.contains(ctx.pkt(pkt).current_dst()) {
            state.counters.inbound += ctx.pkt(pkt).weight;
            while ctx.pkt_mut(pkt).decapsulate().is_some() {}
            ctx.deliver_local(pkt);
            return true;
        }
        false
    }
}

impl Device for ProxyDevice {
    fn receive(&mut self, ctx: &mut DeviceCtx<'_>, pkt: sdm_netsim::PacketId) {
        let mut state = self.state.lock();

        // 1. Label-ready control packet from the last middlebox (§III.E):
        //    flag the flow for label switching and consume the packet.
        if self.handle_control(ctx, &mut state, pkt) {
            return;
        }

        // 2. Inbound traffic addressed into our stub: final delivery.
        if self.handle_inbound(ctx, &mut state, pkt) {
            return;
        }

        // 3. Outbound traffic from our stub.
        let (ft, weight) = {
            let p = ctx.pkt(pkt);
            (p.five_tuple(), p.weight)
        };
        state.counters.outbound += weight;
        let decision = self.probe_flow(&mut state, &ft, ctx.now(), weight);
        self.steer_outbound(ctx, &mut state, pkt, &ft, weight, &decision);
    }

    /// Vector path: one lock acquisition for the whole batch, and one
    /// flow-table probe per consecutive same-flow run — run-mates reuse the
    /// first packet's decision tuple (recording their cache hits via
    /// [`sdm_policy::FlowTable::record_run_hit`]) instead of re-probing.
    ///
    /// Bit-identical to per-packet [`ProxyDevice::receive`]: a scalar
    /// lookup by a run-mate is a guaranteed hit returning exactly the
    /// cached decision, and control/inbound packets conservatively end the
    /// current run because they can mutate flow state (e.g. flag a flow
    /// label-switched mid-tick).
    fn receive_batch(&mut self, ctx: &mut DeviceCtx<'_>, pkts: &[PacketId]) {
        let mut state = self.state.lock();
        let mut run: Option<(FiveTuple, FlowDecision)> = None;
        for &pkt in pkts {
            if self.handle_control(ctx, &mut state, pkt) || self.handle_inbound(ctx, &mut state, pkt)
            {
                // Control packets mutate flow state; end the run so the
                // next data packet re-probes and observes the update.
                run = None;
                continue;
            }
            let (ft, weight) = {
                let p = ctx.pkt(pkt);
                (p.five_tuple(), p.weight)
            };
            state.counters.outbound += weight;
            match &run {
                // A run-mate's scalar lookup would land on the cached
                // entry: count the hit — classified by the decision's
                // negativity, as a real lookup would classify it.
                Some((key, d)) if *key == ft => {
                    if d.0.is_none() {
                        state.flows.record_run_negative_hit(weight);
                    } else {
                        state.flows.record_run_hit(weight);
                    }
                }
                _ => {
                    let d = self.probe_flow(&mut state, &ft, ctx.now(), weight);
                    run = Some((ft, d));
                }
            }
            let Some((_, decision)) = &run else { continue };
            self.steer_outbound(ctx, &mut state, pkt, &ft, weight, decision);
        }
    }
}

#[cfg(test)]
mod tests {
    //! Proxy behaviour is exercised end-to-end in the controller tests and
    //! the workspace integration tests; unit tests here cover the pieces
    //! that do not need a running simulator.

    use super::*;
    use crate::deployment::{Deployment, MiddleboxSpec};
    use crate::steer::{Assignments, KConfig, Strategy};
    use sdm_netsim::AddressPlan;
    use sdm_policy::NetworkFunction::*;
    use sdm_topology::campus::campus;

    #[test]
    fn dest_key_resolves_stub_and_external() {
        let plan = campus(1);
        let addr_plan = AddressPlan::new(&plan);
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
        let routes = plan.topology().routing_tables();
        let assignments = Assignments::compute(&dep, &routes, plan.edges(), &KConfig::uniform(1));
        let config = Arc::new(RuntimeConfig {
            strategy: Strategy::HotPotato,
            assignments,
            weights: crate::runtime::WeightsCell::new(None),
            mbox_addrs: vec![sdm_netsim::preassigned_device_addr(0)],
            addr_to_mbox: Default::default(),
            addr_plan: addr_plan.clone(),
            encoding: Default::default(),
            mbox_functions: dep.iter().map(|(_, s)| s.functions.clone()).collect(),
            tel: Arc::new(sdm_telemetry::ShardTelemetry::new(false)),
        });
        let proxy = ProxyDevice::new(
            StubId(0),
            addr_plan.subnet(StubId(0)),
            LocalClassifier::new(Default::default(), Default::default()),
            config,
            Arc::new(Mutex::new(ProxyState::new(1000, sdm_policy::DEFAULT_NEG_SETS))),
            Arc::new(Mutex::new(TrafficMatrix::new())),
        );
        let internal = Packet::data(
            sdm_netsim::FiveTuple {
                src: addr_plan.host(StubId(0), 0),
                dst: addr_plan.host(StubId(3), 0),
                src_port: 1,
                dst_port: 2,
                proto: sdm_netsim::Protocol::Tcp,
            },
            10,
        );
        assert_eq!(proxy.dest_key(&internal), DestKey::Stub(StubId(3)));
        let mut external = internal.clone();
        external.inner.dst = "8.8.8.8".parse().unwrap();
        assert_eq!(proxy.dest_key(&external), DestKey::External);
    }
}
