//! Steering: candidate middlebox sets (`m_x^e`, `M_x^e`), the three
//! enforcement strategies, and flow-sticky next-hop selection (§III.B–C).

use std::fmt;

use sdm_util::FxHashMap;

use sdm_netsim::{FiveTuple, StubId};
use sdm_policy::{NetworkFunction, PolicyId};
use sdm_topology::RoutingTables;

use crate::deployment::{Deployment, MiddleboxId};

/// A place that makes steering decisions: a policy proxy or a middlebox —
/// the paper's "arbitrary proxy or middlebox x".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteerPoint {
    /// The policy proxy of a stub network.
    Proxy(StubId),
    /// A middlebox.
    Middlebox(MiddleboxId),
    /// The ingress policy proxy at a gateway (dense index into the plan's
    /// gateway list); enforces policies on traffic entering from outside.
    Gateway(u32),
}

impl fmt::Display for SteerPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SteerPoint::Proxy(s) => write!(f, "proxy({s})"),
            SteerPoint::Middlebox(m) => write!(f, "mbox({m})"),
            SteerPoint::Gateway(g) => write!(f, "gw({g})"),
        }
    }
}

/// Per-function candidate-set sizes `k` (§III.C / §IV.A).
#[derive(Debug, Clone, PartialEq)]
pub struct KConfig {
    per_function: FxHashMap<NetworkFunction, usize>,
    default_k: usize,
}

impl KConfig {
    /// Uniform `k` for every function. `k = 1` reduces the load-balanced
    /// strategy to hot-potato.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn uniform(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        KConfig {
            per_function: FxHashMap::default(),
            default_k: k,
        }
    }

    /// The paper's evaluation setting: `k = 4` for FW and IDS, `k = 2` for
    /// WP and TM.
    pub fn paper_default() -> Self {
        let mut cfg = KConfig::uniform(1);
        cfg.set(NetworkFunction::Firewall, 4);
        cfg.set(NetworkFunction::Ids, 4);
        cfg.set(NetworkFunction::WebProxy, 2);
        cfg.set(NetworkFunction::TrafficMonitor, 2);
        cfg
    }

    /// Sets `k` for one function.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn set(&mut self, f: NetworkFunction, k: usize) {
        assert!(k >= 1, "k must be at least 1");
        self.per_function.insert(f, k);
    }

    /// The `k` in force for a function.
    pub fn k_for(&self, f: NetworkFunction) -> usize {
        self.per_function.get(&f).copied().unwrap_or(self.default_k)
    }
}

impl Default for KConfig {
    fn default() -> Self {
        KConfig::paper_default()
    }
}

/// The controller-computed candidate sets: for every steer point `x` and
/// function `e`, the `k` closest middleboxes offering `e` (`M_x^e`), sorted
/// closest-first so index 0 is the hot-potato target `m_x^e` (§III.B–C).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Assignments {
    proxy: Vec<FxHashMap<NetworkFunction, Vec<MiddleboxId>>>,
    mbox: Vec<FxHashMap<NetworkFunction, Vec<MiddleboxId>>>,
    gateway: Vec<FxHashMap<NetworkFunction, Vec<MiddleboxId>>>,
}

impl Assignments {
    /// Computes candidate sets for every proxy (one per stub) and every
    /// middlebox from routing distances.
    ///
    /// A middlebox that itself offers `e` is excluded from its own
    /// candidate set for `e` (it applies the function locally instead).
    pub fn compute(
        deployment: &Deployment,
        routes: &RoutingTables,
        edge_routers: &[sdm_topology::NodeId],
        k: &KConfig,
    ) -> Self {
        Self::compute_with_gateways(deployment, routes, edge_routers, &[], k)
    }

    /// Like [`Assignments::compute`], additionally building candidate sets
    /// for ingress proxies at the listed gateways.
    pub fn compute_with_gateways(
        deployment: &Deployment,
        routes: &RoutingTables,
        edge_routers: &[sdm_topology::NodeId],
        gateways: &[sdm_topology::NodeId],
        k: &KConfig,
    ) -> Self {
        let functions = deployment.functions();
        let mut proxy = Vec::with_capacity(edge_routers.len());
        for &edge in edge_routers {
            let mut per_fn = FxHashMap::default();
            for &e in &functions {
                let offer = deployment.offering(e);
                per_fn.insert(e, k_closest_boxes(&offer, deployment, routes, edge, k.k_for(e)));
            }
            proxy.push(per_fn);
        }
        let mut gateway = Vec::with_capacity(gateways.len());
        for &gw in gateways {
            let mut per_fn = FxHashMap::default();
            for &e in &functions {
                let offer = deployment.offering(e);
                per_fn.insert(e, k_closest_boxes(&offer, deployment, routes, gw, k.k_for(e)));
            }
            gateway.push(per_fn);
        }
        let mut mbox = Vec::with_capacity(deployment.len());
        for (id, spec) in deployment.iter() {
            let mut per_fn = FxHashMap::default();
            for &e in &functions {
                if spec.implements(e) {
                    continue;
                }
                let offer: Vec<MiddleboxId> = deployment
                    .offering(e)
                    .into_iter()
                    .filter(|&m| m != id)
                    .collect();
                per_fn.insert(
                    e,
                    k_closest_boxes(&offer, deployment, routes, spec.router, k.k_for(e)),
                );
            }
            mbox.push(per_fn);
        }
        Assignments {
            proxy,
            mbox,
            gateway,
        }
    }

    /// Incrementally repairs the candidate sets after middlebox `changed`
    /// failed or was restored (a box joining or dying): only the columns
    /// for the functions `changed` implements are recomputed — every
    /// other function's offering set is unaffected by the flip, so its
    /// lists are left untouched. Produces exactly what a full
    /// [`Assignments::compute_with_gateways`] over the same deployment
    /// state would (pinned by a property test).
    ///
    /// Cost: `O(points × |functions(changed)|)` list rebuilds instead of
    /// the full `O(points × |Π|)`.
    #[allow(clippy::too_many_arguments)]
    pub fn repair_for_middlebox(
        &mut self,
        changed: MiddleboxId,
        deployment: &Deployment,
        routes: &RoutingTables,
        edge_routers: &[sdm_topology::NodeId],
        gateways: &[sdm_topology::NodeId],
        k: &KConfig,
    ) {
        let affected: Vec<NetworkFunction> = deployment
            .spec(changed)
            .functions
            .iter()
            .copied()
            .collect();
        for &e in &affected {
            let offer = deployment.offering(e);
            let kk = k.k_for(e);
            for (i, per_fn) in self.proxy.iter_mut().enumerate() {
                per_fn.insert(
                    e,
                    k_closest_boxes(&offer, deployment, routes, edge_routers[i], kk),
                );
            }
            for (i, per_fn) in self.gateway.iter_mut().enumerate() {
                per_fn.insert(e, k_closest_boxes(&offer, deployment, routes, gateways[i], kk));
            }
            for (i, per_fn) in self.mbox.iter_mut().enumerate() {
                let id = MiddleboxId(i as u32);
                let spec = deployment.spec(id);
                if spec.implements(e) {
                    continue;
                }
                let others: Vec<MiddleboxId> =
                    offer.iter().copied().filter(|&m| m != id).collect();
                per_fn.insert(e, k_closest_boxes(&others, deployment, routes, spec.router, kk));
            }
        }
    }

    /// The candidate set `M_x^e`, closest first. Empty if no middlebox
    /// offers `e` reachable from `x`.
    pub fn candidates(&self, point: SteerPoint, e: NetworkFunction) -> &[MiddleboxId] {
        let map = match point {
            SteerPoint::Proxy(s) => self.proxy.get(s.index()),
            SteerPoint::Middlebox(m) => self.mbox.get(m.index()),
            SteerPoint::Gateway(g) => self.gateway.get(g as usize),
        };
        map.and_then(|m| m.get(&e)).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The hot-potato target `m_x^e` (the closest middlebox offering `e`).
    pub fn closest(&self, point: SteerPoint, e: NetworkFunction) -> Option<MiddleboxId> {
        self.candidates(point, e).first().copied()
    }
}

/// Sorts `offer` by routing distance from `from` (ties by id) and keeps
/// the first `k`.
fn k_closest_boxes(
    offer: &[MiddleboxId],
    deployment: &Deployment,
    routes: &RoutingTables,
    from: sdm_topology::NodeId,
    k: usize,
) -> Vec<MiddleboxId> {
    let mut with_dist: Vec<(u32, MiddleboxId)> = offer
        .iter()
        .filter_map(|&m| {
            routes
                .dist(from, deployment.spec(m).router)
                .map(|d| (d, m))
        })
        .collect();
    with_dist.sort_by_key(|&(d, id)| (d, id));
    with_dist.truncate(k);
    with_dist.into_iter().map(|(_, id)| id).collect()
}

/// Key identifying one steering decision: who decides (`point`), under
/// which policy, towards which position in the action list (`next_index`
/// = 0 means "towards the first function", i.e. a proxy decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeightKey {
    /// The deciding proxy or middlebox.
    pub point: SteerPoint,
    /// The governing policy.
    pub policy: PolicyId,
    /// Index of the *next* function in the policy's action list.
    pub next_index: u16,
}

/// A commodity qualifier for the full Eq. (1) formulation: the weights
/// `t_{s,d,p}(x, y)` additionally depend on the flow's source stub and
/// destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommodityKey {
    /// The base decision key.
    pub key: WeightKey,
    /// Source stub network of the flow.
    pub src: sdm_netsim::StubId,
    /// Destination of the flow.
    pub dst: crate::measure::DestKey,
}

/// The LP solution turned into forwarding state: per [`WeightKey`], the
/// split weights `t_{e,p}(x, y)` over the candidate middleboxes (§III.C).
///
/// When produced by the full Eq. (1) formulation, per-commodity weights
/// `t_{s,d,p}(x, y)` are additionally installed under [`CommodityKey`]s;
/// lookups fall back from fine to aggregate.
#[derive(Debug, Clone, Default)]
pub struct SteeringWeights {
    weights: FxHashMap<WeightKey, Vec<(MiddleboxId, f64)>>,
    fine: FxHashMap<CommodityKey, Vec<(MiddleboxId, f64)>>,
    lambda: f64,
}

impl SteeringWeights {
    /// Creates an empty weight table reporting load factor `lambda`.
    pub fn new(lambda: f64) -> Self {
        SteeringWeights {
            weights: FxHashMap::default(),
            fine: FxHashMap::default(),
            lambda,
        }
    }

    /// Installs per-commodity weights (Eq. 1 granularity).
    pub fn set_fine(&mut self, key: CommodityKey, weights: Vec<(MiddleboxId, f64)>) {
        self.fine.insert(key, weights);
    }

    /// Per-commodity weights for a key, if installed.
    pub fn get_fine(&self, key: &CommodityKey) -> Option<&[(MiddleboxId, f64)]> {
        self.fine.get(key).map(|v| v.as_slice())
    }

    /// Number of per-commodity entries.
    pub fn fine_len(&self) -> usize {
        self.fine.len()
    }

    /// The optimal maximum load factor λ the LP achieved.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Installs the weights for one key. Non-positive weights are kept (a
    /// zero-weight candidate is simply never selected).
    pub fn set(&mut self, key: WeightKey, weights: Vec<(MiddleboxId, f64)>) {
        self.weights.insert(key, weights);
    }

    /// The weights for one key, if the LP produced any.
    pub fn get(&self, key: &WeightKey) -> Option<&[(MiddleboxId, f64)]> {
        self.weights.get(key).map(|v| v.as_slice())
    }

    /// Number of keys with installed weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if no weights are installed.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterates over every aggregate column: `(key, weights)` pairs in
    /// arbitrary (but per-build deterministic) order. Consumers that need
    /// a stable order must sort; the plan verifier sorts its diagnostics.
    pub fn iter(&self) -> impl Iterator<Item = (&WeightKey, &[(MiddleboxId, f64)])> + '_ {
        self.weights.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Iterates over every per-commodity column (empty unless produced by
    /// the full Eq. (1) formulation).
    pub fn iter_fine(
        &self,
    ) -> impl Iterator<Item = (&CommodityKey, &[(MiddleboxId, f64)])> + '_ {
        self.fine.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Estimated bytes the controller must push to the data plane to
    /// install these weights: each aggregate entry costs one key (12 B)
    /// plus 12 B per `(middlebox, weight)` pair, each per-commodity entry
    /// an additional 8 B of commodity qualifier. This is the
    /// "communication overhead for the controller to send these values"
    /// that §III.C's reduced formulation exists to shrink.
    pub fn footprint_bytes(&self) -> u64 {
        const KEY: u64 = 12;
        const PAIR: u64 = 12;
        const COMMODITY: u64 = 8;
        let coarse: u64 = self
            .weights
            .values()
            .map(|v| KEY + PAIR * v.len() as u64)
            .sum();
        let fine: u64 = self
            .fine
            .values()
            .map(|v| KEY + COMMODITY + PAIR * v.len() as u64)
            .sum();
        coarse + fine
    }
}

/// How steering decisions are *encoded* on the wire, orthogonal to which
/// middlebox is selected ([`Strategy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SteeringEncoding {
    /// Every packet is tunneled IP-over-IP hop by hop (§III.B). Grows each
    /// packet by one IP header, risking fragmentation.
    #[default]
    IpOverIp,
    /// §III.E: the first packet of a flow tunnels and installs label-table
    /// entries; after the label-ready control packet returns, packets are
    /// steered by destination rewriting plus an in-header label — no size
    /// increase, per-flow state at every middlebox on the path.
    LabelSwitching,
    /// Strict source routing (the segment-routing-style baseline discussed
    /// in §V): the proxy computes the whole middlebox chain up front and
    /// embeds it in the packet header. No per-flow state at middleboxes,
    /// but every pending segment costs header bytes — the overhead the
    /// paper's label-switching design avoids.
    SourceRouting,
}

/// The enforcement strategy in force (§IV.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Hot-potato: always the closest middlebox `m_x^e`.
    HotPotato,
    /// Random: a flow-sticky uniformly random member of `M_x^e`; `salt`
    /// decorrelates choices across steer points.
    Random {
        /// Hash salt mixed into the flow hash.
        salt: u64,
    },
    /// Load-balanced: flow-hash mapped into the LP split weights.
    LoadBalanced,
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Picks the next middlebox for a flow among `candidates` (closest-first,
/// as produced by [`Assignments`]).
///
/// * Hot-potato ignores weights and picks the closest.
/// * Random hashes the flow with the salt for a sticky uniform choice.
/// * Load-balanced maps the flow's unit hash into the cumulative weight
///   vector (the probabilistic selection of §III.C); if no weights exist
///   for the key (e.g. no traffic was measured for the policy) it falls
///   back to hot-potato.
///
/// Returns `None` when `candidates` is empty.
pub fn select_next(
    strategy: Strategy,
    candidates: &[MiddleboxId],
    weights: Option<&[(MiddleboxId, f64)]>,
    flow: &FiveTuple,
) -> Option<MiddleboxId> {
    if candidates.is_empty() {
        return None;
    }
    match strategy {
        Strategy::HotPotato => Some(candidates[0]),
        Strategy::Random { salt } => {
            let u = (splitmix(flow.stable_hash() ^ salt) >> 11) as f64 / (1u64 << 53) as f64;
            let idx = ((u * candidates.len() as f64) as usize).min(candidates.len() - 1);
            Some(candidates[idx])
        }
        Strategy::LoadBalanced => {
            let Some(w) = weights else {
                return Some(candidates[0]);
            };
            let total: f64 = w.iter().map(|&(_, v)| v.max(0.0)).sum();
            if total <= f64::EPSILON {
                return Some(candidates[0]);
            }
            let r = flow.unit_hash() * total;
            let mut acc = 0.0;
            let mut last_positive = None;
            for &(m, v) in w {
                if v > 0.0 {
                    acc += v;
                    last_positive = Some(m);
                    if r < acc {
                        return Some(m);
                    }
                }
            }
            // Float accumulation can leave `acc` a hair below `total` while
            // `unit_hash` is arbitrarily close to 1.0, so the loop may fall
            // through. The fallback must be the last *positive*-weight
            // candidate: a zero-weight candidate is one the LP explicitly
            // routed no traffic to, and hash values on the bucket edge must
            // never select it. `total > 0` guarantees at least one.
            last_positive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_netsim::Protocol;
    use sdm_policy::NetworkFunction::*;
    use sdm_topology::campus::campus;

    fn flow(sp: u16) -> FiveTuple {
        FiveTuple {
            src: "10.0.0.1".parse().unwrap(),
            dst: "10.1.0.1".parse().unwrap(),
            src_port: sp,
            dst_port: 80,
            proto: Protocol::Tcp,
        }
    }

    fn mid(i: u32) -> MiddleboxId {
        MiddleboxId(i)
    }

    #[test]
    fn repair_matches_full_recompute_across_fail_restore() {
        use crate::deployment::MiddleboxSpec;
        let plan = campus(3);
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[5], 1.0));
        dep.add(MiddleboxSpec::new(Ids, plan.cores()[2], 1.0));
        dep.add(MiddleboxSpec::new(Ids, plan.cores()[7], 1.0));
        let mut multi = MiddleboxSpec::new(WebProxy, plan.cores()[9], 1.0);
        multi.functions.insert(TrafficMonitor);
        dep.add(multi);
        let routes = plan.topology().routing_tables();
        let k = KConfig::paper_default();
        let full = |dep: &Deployment| {
            Assignments::compute_with_gateways(
                dep,
                &routes,
                plan.edges(),
                plan.gateways(),
                &k,
            )
        };
        let mut repaired = full(&dep);
        // every box, failed then restored — including the multi-function
        // one and the sole survivors of a function
        for i in 0..dep.len() as u32 {
            dep.fail(mid(i));
            repaired.repair_for_middlebox(
                mid(i), &dep, &routes, plan.edges(), plan.gateways(), &k,
            );
            assert_eq!(repaired, full(&dep), "after failing {i}");
            dep.restore(mid(i));
            repaired.repair_for_middlebox(
                mid(i), &dep, &routes, plan.edges(), plan.gateways(), &k,
            );
            assert_eq!(repaired, full(&dep), "after restoring {i}");
        }
        // overlapping failures
        dep.fail(mid(0));
        repaired.repair_for_middlebox(mid(0), &dep, &routes, plan.edges(), plan.gateways(), &k);
        dep.fail(mid(2));
        repaired.repair_for_middlebox(mid(2), &dep, &routes, plan.edges(), plan.gateways(), &k);
        assert_eq!(repaired, full(&dep), "two concurrent failures");
    }

    #[test]
    fn k_config_defaults_match_paper() {
        let k = KConfig::paper_default();
        assert_eq!(k.k_for(Firewall), 4);
        assert_eq!(k.k_for(Ids), 4);
        assert_eq!(k.k_for(WebProxy), 2);
        assert_eq!(k.k_for(TrafficMonitor), 2);
        assert_eq!(k.k_for(Custom(9)), 1);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        let _ = KConfig::uniform(0);
    }

    #[test]
    fn assignments_sizes_and_order() {
        let plan = campus(1);
        let dep = Deployment::evaluation_default(&plan, 2);
        let routes = plan.topology().routing_tables();
        let asg = Assignments::compute(&dep, &routes, plan.edges(), &KConfig::paper_default());
        for s in 0..plan.edges().len() {
            let point = SteerPoint::Proxy(StubId(s as u32));
            let fw = asg.candidates(point, Firewall);
            assert_eq!(fw.len(), 4);
            // sorted closest-first
            let edge = plan.edges()[s];
            let d = |m: MiddleboxId| routes.dist(edge, dep.spec(m).router).unwrap();
            for w in fw.windows(2) {
                assert!(d(w[0]) <= d(w[1]));
            }
            assert_eq!(asg.closest(point, Firewall), Some(fw[0]));
            assert_eq!(asg.candidates(point, WebProxy).len(), 2);
        }
    }

    #[test]
    fn middlebox_excluded_from_own_function_set() {
        let plan = campus(1);
        let dep = Deployment::evaluation_default(&plan, 2);
        let routes = plan.topology().routing_tables();
        let asg = Assignments::compute(&dep, &routes, plan.edges(), &KConfig::paper_default());
        for (id, spec) in dep.iter() {
            for &f in &spec.functions {
                // a box offering f has no candidate set for f
                assert!(asg.candidates(SteerPoint::Middlebox(id), f).is_empty());
            }
            // but has candidates for other functions
            let other = if spec.implements(Firewall) { Ids } else { Firewall };
            let c = asg.candidates(SteerPoint::Middlebox(id), other);
            assert!(!c.is_empty());
            assert!(!c.contains(&id));
        }
    }

    #[test]
    fn hot_potato_picks_closest() {
        let c = [mid(3), mid(1), mid(2)];
        assert_eq!(
            select_next(Strategy::HotPotato, &c, None, &flow(1)),
            Some(mid(3))
        );
        assert_eq!(select_next(Strategy::HotPotato, &[], None, &flow(1)), None);
    }

    #[test]
    fn random_is_flow_sticky_and_spreads() {
        let c = [mid(0), mid(1), mid(2), mid(3)];
        let s = Strategy::Random { salt: 7 };
        let first = select_next(s, &c, None, &flow(42)).unwrap();
        for _ in 0..10 {
            assert_eq!(select_next(s, &c, None, &flow(42)), Some(first));
        }
        // across many flows, all candidates are used
        let mut seen = std::collections::HashSet::new();
        for p in 0..200 {
            seen.insert(select_next(s, &c, None, &flow(p)).unwrap());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn lb_respects_weights_proportionally() {
        let c = [mid(0), mid(1)];
        let w = vec![(mid(0), 3.0), (mid(1), 1.0)];
        let mut counts = [0u32; 2];
        for p in 0..4000 {
            let m = select_next(Strategy::LoadBalanced, &c, Some(&w), &flow(p)).unwrap();
            counts[m.index()] += 1;
        }
        let frac = counts[0] as f64 / 4000.0;
        assert!((0.70..0.80).contains(&frac), "frac={frac}");
    }

    #[test]
    fn lb_zero_weight_candidate_never_selected() {
        let c = [mid(0), mid(1)];
        let w = vec![(mid(0), 0.0), (mid(1), 5.0)];
        for p in 0..500 {
            assert_eq!(
                select_next(Strategy::LoadBalanced, &c, Some(&w), &flow(p)),
                Some(mid(1))
            );
        }
    }

    #[test]
    fn lb_falls_back_to_hot_potato() {
        let c = [mid(7), mid(8)];
        assert_eq!(
            select_next(Strategy::LoadBalanced, &c, None, &flow(1)),
            Some(mid(7))
        );
        let zero = vec![(mid(7), 0.0), (mid(8), 0.0)];
        assert_eq!(
            select_next(Strategy::LoadBalanced, &c, Some(&zero), &flow(1)),
            Some(mid(7))
        );
    }

    #[test]
    fn gateway_candidate_sets_computed() {
        let plan = campus(1);
        let dep = Deployment::evaluation_default(&plan, 2);
        let routes = plan.topology().routing_tables();
        let asg = Assignments::compute_with_gateways(
            &dep,
            &routes,
            plan.edges(),
            plan.gateways(),
            &KConfig::paper_default(),
        );
        for g in 0..plan.gateways().len() as u32 {
            let fw = asg.candidates(SteerPoint::Gateway(g), Firewall);
            assert_eq!(fw.len(), 4, "gateway {g} FW candidates");
            assert_eq!(asg.closest(SteerPoint::Gateway(g), Firewall), Some(fw[0]));
        }
        // plain compute has no gateway sets
        let bare = Assignments::compute(&dep, &routes, plan.edges(), &KConfig::paper_default());
        assert!(bare.candidates(SteerPoint::Gateway(0), Firewall).is_empty());
    }

    #[test]
    fn footprint_counts_weights() {
        let mut w = SteeringWeights::new(1.0);
        assert_eq!(w.footprint_bytes(), 0);
        w.set(
            WeightKey {
                point: SteerPoint::Proxy(StubId(0)),
                policy: PolicyId(0),
                next_index: 0,
            },
            vec![(mid(0), 1.0), (mid(1), 2.0)],
        );
        // one key (12) + two pairs (24)
        assert_eq!(w.footprint_bytes(), 36);
    }

    #[test]
    fn weights_table_roundtrip() {
        let mut w = SteeringWeights::new(0.42);
        let key = WeightKey {
            point: SteerPoint::Proxy(StubId(1)),
            policy: PolicyId(2),
            next_index: 0,
        };
        assert!(w.get(&key).is_none());
        w.set(key, vec![(mid(0), 1.0)]);
        assert_eq!(w.get(&key).unwrap().len(), 1);
        assert_eq!(w.lambda(), 0.42);
        assert_eq!(w.len(), 1);
    }
}
