//! The online re-steer control loop (§III.C): at every epoch boundary the
//! controller **measures** the traffic the proxies reported, **re-solves**
//! the load-balancing LP — warm-starting the simplex from the previous
//! epoch's basis via [`LbWarmCache`] — **verifies** the resulting plan
//! with the static `sdm-verify` checks, and only then **re-steers** by
//! swapping the new [`SteeringWeights`] into the running data plane.
//!
//! Two invariants the loop maintains:
//!
//! * **Flow stickiness.** Weight swaps only affect flows whose first
//!   packet arrives after the swap; live flows keep the next hop pinned
//!   in their flow-table entries (see `FlowEntry::pinned_next`), so
//!   mid-epoch packets never re-classify onto a different middlebox.
//! * **Determinism.** Flows are bucketed onto per-shard [`Enforcement`]s
//!   by [`shard_of`] and all cross-shard merges fold in shard-index
//!   order, so every epoch's measurements, LP solve and activation are
//!   byte-identical across `SDM_SHARDS` and `SDM_BATCH` settings.
//!
//! The per-shard simulations persist across epochs — that is what makes
//! stickiness meaningful: the flow tables survive the weight swap.

use crate::controller::{Controller, Enforcement, EnforcementOptions};
use crate::deployment::MiddleboxId;
use crate::lp_model::{LbError, LbOptions, LbWarmCache};
use crate::measure::TrafficMatrix;
use crate::shard::{shard_of, FlowSpec};
use crate::steer::{SteeringWeights, Strategy};
use crate::verify::verify_enforcement;

/// Why an epoch could not be activated.
#[derive(Debug)]
pub enum EpochError {
    /// The LP re-solve failed (infeasible / unbounded / over budget).
    Lb(LbError),
    /// The re-solved plan failed the pre-activation `sdm-verify` checks;
    /// the previous epoch's weights stay in force.
    Rejected(sdm_verify::VerifyReport),
}

impl std::fmt::Display for EpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpochError::Lb(e) => write!(f, "epoch re-solve failed: {e}"),
            EpochError::Rejected(r) => {
                write!(f, "epoch plan rejected by verifier: {} error(s)", r.errors().count())
            }
        }
    }
}

impl std::error::Error for EpochError {}

impl From<LbError> for EpochError {
    fn from(e: LbError) -> Self {
        EpochError::Lb(e)
    }
}

/// What one epoch produced, for logging and the golden re-steer scenario.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// 1-based epoch number.
    pub epoch: u32,
    /// Cells in this epoch's measured traffic matrix.
    pub cells: usize,
    /// Total measured volume this epoch.
    pub volume: f64,
    /// Optimal load factor λ of the re-solve (0 when no traffic).
    pub lambda: f64,
    /// Simplex pivots the re-solve spent (both passes).
    pub pivots: u64,
    /// Whether both solves reused a warm-start basis from the previous
    /// epoch.
    pub warm: bool,
    /// Whether new weights were activated (false for an empty epoch).
    pub activated: bool,
}

/// Control-plane telemetry accumulated across the epoch loop's lifetime:
/// plain counters (no atomics — the loop is single-threaded), exported
/// into an [`sdm_telemetry::Snapshot`] via [`EpochLoop::export_lp_into`].
///
/// All counts are functions of the merged (shard-invariant) traffic
/// matrix and the deterministic LP, so they are byte-identical across
/// `SDM_SHARDS` / `SDM_BATCH` settings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpTelemetry {
    /// LP re-solves that ran cold (no reusable basis).
    pub solves_cold: u64,
    /// LP re-solves that warm-started from the previous epoch's basis.
    pub solves_warm: u64,
    /// Simplex pivots across all solves (warm solves count their
    /// dual-repair pivots here).
    pub pivots: u64,
    /// Epoch plans rejected by the pre-activation verifier gate.
    pub rejections: u64,
    /// Epoch plans that activated (weights swapped into the data plane).
    pub activations: u64,
}

/// The controller-side epoch loop driving a set of persistent per-shard
/// [`Enforcement`]s.
///
/// ```
/// use sdm_core::*;
/// use sdm_policy::{ActionList, NetworkFunction, Policy, PolicySet, TrafficDescriptor};
/// use sdm_netsim::{FiveTuple, Protocol, StubId};
///
/// let plan = sdm_topology::campus::campus(1);
/// let deployment = Deployment::evaluation_default(&plan, 7);
/// let mut policies = PolicySet::new();
/// policies.push(Policy::new(
///     TrafficDescriptor::new().dst_port(80),
///     ActionList::chain([NetworkFunction::Firewall]),
/// ));
/// let controller = Controller::new(plan, deployment, policies, KConfig::paper_default());
/// let mut epochs = EpochLoop::new(&controller, 2, EnforcementOptions::default(),
///                                 LbOptions::default());
/// let flow = FiveTuple {
///     src: controller.addr_plan().host(StubId(0), 1),
///     dst: controller.addr_plan().host(StubId(5), 1),
///     src_port: 40000, dst_port: 80, proto: Protocol::Tcp,
/// };
/// let report = epochs
///     .run_epoch(&[FlowSpec { flow, packets: 500, payload: 512 }])
///     .unwrap();
/// assert!(report.activated);
/// assert_eq!(epochs.delivered(), 500);
/// ```
pub struct EpochLoop<'a> {
    controller: &'a Controller,
    options: EnforcementOptions,
    lb: LbOptions,
    shards: Vec<Enforcement>,
    cache: LbWarmCache,
    epoch: u32,
    lp_tel: LpTelemetry,
    /// Weights in force in the data plane right now (`None` until the
    /// first activation: the bootstrap hot-potato fallback).
    current_weights: Option<SteeringWeights>,
    /// Weights that were in force *before* the most recent activation —
    /// the state still-pinned flows were steered under. Hazard input for
    /// the reach tier's stale-pinned-flow (R005) check.
    prev_weights: Option<SteeringWeights>,
    /// Middleboxes currently failed in the shard data planes (sorted by
    /// index). Flows pinned before the failure still target them.
    failed: Vec<MiddleboxId>,
}

impl<'a> EpochLoop<'a> {
    /// Builds `shards` persistent load-balanced enforcement simulations.
    /// The first epoch starts weightless (hot-potato-equivalent fallback
    /// of [`Strategy::LoadBalanced`]) — exactly the paper's bootstrap:
    /// measurements exist only after traffic flowed.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(
        controller: &'a Controller,
        shards: usize,
        options: EnforcementOptions,
        lb: LbOptions,
    ) -> Self {
        assert!(shards > 0, "epoch loop needs at least one shard");
        let shards = (0..shards)
            .map(|_| controller.enforcement(Strategy::LoadBalanced, None, options))
            .collect();
        EpochLoop {
            controller,
            options,
            lb,
            shards,
            cache: LbWarmCache::new(),
            epoch: 0,
            lp_tel: LpTelemetry::default(),
            current_weights: None,
            prev_weights: None,
            failed: Vec::new(),
        }
    }

    /// Overrides the vector batch size of every shard (for the batching
    /// ablation; the default follows `SDM_BATCH`).
    pub fn set_batch_size(&mut self, batch: usize) {
        for enf in &mut self.shards {
            enf.sim_mut().set_batch_size(batch);
        }
    }

    /// Runs one full epoch: inject `flows` (bucketed by [`shard_of`]),
    /// drive every shard to idle, drain and merge the epoch's traffic
    /// measurements, warm re-solve the LP, verify the plan, and swap the
    /// new weights into every shard.
    ///
    /// On error the data plane keeps the previous weights — a failed
    /// re-solve or a rejected plan never disturbs enforcement.
    ///
    /// # Errors
    ///
    /// [`EpochError::Lb`] if the LP re-solve fails; [`EpochError::Rejected`]
    /// if the solved plan fails the `sdm-verify` pre-activation checks.
    pub fn run_epoch(&mut self, flows: &[FlowSpec]) -> Result<EpochReport, EpochError> {
        self.epoch += 1;
        let n = self.shards.len();
        for spec in flows {
            let enf = &mut self.shards[shard_of(&spec.flow, n)];
            enf.inject_flow(spec.flow, spec.packets, spec.payload);
        }
        for enf in &mut self.shards {
            enf.run();
        }

        // Controller-side aggregation, folded in shard-index order so the
        // matrix (and hence the LP) is shard-count invariant.
        let mut traffic = TrafficMatrix::new();
        for enf in &self.shards {
            traffic.merge(&enf.take_measurements());
        }
        let mut report = EpochReport {
            epoch: self.epoch,
            cells: traffic.len(),
            volume: traffic.grand_total(),
            lambda: 0.0,
            pivots: 0,
            warm: false,
            activated: false,
        };
        if traffic.is_empty() {
            return Ok(report);
        }

        let (weights, lb) =
            self.controller
                .solve_load_balanced_with_cache(&traffic, self.lb, &mut self.cache)?;
        report.lambda = lb.lambda;
        report.pivots = lb.iterations;
        report.warm = lb.warm;
        if lb.warm {
            self.lp_tel.solves_warm += 1;
        } else {
            self.lp_tel.solves_cold += 1;
        }
        self.lp_tel.pivots += lb.iterations;

        // Pre-activation gate: re-run the static weight checks on every
        // epoch's plan; a rejected plan leaves the old weights in force.
        let verdict = verify_enforcement(self.controller, Some(&weights), &self.options);
        if verdict.has_errors() {
            self.lp_tel.rejections += 1;
            return Err(EpochError::Rejected(verdict));
        }

        for enf in &self.shards {
            enf.update_weights(Some(weights.clone()));
        }
        // Remember the pre-swap state: flows pinned before this
        // activation were steered under it, and the reach tier's hazard
        // pass needs it to find stale `pinned_next` windows.
        self.prev_weights = self.current_weights.take();
        self.current_weights = Some(weights);
        self.lp_tel.activations += 1;
        report.activated = true;
        Ok(report)
    }

    /// Crashes a middlebox in every shard's data plane (the §IV.C
    /// dependability scenario); pair with `Controller::fail_middlebox` on
    /// a mutable controller to also repair the candidate sets.
    pub fn fail_middlebox(&mut self, id: MiddleboxId) {
        for enf in &mut self.shards {
            enf.fail_middlebox(id);
        }
        if let Err(at) = self.failed.binary_search(&id) {
            self.failed.insert(at, id);
        }
    }

    /// Restores a crashed middlebox in every shard's data plane.
    pub fn restore_middlebox(&mut self, id: MiddleboxId) {
        for enf in &mut self.shards {
            enf.restore_middlebox(id);
        }
        if let Ok(at) = self.failed.binary_search(&id) {
            self.failed.remove(at);
        }
    }

    /// The hazard state the reach tier verifies on top of the converged
    /// plan: the pre-swap weights (the state still-pinned flows were
    /// steered under) and the currently-failed middlebox set.
    pub fn hazard_view(&self) -> sdm_verify::reach::HazardView {
        sdm_verify::reach::HazardView {
            prev_weights: self.prev_weights.as_ref().map(crate::verify::weights_view),
            failed_now: self.failed.iter().map(|m| m.0).collect(),
        }
    }

    /// Runs the reach (isolation) checker against the controller's
    /// installed assertions in the loop's *current* state — including the
    /// mid-epoch hazards ([`Self::hazard_view`]) the converged-plan
    /// checks cannot see: stale pinned flows across the last weight swap
    /// and middleboxes failed between epochs.
    pub fn verify_reach(&self) -> sdm_verify::reach::ReachReport {
        crate::reach::verify_reach_hazards(
            self.controller,
            Strategy::LoadBalanced,
            self.current_weights.as_ref(),
            &self.options,
            self.hazard_view(),
            self.controller.assertions(),
        )
    }

    /// Per-middlebox packet loads summed across shards (shard-index-order
    /// fold).
    pub fn middlebox_loads(&self) -> Vec<u64> {
        let mut total = vec![0u64; self.controller.deployment().len()];
        for enf in &self.shards {
            for (t, l) in total.iter_mut().zip(enf.middlebox_loads()) {
                *t += l;
            }
        }
        total
    }

    /// Packets terminally delivered across all shards.
    pub fn delivered(&self) -> u64 {
        self.shards
            .iter()
            .map(|e| e.sim().stats().delivered + e.sim().stats().delivered_external)
            .sum()
    }

    /// Packets dropped by crashed middleboxes across all shards.
    pub fn dropped_failed(&self) -> u64 {
        let mut total = 0;
        for enf in &self.shards {
            for (id, _) in self.controller.deployment().iter() {
                total += enf.mbox_state(id).lock().counters.dropped_failed;
            }
        }
        total
    }

    /// Epochs run so far.
    pub fn epochs_run(&self) -> u32 {
        self.epoch
    }

    /// The per-shard enforcement simulations (shard-index order).
    pub fn shards(&self) -> &[Enforcement] {
        &self.shards
    }

    /// Control-plane LP/epoch counters accumulated so far.
    pub fn lp_telemetry(&self) -> &LpTelemetry {
        &self.lp_tel
    }

    /// Adds the control-plane counters to `snap` under the
    /// `sdm_lp_*` / `sdm_epoch_*` families.
    pub fn export_lp_into(&self, snap: &mut sdm_telemetry::Snapshot) {
        use sdm_telemetry::family;
        // LP_MODES = ["cold", "warm"]
        snap.add_labeled(family::LP_SOLVES, 0, self.lp_tel.solves_cold);
        snap.add_labeled(family::LP_SOLVES, 1, self.lp_tel.solves_warm);
        snap.add(family::LP_PIVOTS, self.lp_tel.pivots);
        snap.add(family::EPOCH_REJECTIONS, self.lp_tel.rejections);
        snap.add(family::EPOCH_ACTIVATIONS, self.lp_tel.activations);
    }

    /// The full telemetry snapshot of the loop: every shard's
    /// [`Enforcement::telemetry_snapshot`] folded in shard-index order,
    /// plus the control-plane counters.
    pub fn telemetry_snapshot(&self) -> sdm_telemetry::Snapshot {
        let mut snap = sdm_telemetry::Snapshot::new();
        for enf in &self.shards {
            snap.merge(&enf.telemetry_snapshot());
        }
        self.export_lp_into(&mut snap);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{Deployment, MiddleboxSpec};
    use crate::steer::KConfig;
    use sdm_netsim::{FiveTuple, Protocol, StubId};
    use sdm_policy::{ActionList, NetworkFunction::*, Policy, PolicySet, TrafficDescriptor};

    fn controller() -> Controller {
        let plan = sdm_topology::campus::campus(1);
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[4], 1.0));
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[9], 1.0));
        let mut policies = PolicySet::new();
        policies.push(Policy::new(
            TrafficDescriptor::new().dst_port(80),
            ActionList::chain([Firewall]),
        ));
        Controller::new(plan, dep, policies, KConfig::paper_default())
    }

    fn web_flow(c: &Controller, from: u32, to: u32, sp: u16) -> FiveTuple {
        FiveTuple {
            src: c.addr_plan().host(StubId(from), sp as u32),
            dst: c.addr_plan().host(StubId(to), 1),
            src_port: 40000 + sp,
            dst_port: 80,
            proto: Protocol::Tcp,
        }
    }

    fn specs(c: &Controller, salt: u16, count: u16) -> Vec<FlowSpec> {
        (0..count)
            .map(|i| FlowSpec {
                flow: web_flow(c, (i % 4) as u32, 4 + (i % 3) as u32, salt + i),
                packets: 100 + (i as u64 * 13) % 400,
                payload: 512,
            })
            .collect()
    }

    #[test]
    fn epochs_measure_solve_and_activate() {
        let c = controller();
        let mut ep = EpochLoop::new(&c, 2, EnforcementOptions::default(), LbOptions::default());
        let r1 = ep.run_epoch(&specs(&c, 1, 40)).unwrap();
        assert!(r1.activated);
        assert!(r1.lambda > 0.0);
        assert!(!r1.warm, "first epoch has no basis to reuse");
        // same flow population again: the support is unchanged, so the
        // second epoch warm-starts and needs (far) fewer pivots
        let r2 = ep.run_epoch(&specs(&c, 1, 40)).unwrap();
        assert!(r2.activated);
        assert!(r2.warm, "identical support must warm-start");
        assert!(
            r2.pivots < r1.pivots,
            "warm re-solve must spend fewer pivots ({} vs {})",
            r2.pivots,
            r1.pivots
        );
        assert_eq!(ep.epochs_run(), 2);
        assert!(ep.delivered() > 0);
    }

    #[test]
    fn empty_epoch_is_a_noop() {
        let c = controller();
        let mut ep = EpochLoop::new(&c, 1, EnforcementOptions::default(), LbOptions::default());
        let r = ep.run_epoch(&[]).unwrap();
        assert!(!r.activated);
        assert_eq!(r.cells, 0);
        assert_eq!(r.pivots, 0);
    }

    #[test]
    fn perturbed_traffic_still_warm_starts() {
        let c = controller();
        let mut ep = EpochLoop::new(&c, 2, EnforcementOptions::default(), LbOptions::default());
        let base = specs(&c, 1, 30);
        ep.run_epoch(&base).unwrap();
        // same flows, different volumes: same support ⇒ same LP shape
        let perturbed: Vec<FlowSpec> = base
            .iter()
            .map(|s| FlowSpec {
                packets: s.packets + 50,
                ..*s
            })
            .collect();
        let r = ep.run_epoch(&perturbed).unwrap();
        assert!(r.warm);
        assert!(r.activated);
    }

    #[test]
    fn loop_failure_drops_then_restore_recovers() {
        let c = controller();
        let mut ep = EpochLoop::new(&c, 2, EnforcementOptions::default(), LbOptions::default());
        ep.run_epoch(&specs(&c, 1, 30)).unwrap();
        let victim = {
            let loads = ep.middlebox_loads();
            MiddleboxId(
                loads
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, l)| l)
                    .map(|(i, _)| i as u32)
                    .unwrap(),
            )
        };
        ep.fail_middlebox(victim);
        // fresh flows so selections are not pinned from epoch 1
        ep.run_epoch(&specs(&c, 1000, 30)).unwrap();
        assert!(ep.dropped_failed() > 0, "failed box must blackhole traffic");
        ep.restore_middlebox(victim);
        let before = ep.dropped_failed();
        ep.run_epoch(&specs(&c, 2000, 30)).unwrap();
        // note: some new flows may still hash onto the (weightless epoch-1
        // plan's) victim while it was down — but after restore nothing
        // more is dropped
        assert_eq!(ep.dropped_failed(), before, "restored box drops nothing");
    }
}
