//! Deterministic metrics scraping: assembles an [`sdm_telemetry::Snapshot`]
//! from one [`Enforcement`](crate::Enforcement)'s device tables, simulator
//! totals and hot-path collector.
//!
//! Every value scraped here is an additive fold over per-device state, so
//! the per-shard snapshots produced under `SDM_SHARDS > 1` merge (in shard
//! index order) to exactly the single-shard snapshot for every family
//! marked `invariant` in the [`sdm_telemetry::REGISTRY`].

use sdm_policy::FlowTable;
use sdm_telemetry::{family, Snapshot};

use crate::controller::Enforcement;

/// Device-kind label indices, matching [`sdm_telemetry::DEVICE_KINDS`].
const KIND_PROXY: usize = 0;
const KIND_INGRESS: usize = 1;
const KIND_MBOX: usize = 2;

/// Folds one device's flow-cache counters into the snapshot under its
/// device-kind label.
fn scrape_flow_table(snap: &mut Snapshot, kind: usize, flows: &FlowTable) {
    let stats = flows.stats();
    snap.add_labeled(family::FLOW_HITS, kind, stats.hits);
    snap.add_labeled(family::FLOW_MISSES, kind, stats.misses);
    snap.add_labeled(family::FLOW_NEGATIVE_HITS, kind, stats.negative_hits);
    snap.add_labeled(family::FLOW_EXPIRED, kind, stats.expired);
    snap.add_labeled(family::FLOW_SWEEPS, kind, flows.sweeps());
    snap.add_labeled(family::FLOW_ENTRIES, kind, flows.len() as u64);
}

/// Assembles the full metrics snapshot for one enforcement simulation.
///
/// The walk order is fixed (stub proxies by [`sdm_netsim::StubId`],
/// ingress proxies by gateway index, middleboxes by
/// [`crate::MiddleboxId`]) but immaterial: every family is either
/// order-independent (sums) or dense-indexed by the device itself.
pub(crate) fn scrape(enf: &Enforcement) -> Snapshot {
    let mut snap = Snapshot::new();

    for stub in enf.config().addr_plan.stubs() {
        let st = enf.proxy_state(stub);
        let st = st.lock();
        scrape_flow_table(&mut snap, KIND_PROXY, &st.flows);
        snap.add(family::LABEL_SWITCHED, st.counters.label_switched);
    }
    for gi in 0..enf.ingress_count() {
        let st = enf.ingress_state(gi);
        let st = st.lock();
        scrape_flow_table(&mut snap, KIND_INGRESS, &st.flows);
        snap.add(family::LABEL_SWITCHED, st.counters.label_switched);
    }
    for (i, &load) in enf.middlebox_loads().iter().enumerate() {
        let st = enf.mbox_state(crate::deployment::MiddleboxId(i as u32));
        let st = st.lock();
        scrape_flow_table(&mut snap, KIND_MBOX, &st.flows);
        snap.add(family::LABEL_ENTRIES, st.labels.len() as u64);
        snap.add(family::LABEL_MISSES, st.counters.label_misses);
        snap.add_dense(family::MBOX_LOAD, i, load);
        snap.add_dense(family::MBOX_DROPS, i, st.counters.dropped_failed);
    }

    let stats = enf.sim().stats();
    snap.add(family::PACKETS_DELIVERED, stats.delivered);
    snap.add(family::LINK_HOPS, stats.link_hops);
    snap.add(family::DROPPED_TTL, stats.dropped_ttl);
    snap.add(family::TRACE_DROPPED, enf.sim().trace_dropped());

    enf.telemetry().export_into(&mut snap);
    snap
}
