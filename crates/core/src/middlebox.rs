//! The software-defined middlebox (§III.A–E): applies its network
//! function(s), resolves the governing policy via flow cache or policy
//! table, steers packets onwards via IP-over-IP, installs label-table
//! entries, and handles label-switched packets with destination rewriting.

use std::collections::BTreeSet;
use std::sync::Arc;

use sdm_netsim::{Device, DeviceCtx, FiveTuple, Label, Packet, PacketId, SimTime};
use sdm_policy::{ActionList, LabelEntry, LabelKey, LocalClassifier, NetworkFunction, PolicyId};

use crate::deployment::MiddleboxId;
use crate::runtime::{MboxState, RuntimeConfig, Shared};
use crate::steer::SteerPoint;

/// The cached outcome of resolving one tunneled flow's policy: reused by
/// consecutive same-flow packets in a batch so the flow-table probe, the
/// action-list clone and the label-table install happen once per run.
/// The packet's label is part of the key because label presence decides
/// whether a label-table entry is installed.
struct TunnelRun {
    ft: FiveTuple,
    label: Option<Label>,
    policy_id: PolicyId,
    actions: ActionList,
}

/// One software-defined middlebox device.
pub struct MiddleboxDevice {
    id: MiddleboxId,
    functions: BTreeSet<NetworkFunction>,
    policies: LocalClassifier,
    config: Arc<RuntimeConfig>,
    state: Shared<MboxState>,
}

impl MiddleboxDevice {
    /// Creates the device with its controller-installed policy table.
    pub fn new(
        id: MiddleboxId,
        functions: BTreeSet<NetworkFunction>,
        policies: LocalClassifier,
        config: Arc<RuntimeConfig>,
        state: Shared<MboxState>,
    ) -> Self {
        MiddleboxDevice {
            id,
            functions,
            policies,
            config,
            state,
        }
    }

    /// Position of this box's function occurrence in `actions`: the first
    /// index whose function we implement.
    fn my_position(&self, actions: &ActionList) -> Option<usize> {
        actions
            .functions()
            .iter()
            .position(|f| self.functions.contains(f))
    }

    /// Resolves the governing policy for a (decapsulated) tunneled packet:
    /// flow cache first, then the policy table (caching the match).
    /// `None` means no policy matched at all.
    fn resolve_tunneled(
        &self,
        state: &mut MboxState,
        ft: &FiveTuple,
        now: SimTime,
        weight: u64,
    ) -> Option<(PolicyId, ActionList)> {
        let cached: Option<(PolicyId, ActionList)> = state
            .flows
            .lookup(ft, now, weight)
            .and_then(|e| e.action.clone());
        match cached {
            Some(pa) => Some(pa),
            None => match self.policies.first_match(ft) {
                Some((id, policy)) => {
                    let actions = policy.actions.clone();
                    state.flows.insert_positive(*ft, id, actions.clone(), now);
                    Some((id, actions))
                }
                None => None,
            },
        }
    }

    /// Applies this box's function(s) to a resolved tunneled packet and
    /// steers it onwards (next-hop tunnel or last-hop §III.E handling).
    ///
    /// `install_labels = false` is the vector-path run-mate mode: the
    /// run's first packet already installed an identical label-table
    /// entry at this instant, so re-inserting is skipped. Everything
    /// observable per packet (counters, control emission, rewrites) still
    /// happens here.
    #[allow(clippy::too_many_arguments)]
    fn apply_tunneled(
        &self,
        ctx: &mut DeviceCtx<'_>,
        state: &mut MboxState,
        pkt: PacketId,
        proxy_addr: sdm_netsim::Ipv4Addr,
        ft: &FiveTuple,
        weight: u64,
        policy_id: PolicyId,
        actions: &ActionList,
        install_labels: bool,
    ) {
        let now = ctx.now();
        // Apply our function, plus any consecutive functions we also
        // implement locally.
        let Some(pos) = self.my_position(actions) else {
            state.counters.unmatched += weight;
            ctx.forward(pkt);
            return;
        };
        let mut end = pos;
        state.counters.applications += weight;
        while let Some(nf) = actions.get(end + 1) {
            if self.functions.contains(&nf) {
                end += 1;
                state.counters.applications += weight;
            } else {
                break;
            }
        }

        match actions.get(end + 1) {
            Some(next_fn) => {
                // Steer to the next middlebox. The pin recorded on this
                // box's flow entry wins, so a weight swap between epochs
                // never re-steers a live flow mid-chain (§III.B
                // stickiness). `resolve_tunneled` already probed the flow
                // at this instant, so the pin cannot be stale.
                let next = match state.flows.pinned_next(ft) {
                    Some(raw) => {
                        self.config.tel.steer_pin_replay(sdm_telemetry::Hop::Middlebox);
                        MiddleboxId(raw)
                    }
                    None => {
                        let commodity = self.config.commodity_of(ctx.pkt(pkt));
                        let Some(next) = self.config.select_for_commodity(
                            SteerPoint::Middlebox(self.id),
                            policy_id,
                            next_fn,
                            (end + 1) as u16,
                            ft,
                            commodity,
                        ) else {
                            state.counters.unenforceable += weight;
                            ctx.drop_pkt(pkt);
                            return;
                        };
                        state.flows.pin_next(ft, next.0);
                        // Unlike the proxy, `pinned_next` was probed live
                        // just above, so this arm is always a first-time
                        // pin: the count is batch-invariant as-is.
                        self.config.tel.steer_decision(sdm_telemetry::Hop::Middlebox);
                        next
                    }
                };
                let next_addr = self.config.mbox_addr(next);
                // Install the label-table entry for later label switching.
                if install_labels {
                    if let Some(l) = ctx.pkt(pkt).label {
                        state.labels.insert(
                            LabelKey {
                                src: ctx.pkt(pkt).inner.src,
                                label: l,
                            },
                            actions.clone(),
                            policy_id,
                            pos,
                            Some(next_addr),
                            None,
                            now,
                        );
                    }
                }
                ctx.pkt_mut(pkt).encapsulate(proxy_addr, next_addr);
                ctx.forward(pkt);
            }
            None => {
                // Last middlebox in the chain (§III.E): store the final
                // destination, notify the proxy, forward the original
                // packet towards its destination.
                if let Some(l) = ctx.pkt(pkt).label {
                    if install_labels {
                        state.labels.insert(
                            LabelKey {
                                src: ctx.pkt(pkt).inner.src,
                                label: l,
                            },
                            actions.clone(),
                            policy_id,
                            pos,
                            None,
                            Some(ctx.pkt(pkt).inner.dst),
                            now,
                        );
                    }
                    if self.config.label_switching() {
                        let control = Packet::control(ctx.addr(), proxy_addr, *ft);
                        let control = ctx.alloc(control);
                        ctx.forward(control);
                        ctx.forward(pkt);
                        return;
                    }
                }
                ctx.forward(pkt);
            }
        }
    }

    /// Handles a tunneled (IP-over-IP) packet addressed to this box.
    fn handle_tunneled(&self, ctx: &mut DeviceCtx<'_>, state: &mut MboxState, pkt: PacketId) {
        let proxy_addr = ctx.pkt(pkt).current_src(); // kept as outer src end-to-end (§III.E)
        ctx.pkt_mut(pkt).decapsulate();
        let (ft, weight) = {
            let p = ctx.pkt(pkt);
            (p.five_tuple(), p.weight)
        };
        state.counters.tunneled_in += weight;
        let Some((policy_id, actions)) = self.resolve_tunneled(state, &ft, ctx.now(), weight)
        else {
            // A tunneled packet should always match (the sender matched
            // it); tolerate and forward untouched.
            state.counters.unmatched += weight;
            ctx.forward(pkt);
            return;
        };
        self.apply_tunneled(
            ctx, state, pkt, proxy_addr, &ft, weight, policy_id, &actions, true,
        );
    }

    /// Vector-path tunneled handling: consecutive packets of the same
    /// flow (and label) reuse the first packet's resolved policy — the
    /// flow-table probe becomes a [`sdm_policy::FlowTable::record_run_hit`]
    /// and the label-table install is skipped (it would overwrite an
    /// identical entry).
    fn tunneled_batched(
        &self,
        ctx: &mut DeviceCtx<'_>,
        state: &mut MboxState,
        pkt: PacketId,
        run: &mut Option<TunnelRun>,
    ) {
        let proxy_addr = ctx.pkt(pkt).current_src();
        ctx.pkt_mut(pkt).decapsulate();
        let (ft, weight, label) = {
            let p = ctx.pkt(pkt);
            (p.five_tuple(), p.weight, p.label)
        };
        state.counters.tunneled_in += weight;
        if let Some(r) = run {
            if r.ft == ft && r.label == label {
                // Run-mate: a scalar lookup here would be a guaranteed
                // hit returning exactly the cached decision.
                state.flows.record_run_hit(weight);
                self.apply_tunneled(
                    ctx,
                    state,
                    pkt,
                    proxy_addr,
                    &ft,
                    weight,
                    r.policy_id,
                    &r.actions,
                    false,
                );
                return;
            }
        }
        *run = None;
        let Some((policy_id, actions)) = self.resolve_tunneled(state, &ft, ctx.now(), weight)
        else {
            // No flow-cache entry was installed, so the next same-flow
            // packet must re-probe (and count a miss) exactly like the
            // scalar path: leave the run empty.
            state.counters.unmatched += weight;
            ctx.forward(pkt);
            return;
        };
        self.apply_tunneled(
            ctx, state, pkt, proxy_addr, &ft, weight, policy_id, &actions, true,
        );
        *run = Some(TunnelRun {
            ft,
            label,
            policy_id,
            actions,
        });
    }

    /// Handles a source-routed packet: apply the function, pop the next
    /// segment, forward. No per-flow state is consulted or installed.
    fn handle_source_routed(&self, ctx: &mut DeviceCtx<'_>, state: &mut MboxState, pkt: PacketId) {
        let weight = ctx.pkt(pkt).weight;
        state.counters.source_routed_in += weight;
        state.counters.applications += weight;
        if ctx.pkt_mut(pkt).advance_source_route() {
            ctx.forward(pkt);
        } else {
            // an exhausted route here would mean the proxy built a route
            // not ending in the destination; unreachable in practice
            // because set_source_route guarantees a final segment.
            ctx.drop_pkt(pkt);
        }
    }

    /// Applies a resolved label-table entry to one labeled packet:
    /// function application counter, destination rewrite, forward.
    fn apply_labeled(
        &self,
        ctx: &mut DeviceCtx<'_>,
        state: &mut MboxState,
        pkt: PacketId,
        weight: u64,
        entry: &LabelEntry,
    ) {
        state.counters.applications += weight;
        match (entry.next_hop, entry.final_dst) {
            (Some(next), _) => {
                ctx.pkt_mut(pkt).inner.dst = next;
            }
            (None, Some(dst)) => {
                ctx.pkt_mut(pkt).inner.dst = dst;
            }
            (None, None) => {
                state.counters.label_misses += weight;
                ctx.drop_pkt(pkt);
                return;
            }
        }
        ctx.forward(pkt);
    }

    /// Handles a label-switched packet (not encapsulated, addressed to us).
    fn handle_labeled(&self, ctx: &mut DeviceCtx<'_>, state: &mut MboxState, pkt: PacketId) {
        let weight = ctx.pkt(pkt).weight;
        state.counters.label_switched_in += weight;
        let Some(label) = ctx.pkt(pkt).label else {
            state.counters.label_misses += weight;
            ctx.drop_pkt(pkt); // addressed to us without label or tunnel
            return;
        };
        let key = LabelKey {
            src: ctx.pkt(pkt).inner.src,
            label,
        };
        let entry = match state.labels.lookup(&key, ctx.now()) {
            Some(e) => e.clone(),
            None => {
                state.counters.label_misses += weight;
                ctx.drop_pkt(pkt);
                return;
            }
        };
        self.apply_labeled(ctx, state, pkt, weight, &entry);
    }

    /// Vector-path labeled handling: consecutive packets with the same
    /// `⟨src, label⟩` key reuse the first packet's entry clone. A scalar
    /// lookup by a run-mate would only re-refresh `last_seen` to the same
    /// instant, so skipping it is unobservable.
    fn labeled_batched(
        &self,
        ctx: &mut DeviceCtx<'_>,
        state: &mut MboxState,
        pkt: PacketId,
        run: &mut Option<(LabelKey, Option<LabelEntry>)>,
    ) {
        let weight = ctx.pkt(pkt).weight;
        state.counters.label_switched_in += weight;
        let Some(label) = ctx.pkt(pkt).label else {
            // No table access: the current run stays valid.
            state.counters.label_misses += weight;
            ctx.drop_pkt(pkt);
            return;
        };
        let key = LabelKey {
            src: ctx.pkt(pkt).inner.src,
            label,
        };
        match run {
            Some((k, cached)) if *k == key => match cached {
                Some(entry) => {
                    let entry = entry.clone();
                    self.apply_labeled(ctx, state, pkt, weight, &entry);
                }
                None => {
                    state.counters.label_misses += weight;
                    ctx.drop_pkt(pkt);
                }
            },
            _ => {
                let entry = state.labels.lookup(&key, ctx.now()).cloned();
                *run = Some((key, entry.clone()));
                match entry {
                    Some(entry) => self.apply_labeled(ctx, state, pkt, weight, &entry),
                    None => {
                        state.counters.label_misses += weight;
                        ctx.drop_pkt(pkt);
                    }
                }
            }
        }
    }
}

impl Device for MiddleboxDevice {
    fn receive(&mut self, ctx: &mut DeviceCtx<'_>, pkt: sdm_netsim::PacketId) {
        let mut state = self.state.lock();
        let state = &mut *state;
        if state.failed {
            state.counters.dropped_failed += ctx.pkt(pkt).weight;
            ctx.drop_pkt(pkt);
            return;
        }
        if ctx.pkt(pkt).is_encapsulated() {
            self.handle_tunneled(ctx, state, pkt);
        } else if ctx.pkt(pkt).has_source_route() {
            self.handle_source_routed(ctx, state, pkt);
        } else {
            self.handle_labeled(ctx, state, pkt);
        }
    }

    /// Vector path: one lock acquisition for the whole batch, one
    /// flow/label-table probe per consecutive same-key run.
    ///
    /// Bit-identical to per-packet [`MiddleboxDevice::receive`]: run-mates
    /// reuse a probe result the scalar path is guaranteed to reproduce
    /// (see `tunneled_batched` / `labeled_batched`), and a packet of a
    /// different kind conservatively ends the current run — tunneled
    /// packets are the only writers of the label table, so a label run
    /// never survives one.
    fn receive_batch(&mut self, ctx: &mut DeviceCtx<'_>, pkts: &[PacketId]) {
        let mut state = self.state.lock();
        let state = &mut *state;
        let mut tunnel_run: Option<TunnelRun> = None;
        let mut label_run: Option<(LabelKey, Option<LabelEntry>)> = None;
        for &pkt in pkts {
            if state.failed {
                // A failure observed mid-batch also ends every cached run:
                // if `failed` flips back before the batch is exhausted
                // (control-driven restore), the remainder must re-probe
                // rather than resume a pre-failure decision.
                tunnel_run = None;
                label_run = None;
                state.counters.dropped_failed += ctx.pkt(pkt).weight;
                ctx.drop_pkt(pkt);
                continue;
            }
            if ctx.pkt(pkt).is_encapsulated() {
                label_run = None;
                self.tunneled_batched(ctx, state, pkt, &mut tunnel_run);
            } else if ctx.pkt(pkt).has_source_route() {
                tunnel_run = None;
                label_run = None;
                self.handle_source_routed(ctx, state, pkt);
            } else {
                tunnel_run = None;
                self.labeled_batched(ctx, state, pkt, &mut label_run);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    //! Middlebox behaviour is exercised end-to-end in the controller tests;
    //! here we cover position resolution in isolation.

    use super::*;
    use crate::deployment::{Deployment, MiddleboxSpec};
    use crate::steer::{Assignments, KConfig, Strategy};
    use sdm_util::sync::Mutex;
    use sdm_netsim::AddressPlan;
    use sdm_policy::NetworkFunction::*;
    use sdm_topology::campus::campus;

    fn device(functions: &[NetworkFunction]) -> MiddleboxDevice {
        let plan = campus(1);
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
        let routes = plan.topology().routing_tables();
        let assignments = Assignments::compute(&dep, &routes, plan.edges(), &KConfig::uniform(1));
        let config = Arc::new(RuntimeConfig {
            strategy: Strategy::HotPotato,
            assignments,
            weights: crate::runtime::WeightsCell::new(None),
            mbox_addrs: vec![sdm_netsim::preassigned_device_addr(0)],
            addr_to_mbox: Default::default(),
            addr_plan: AddressPlan::new(&plan),
            encoding: Default::default(),
            mbox_functions: dep.iter().map(|(_, s)| s.functions.clone()).collect(),
            tel: Arc::new(sdm_telemetry::ShardTelemetry::new(false)),
        });
        MiddleboxDevice::new(
            MiddleboxId(0),
            functions.iter().copied().collect(),
            LocalClassifier::new(Default::default(), Default::default()),
            config,
            Arc::new(Mutex::new(MboxState::new(1000, 1000, sdm_policy::DEFAULT_NEG_SETS))),
        )
    }

    #[test]
    fn my_position_finds_first_implemented() {
        let dev = device(&[Ids]);
        let chain = ActionList::chain([Firewall, Ids, WebProxy]);
        assert_eq!(dev.my_position(&chain), Some(1));
        let dev2 = device(&[TrafficMonitor]);
        assert_eq!(dev2.my_position(&chain), None);
    }

    #[test]
    fn multi_function_position_is_earliest() {
        let dev = device(&[Ids, Firewall]);
        let chain = ActionList::chain([Firewall, Ids, WebProxy]);
        assert_eq!(dev.my_position(&chain), Some(0));
    }
}
