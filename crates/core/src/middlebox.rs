//! The software-defined middlebox (§III.A–E): applies its network
//! function(s), resolves the governing policy via flow cache or policy
//! table, steers packets onwards via IP-over-IP, installs label-table
//! entries, and handles label-switched packets with destination rewriting.

use std::collections::BTreeSet;
use std::sync::Arc;

use sdm_netsim::{Device, DeviceCtx, Packet};
use sdm_policy::{ActionList, LabelKey, LocalClassifier, NetworkFunction, PolicyId};

use crate::deployment::MiddleboxId;
use crate::runtime::{MboxState, RuntimeConfig, Shared};
use crate::steer::SteerPoint;

/// One software-defined middlebox device.
pub struct MiddleboxDevice {
    id: MiddleboxId,
    functions: BTreeSet<NetworkFunction>,
    policies: LocalClassifier,
    config: Arc<RuntimeConfig>,
    state: Shared<MboxState>,
}

impl MiddleboxDevice {
    /// Creates the device with its controller-installed policy table.
    pub fn new(
        id: MiddleboxId,
        functions: BTreeSet<NetworkFunction>,
        policies: LocalClassifier,
        config: Arc<RuntimeConfig>,
        state: Shared<MboxState>,
    ) -> Self {
        MiddleboxDevice {
            id,
            functions,
            policies,
            config,
            state,
        }
    }

    /// Position of this box's function occurrence in `actions`: the first
    /// index whose function we implement.
    fn my_position(&self, actions: &ActionList) -> Option<usize> {
        actions
            .functions()
            .iter()
            .position(|f| self.functions.contains(f))
    }

    /// Handles a tunneled (IP-over-IP) packet addressed to this box.
    fn handle_tunneled(&mut self, ctx: &mut DeviceCtx<'_>, pkt: sdm_netsim::PacketId) {
        let proxy_addr = ctx.pkt(pkt).current_src(); // kept as outer src end-to-end (§III.E)
        ctx.pkt_mut(pkt).decapsulate();
        let (ft, weight) = {
            let p = ctx.pkt(pkt);
            (p.five_tuple(), p.weight)
        };
        let now = ctx.now();

        let mut state = self.state.lock();
        state.counters.tunneled_in += weight;

        // Resolve the governing policy: flow cache, then policy table.
        let cached: Option<(PolicyId, ActionList)> = state
            .flows
            .lookup(&ft, now, weight)
            .and_then(|e| e.action.clone());
        let (policy_id, actions) = match cached {
            Some(pa) => pa,
            None => match self.policies.first_match(&ft) {
                Some((id, policy)) => {
                    let actions = policy.actions.clone();
                    state
                        .flows
                        .insert_positive(ft, id, actions.clone(), now);
                    (id, actions)
                }
                None => {
                    // A tunneled packet should always match (the sender
                    // matched it); tolerate and forward untouched.
                    state.counters.unmatched += weight;
                    drop(state);
                    ctx.forward(pkt);
                    return;
                }
            },
        };

        // Apply our function, plus any consecutive functions we also
        // implement locally.
        let Some(pos) = self.my_position(&actions) else {
            state.counters.unmatched += weight;
            drop(state);
            ctx.forward(pkt);
            return;
        };
        let mut end = pos;
        state.counters.applications += weight;
        while let Some(nf) = actions.get(end + 1) {
            if self.functions.contains(&nf) {
                end += 1;
                state.counters.applications += weight;
            } else {
                break;
            }
        }

        match actions.get(end + 1) {
            Some(next_fn) => {
                // Steer to the next middlebox.
                let commodity = self.config.commodity_of(ctx.pkt(pkt));
                let Some(next) = self.config.select_for_commodity(
                    SteerPoint::Middlebox(self.id),
                    policy_id,
                    next_fn,
                    (end + 1) as u16,
                    &ft,
                    commodity,
                ) else {
                    state.counters.unenforceable += weight;
                    ctx.drop_pkt(pkt);
                    return;
                };
                let next_addr = self.config.mbox_addr(next);
                // Install the label-table entry for later label switching.
                if let Some(l) = ctx.pkt(pkt).label {
                    state.labels.insert(
                        LabelKey {
                            src: ctx.pkt(pkt).inner.src,
                            label: l,
                        },
                        actions.clone(),
                        policy_id,
                        pos,
                        Some(next_addr),
                        None,
                        now,
                    );
                }
                ctx.pkt_mut(pkt).encapsulate(proxy_addr, next_addr);
                drop(state);
                ctx.forward(pkt);
            }
            None => {
                // Last middlebox in the chain (§III.E): store the final
                // destination, notify the proxy, forward the original
                // packet towards its destination.
                if let Some(l) = ctx.pkt(pkt).label {
                    state.labels.insert(
                        LabelKey {
                            src: ctx.pkt(pkt).inner.src,
                            label: l,
                        },
                        actions.clone(),
                        policy_id,
                        pos,
                        None,
                        Some(ctx.pkt(pkt).inner.dst),
                        now,
                    );
                    if self.config.label_switching() {
                        let control = Packet::control(ctx.addr(), proxy_addr, ft);
                        let control = ctx.alloc(control);
                        drop(state);
                        ctx.forward(control);
                        ctx.forward(pkt);
                        return;
                    }
                }
                drop(state);
                ctx.forward(pkt);
            }
        }
    }

    /// Handles a source-routed packet: apply the function, pop the next
    /// segment, forward. No per-flow state is consulted or installed.
    fn handle_source_routed(&mut self, ctx: &mut DeviceCtx<'_>, pkt: sdm_netsim::PacketId) {
        let weight = ctx.pkt(pkt).weight;
        {
            let mut state = self.state.lock();
            state.counters.source_routed_in += weight;
            state.counters.applications += weight;
        }
        if ctx.pkt_mut(pkt).advance_source_route() {
            ctx.forward(pkt);
        } else {
            // an exhausted route here would mean the proxy built a route
            // not ending in the destination; unreachable in practice
            // because set_source_route guarantees a final segment.
            ctx.drop_pkt(pkt);
        }
    }

    /// Handles a label-switched packet (not encapsulated, addressed to us).
    fn handle_labeled(&mut self, ctx: &mut DeviceCtx<'_>, pkt: sdm_netsim::PacketId) {
        let weight = ctx.pkt(pkt).weight;
        let mut state = self.state.lock();
        state.counters.label_switched_in += weight;
        let Some(label) = ctx.pkt(pkt).label else {
            state.counters.label_misses += weight;
            ctx.drop_pkt(pkt); // addressed to us without label or tunnel
            return;
        };
        let key = LabelKey {
            src: ctx.pkt(pkt).inner.src,
            label,
        };
        let now = ctx.now();
        let entry = match state.labels.lookup(&key, now) {
            Some(e) => e.clone(),
            None => {
                state.counters.label_misses += weight;
                ctx.drop_pkt(pkt);
                return;
            }
        };
        state.counters.applications += weight;
        match (entry.next_hop, entry.final_dst) {
            (Some(next), _) => {
                ctx.pkt_mut(pkt).inner.dst = next;
            }
            (None, Some(dst)) => {
                ctx.pkt_mut(pkt).inner.dst = dst;
            }
            (None, None) => {
                state.counters.label_misses += weight;
                ctx.drop_pkt(pkt);
                return;
            }
        }
        drop(state);
        ctx.forward(pkt);
    }
}

impl Device for MiddleboxDevice {
    fn receive(&mut self, ctx: &mut DeviceCtx<'_>, pkt: sdm_netsim::PacketId) {
        {
            let mut state = self.state.lock();
            if state.failed {
                state.counters.dropped_failed += ctx.pkt(pkt).weight;
                ctx.drop_pkt(pkt);
                return;
            }
        }
        if ctx.pkt(pkt).is_encapsulated() {
            self.handle_tunneled(ctx, pkt);
        } else if ctx.pkt(pkt).has_source_route() {
            self.handle_source_routed(ctx, pkt);
        } else {
            self.handle_labeled(ctx, pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    //! Middlebox behaviour is exercised end-to-end in the controller tests;
    //! here we cover position resolution in isolation.

    use super::*;
    use crate::deployment::{Deployment, MiddleboxSpec};
    use crate::steer::{Assignments, KConfig, Strategy};
    use sdm_util::sync::Mutex;
    use sdm_netsim::AddressPlan;
    use sdm_policy::NetworkFunction::*;
    use sdm_topology::campus::campus;

    fn device(functions: &[NetworkFunction]) -> MiddleboxDevice {
        let plan = campus(1);
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
        let routes = plan.topology().routing_tables();
        let assignments = Assignments::compute(&dep, &routes, plan.edges(), &KConfig::uniform(1));
        let config = Arc::new(RuntimeConfig {
            strategy: Strategy::HotPotato,
            assignments,
            weights: None,
            mbox_addrs: vec![sdm_netsim::preassigned_device_addr(0)],
            addr_to_mbox: Default::default(),
            addr_plan: AddressPlan::new(&plan),
            encoding: Default::default(),
            mbox_functions: dep.iter().map(|(_, s)| s.functions.clone()).collect(),
        });
        MiddleboxDevice::new(
            MiddleboxId(0),
            functions.iter().copied().collect(),
            LocalClassifier::new(Default::default(), Default::default()),
            config,
            Arc::new(Mutex::new(MboxState::new(1000, 1000))),
        )
    }

    #[test]
    fn my_position_finds_first_implemented() {
        let dev = device(&[Ids]);
        let chain = ActionList::chain([Firewall, Ids, WebProxy]);
        assert_eq!(dev.my_position(&chain), Some(1));
        let dev2 = device(&[TrafficMonitor]);
        assert_eq!(dev2.my_position(&chain), None);
    }

    #[test]
    fn multi_function_position_is_earliest() {
        let dev = device(&[Ids, Firewall]);
        let chain = ActionList::chain([Firewall, Ids, WebProxy]);
        assert_eq!(dev.my_position(&chain), Some(0));
    }
}
