//! Adapter between the controller's types and the `sdm-verify` reach
//! (isolation) tier, plus the assertion plumbing.
//!
//! Like [`crate::verify::plan_view`], this projects controller state into
//! the checker's neutral data model — here [`ReachView`]: the structural
//! plan plus the symbolic policy table ([`RuleView`] per policy, with the
//! traffic descriptor compiled into a [`FlowClass`]), the ingress
//! attachment routers, the enterprise address space and the steering
//! strategy. [`verify_reach`] then runs
//! [`sdm_verify::reach::check_assertions`] against the controller's
//! routing tables — the *same* next-hop function the simulated routers
//! forward by, which is what makes every witness replayable.
//!
//! Hazard-state checking for the epoch loop lives on
//! [`crate::EpochLoop::verify_reach`], which extends the view with the
//! pre-swap weights and the currently-failed middlebox set.

use sdm_verify::reach::{
    check_assertions, Assertion, FlowClass, HazardView, ReachReport, ReachView, RuleView,
    StrategyView,
};

use crate::controller::{Controller, EnforcementOptions};
use crate::steer::{Strategy, SteeringWeights};
use crate::verify::plan_view;

/// The symbolic support model of a concrete [`Strategy`]: which candidate
/// boxes a flow *can* be steered to at a decision point.
pub fn strategy_view(strategy: Strategy) -> StrategyView {
    match strategy {
        Strategy::HotPotato => StrategyView::HotPotato,
        Strategy::Random { .. } => StrategyView::Random,
        Strategy::LoadBalanced => StrategyView::LoadBalanced,
    }
}

/// Projects the controller's state into the reach checker's
/// [`ReachView`] (no hazard state; see [`crate::EpochLoop::verify_reach`]
/// for the hazard-extended projection).
pub fn reach_view(
    controller: &Controller,
    strategy: Strategy,
    weights: Option<&SteeringWeights>,
    options: &EnforcementOptions,
) -> ReachView {
    let addr_plan = controller.addr_plan();
    let rules: Vec<RuleView> = controller
        .policies()
        .iter()
        .map(|(id, p)| RuleView {
            policy: id.0,
            class: FlowClass::from_descriptor(&p.descriptor),
            chain: p.actions.functions().to_vec(),
        })
        .collect();
    ReachView {
        plan: plan_view(controller, weights, Some(options)),
        rules,
        stub_routers: addr_plan
            .stubs()
            .map(|s| addr_plan.edge_router(s).index() as u32)
            .collect(),
        gateway_routers: controller
            .plan()
            .gateways()
            .iter()
            .map(|n| n.index() as u32)
            .collect(),
        enterprise: addr_plan.enterprise_prefix(),
        strategy: strategy_view(strategy),
        hazards: None,
    }
}

/// Checks `assertions` against the converged deployment under `strategy`
/// and `weights`, using the controller's own routing tables as the
/// next-hop view.
pub fn verify_reach(
    controller: &Controller,
    strategy: Strategy,
    weights: Option<&SteeringWeights>,
    options: &EnforcementOptions,
    assertions: &[Assertion],
) -> ReachReport {
    let view = reach_view(controller, strategy, weights, options);
    check_assertions(&view, controller.routes(), assertions)
}

/// Like [`verify_reach`] but with an explicit hazard state — the
/// pre-swap weights and the middleboxes failed right now — so the
/// stale-pinned-flow (R005) and label-TTL-skew (R006) windows are
/// checked too.
pub fn verify_reach_hazards(
    controller: &Controller,
    strategy: Strategy,
    weights: Option<&SteeringWeights>,
    options: &EnforcementOptions,
    hazards: HazardView,
    assertions: &[Assertion],
) -> ReachReport {
    let mut view = reach_view(controller, strategy, weights, options);
    view.hazards = Some(hazards);
    check_assertions(&view, controller.routes(), assertions)
}
