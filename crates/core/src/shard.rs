//! Flow-sharded parallel enforcement: partition a flow list by flow hash
//! into N shards, run N independent [`Enforcement`] instances on worker
//! threads, and deterministically merge their statistics into one result.
//!
//! Soundness rests on flow stickiness (§III.B): every per-flow decision —
//! steering, flow-cache entries, label bindings — is a pure function of the
//! five-tuple and the (read-only) controller configuration, so flows never
//! interact. Partitioning by [`FiveTuple::stable_hash`] keeps each flow's
//! packets in one shard, and all merged quantities are either exact integer
//! sums/maxima or integer-valued traffic volumes, so
//! `run_sharded(N) == run_sharded(1)` bit-for-bit for any N.
//!
//! The one exception is *shared middlebox queueing*
//! ([`Enforcement::set_middlebox_service_time`], Ablation H): there flows
//! contend for the same server, so sharding would change the answer. Such
//! experiments must call [`resolve_shards`] with `shard_safe = false`,
//! which forces a single shard.
//!
//! # Interaction with vector execution (`SDM_BATCH`)
//!
//! Sharding and batching compose orthogonally. Each shard owns a private
//! simulator that reads `SDM_BATCH` at construction, so every worker runs
//! the same vector hot loop (`sdm-netsim`'s batched event drain; see the
//! engine's *Vector execution* docs). Batching is bit-identical to the
//! scalar path *within* one simulator, sharding is bit-identical across
//! shard counts, and the merge below folds shard results in fixed shard-
//! index order — therefore any `(SDM_SHARDS, SDM_BATCH)` combination
//! produces the same bytes. `ci.sh` pins both axes with `cmp`-based
//! smoke checks on the Table III output.

use sdm_netsim::{FiveTuple, SimStats};
use sdm_policy::FlowTableStats;
use sdm_util::par;

use crate::controller::{Controller, Enforcement, EnforcementOptions};
use crate::deployment::Deployment;
use crate::measure::TrafficMatrix;
use crate::report::LoadReport;
use crate::runtime::{MboxCounters, ProxyCounters};
use crate::steer::{SteeringWeights, Strategy};

/// One flow to inject: the aggregate-injection triple of
/// [`Enforcement::inject_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// The flow's five-tuple (also the shard key).
    pub flow: FiveTuple,
    /// Packets in the flow.
    pub packets: u64,
    /// Payload bytes per packet.
    pub payload: u32,
}

/// The shard a flow belongs to: `stable_hash() mod shards`.
///
/// Deterministic across runs and platforms (the hash is the same FNV-style
/// mix the steering layer uses), and identical five-tuples always land in
/// the same shard, so per-flow soft state never splits.
pub fn shard_of(flow: &FiveTuple, shards: usize) -> usize {
    if shards <= 1 {
        0
    } else {
        (flow.stable_hash() % shards as u64) as usize
    }
}

/// Clamps a requested shard count for an experiment: shard-unsafe
/// experiments (flows share middlebox queues, e.g. Ablation H's finite
/// service rates) fall back to a single shard; everything else keeps the
/// request (minimum 1).
pub fn resolve_shards(requested: usize, shard_safe: bool) -> usize {
    if shard_safe {
        requested.max(1)
    } else {
        1
    }
}

/// Soft-state footprint of the data plane after a run: entry counts and
/// flow-cache statistics per device, index-aligned with the controller's
/// stub / gateway / middlebox orders. Merged additively across shards —
/// each flow's entries live in exactly one shard, so the sums equal a
/// single-shard run's counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateFootprint {
    /// Live flow-cache entries per stub proxy.
    pub proxy_flow_entries: Vec<u64>,
    /// Flow-cache hit/miss/expiry counters per stub proxy.
    pub proxy_flow_stats: Vec<FlowTableStats>,
    /// Live flow-cache entries per gateway ingress proxy.
    pub ingress_flow_entries: Vec<u64>,
    /// Live flow-cache entries per middlebox.
    pub mbox_flow_entries: Vec<u64>,
    /// Live label-table entries per middlebox (§III.E).
    pub mbox_label_entries: Vec<u64>,
    /// Flow-cache counters per middlebox.
    pub mbox_flow_stats: Vec<FlowTableStats>,
    /// Negative-cache evictions per stub proxy (non-zero only when the
    /// capped negative cache is under exhaustion pressure; see
    /// [`sdm_policy::FlowTable::negative_evictions`]). The set-associative
    /// cache partitions flows by stable hash, so these counts are invariant
    /// across `SDM_SHARDS` / `SDM_BATCH` like every other footprint field.
    pub proxy_neg_evictions: Vec<u64>,
    /// Negative-cache evictions per gateway ingress proxy.
    pub ingress_neg_evictions: Vec<u64>,
    /// Negative-cache evictions per middlebox.
    pub mbox_neg_evictions: Vec<u64>,
}

impl StateFootprint {
    fn merge(&mut self, other: &StateFootprint) {
        fn add(dst: &mut [u64], src: &[u64]) {
            debug_assert_eq!(dst.len(), src.len());
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        add(&mut self.proxy_flow_entries, &other.proxy_flow_entries);
        add(&mut self.ingress_flow_entries, &other.ingress_flow_entries);
        add(&mut self.mbox_flow_entries, &other.mbox_flow_entries);
        add(&mut self.mbox_label_entries, &other.mbox_label_entries);
        add(&mut self.proxy_neg_evictions, &other.proxy_neg_evictions);
        add(&mut self.ingress_neg_evictions, &other.ingress_neg_evictions);
        add(&mut self.mbox_neg_evictions, &other.mbox_neg_evictions);
        for (d, s) in self.proxy_flow_stats.iter_mut().zip(&other.proxy_flow_stats) {
            d.merge(s);
        }
        for (d, s) in self.mbox_flow_stats.iter_mut().zip(&other.mbox_flow_stats) {
            d.merge(s);
        }
    }
}

/// The deterministically merged result of a flow-sharded run. Every field
/// is the element-wise / additive merge of the per-shard snapshots, taken
/// in shard-index order.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// How many shards the flow list was split into.
    pub shards: usize,
    /// Total simulator events processed across shards.
    pub events: u64,
    /// Merged engine statistics (sums; `*_max` fields are maxima).
    pub stats: SimStats,
    /// Per-middlebox packet loads (Figures 4–5), summed across shards.
    pub loads: Vec<u64>,
    /// Merged proxy traffic measurements (integer-valued volumes).
    pub measurements: TrafficMatrix,
    /// Merged per-stub proxy counters.
    pub proxy_counters: Vec<ProxyCounters>,
    /// Merged per-gateway ingress-proxy counters.
    pub ingress_counters: Vec<ProxyCounters>,
    /// Merged per-middlebox counters.
    pub mbox_counters: Vec<MboxCounters>,
    /// Merged soft-state footprint.
    pub footprint: StateFootprint,
    /// Merged telemetry snapshot ([`Enforcement::telemetry_snapshot`] per
    /// shard, folded in shard-index order). All zeros unless telemetry was
    /// enabled (`SDM_TELEMETRY` / [`EnforcementOptions::telemetry`]) —
    /// except the scraped table/simulator families, which are always live.
    pub telemetry: sdm_telemetry::Snapshot,
}

impl ShardedRun {
    /// Per-type load summary (Table III) over the merged loads.
    pub fn load_report(&self, deployment: &Deployment) -> LoadReport {
        LoadReport::from_loads(deployment, &self.loads)
    }
}

/// One shard's plain-data snapshot, taken inside the worker thread after
/// its private `Enforcement` ran to completion.
struct ShardSnapshot {
    events: u64,
    stats: SimStats,
    loads: Vec<u64>,
    measurements: TrafficMatrix,
    proxy_counters: Vec<ProxyCounters>,
    ingress_counters: Vec<ProxyCounters>,
    mbox_counters: Vec<MboxCounters>,
    footprint: StateFootprint,
    telemetry: sdm_telemetry::Snapshot,
}

fn snapshot(controller: &Controller, enf: &Enforcement, events: u64) -> ShardSnapshot {
    let stubs = controller.addr_plan().stub_count();
    let gateways = controller.plan().gateways().len();
    let mboxes = controller.deployment().len();

    let mut proxy_counters = Vec::with_capacity(stubs);
    let mut proxy_flow_entries = Vec::with_capacity(stubs);
    let mut proxy_flow_stats = Vec::with_capacity(stubs);
    let mut proxy_neg_evictions = Vec::with_capacity(stubs);
    for stub in controller.addr_plan().stubs() {
        let state = enf.proxy_state(stub);
        let st = state.lock();
        proxy_counters.push(st.counters);
        proxy_flow_entries.push(st.flows.len() as u64);
        proxy_flow_stats.push(st.flows.stats());
        proxy_neg_evictions.push(st.flows.negative_evictions());
    }

    let mut ingress_counters = Vec::with_capacity(gateways);
    let mut ingress_flow_entries = Vec::with_capacity(gateways);
    let mut ingress_neg_evictions = Vec::with_capacity(gateways);
    for g in 0..gateways {
        let state = enf.ingress_state(g);
        let st = state.lock();
        ingress_counters.push(st.counters);
        ingress_flow_entries.push(st.flows.len() as u64);
        ingress_neg_evictions.push(st.flows.negative_evictions());
    }

    let mut mbox_counters = Vec::with_capacity(mboxes);
    let mut mbox_flow_entries = Vec::with_capacity(mboxes);
    let mut mbox_label_entries = Vec::with_capacity(mboxes);
    let mut mbox_flow_stats = Vec::with_capacity(mboxes);
    let mut mbox_neg_evictions = Vec::with_capacity(mboxes);
    for (id, _) in controller.deployment().iter() {
        let state = enf.mbox_state(id);
        let st = state.lock();
        mbox_counters.push(st.counters);
        mbox_flow_entries.push(st.flows.len() as u64);
        mbox_label_entries.push(st.labels.len() as u64);
        mbox_flow_stats.push(st.flows.stats());
        mbox_neg_evictions.push(st.flows.negative_evictions());
    }

    ShardSnapshot {
        events,
        stats: enf.sim().stats().clone(),
        loads: enf.middlebox_loads(),
        measurements: enf.measurements(),
        proxy_counters,
        ingress_counters,
        mbox_counters,
        footprint: StateFootprint {
            proxy_flow_entries,
            proxy_flow_stats,
            ingress_flow_entries,
            mbox_flow_entries,
            mbox_label_entries,
            mbox_flow_stats,
            proxy_neg_evictions,
            ingress_neg_evictions,
            mbox_neg_evictions,
        },
        telemetry: enf.telemetry_snapshot(),
    }
}

impl Controller {
    /// Runs `flows` through `shards` independent enforcement instances in
    /// parallel and merges the results deterministically.
    ///
    /// Flows are bucketed by [`shard_of`] (preserving input order inside a
    /// bucket); each worker builds its own [`Enforcement`] — a cheap clone
    /// of the controller's read-only plan, assignments and weights —
    /// injects its bucket, runs to completion and snapshots plain data.
    /// Snapshots are folded in shard-index order, so the result is
    /// independent of thread scheduling: `run_sharded(n)` is bit-identical
    /// to `run_sharded(1)` and to a legacy single-`Enforcement` run over
    /// the same flow list.
    ///
    /// The worker-thread count is governed separately by `SDM_THREADS`
    /// (see [`sdm_util::par::thread_count`]); the shard count only decides
    /// the partition, so the same `shards` value reproduces the same
    /// output on any machine.
    ///
    /// # Panics
    ///
    /// Panics if any flow's source is outside every stub subnet (as
    /// [`Enforcement::inject_flow`] does).
    pub fn run_sharded(
        &self,
        strategy: Strategy,
        weights: Option<&SteeringWeights>,
        options: EnforcementOptions,
        flows: &[FlowSpec],
        shards: usize,
    ) -> ShardedRun {
        // Fail-fast (see ISSUE 5 / sdm-verify): prove the full enforcement
        // plan — including the LP solution and the runtime options — before
        // any packet is injected. A broken weight column or a zero TTL
        // panics here with the structured V0xx report instead of silently
        // blackholing traffic mid-run.
        let report = crate::verify::verify_enforcement(self, weights, &options);
        assert!(!report.has_errors(), "{report}");

        let shards = shards.max(1);
        let mut buckets: Vec<Vec<FlowSpec>> = vec![Vec::new(); shards];
        for spec in flows {
            buckets[shard_of(&spec.flow, shards)].push(*spec);
        }

        let snapshots = par::par_map(&buckets, |_, bucket| {
            let mut enf = self.enforcement(strategy, weights.cloned(), options);
            for spec in bucket {
                enf.inject_flow(spec.flow, spec.packets, spec.payload);
            }
            let events = enf.run();
            snapshot(self, &enf, events)
        });

        let mut iter = snapshots.into_iter();
        // lint:allow(hot-path-panic) — resolve_shards guarantees shards >= 1
        let first = iter.next().expect("at least one shard");
        let mut run = ShardedRun {
            shards,
            events: first.events,
            stats: first.stats,
            loads: first.loads,
            measurements: first.measurements,
            proxy_counters: first.proxy_counters,
            ingress_counters: first.ingress_counters,
            mbox_counters: first.mbox_counters,
            footprint: first.footprint,
            telemetry: first.telemetry,
        };
        for s in iter {
            run.events += s.events;
            run.stats.merge(&s.stats);
            debug_assert_eq!(run.loads.len(), s.loads.len());
            for (d, v) in run.loads.iter_mut().zip(&s.loads) {
                *d += v;
            }
            run.measurements.merge(&s.measurements);
            for (d, v) in run.proxy_counters.iter_mut().zip(&s.proxy_counters) {
                d.merge(v);
            }
            for (d, v) in run.ingress_counters.iter_mut().zip(&s.ingress_counters) {
                d.merge(v);
            }
            for (d, v) in run.mbox_counters.iter_mut().zip(&s.mbox_counters) {
                d.merge(v);
            }
            run.footprint.merge(&s.footprint);
            run.telemetry.merge(&s.telemetry);
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::MiddleboxSpec;
    use crate::steer::KConfig;
    use sdm_netsim::{Protocol, StubId};
    use sdm_policy::{ActionList, NetworkFunction::*, Policy, PolicySet, TrafficDescriptor};
    use sdm_topology::campus::campus;

    fn controller() -> Controller {
        let plan = campus(1);
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[8], 1.0));
        dep.add(MiddleboxSpec::new(Ids, plan.cores()[4], 1.0));
        let mut policies = PolicySet::new();
        policies.push(Policy::new(
            TrafficDescriptor::new().dst_port(80),
            ActionList::chain([Firewall, Ids]),
        ));
        Controller::new(plan, dep, policies, KConfig::uniform(2))
    }

    fn flows(c: &Controller, n: u16) -> Vec<FlowSpec> {
        (0..n)
            .map(|i| FlowSpec {
                flow: FiveTuple {
                    src: c.addr_plan().host(StubId((i % 8) as u32), i as u32 % 50),
                    dst: c.addr_plan().host(StubId(((i % 8) + 1) as u32), 1),
                    src_port: 1024 + i,
                    dst_port: 80,
                    proto: Protocol::Tcp,
                },
                packets: 1 + (i as u64 % 40),
                payload: 512,
            })
            .collect()
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let c = controller();
        for spec in flows(&c, 64) {
            for shards in [1usize, 2, 3, 4, 8] {
                let s = shard_of(&spec.flow, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(&spec.flow, shards), "stable");
            }
            assert_eq!(shard_of(&spec.flow, 0), 0);
        }
    }

    #[test]
    fn resolve_shards_falls_back_for_unsafe_experiments() {
        assert_eq!(resolve_shards(4, true), 4);
        assert_eq!(resolve_shards(0, true), 1);
        assert_eq!(resolve_shards(4, false), 1, "Ablation H must not shard");
    }

    #[test]
    fn sharded_run_matches_legacy_enforcement() {
        let c = controller();
        let specs = flows(&c, 200);

        // Legacy: one Enforcement over the whole list.
        let mut enf = c.enforcement(Strategy::HotPotato, None, Default::default());
        for s in &specs {
            enf.inject_flow(s.flow, s.packets, s.payload);
        }
        enf.run();
        let legacy_loads = enf.middlebox_loads();
        let legacy_stats = enf.sim().stats().clone();

        for shards in [1usize, 3, 4] {
            let run = c.run_sharded(Strategy::HotPotato, None, Default::default(), &specs, shards);
            assert_eq!(run.shards, shards);
            assert_eq!(run.loads, legacy_loads, "loads, {shards} shards");
            assert_eq!(run.stats.delivered, legacy_stats.delivered);
            assert_eq!(run.stats.link_hops, legacy_stats.link_hops);
            assert_eq!(run.stats.dropped_ttl, legacy_stats.dropped_ttl);
            assert_eq!(run.stats.unroutable, legacy_stats.unroutable);
            assert_eq!(run.measurements.grand_total(), enf.measurements().grand_total());
            let total_entries: u64 = run.footprint.proxy_flow_entries.iter().sum();
            let legacy_entries: u64 = c
                .addr_plan()
                .stubs()
                .map(|s| enf.proxy_state(s).lock().flows.len() as u64)
                .sum();
            assert_eq!(total_entries, legacy_entries, "proxy cache footprint");
        }
    }

    #[test]
    fn merge_is_independent_of_worker_threads() {
        let c = controller();
        let specs = flows(&c, 120);
        std::env::remove_var("SDM_THREADS");
        let a = c.run_sharded(Strategy::Random { salt: 7 }, None, Default::default(), &specs, 4);
        std::env::set_var("SDM_THREADS", "1");
        let b = c.run_sharded(Strategy::Random { salt: 7 }, None, Default::default(), &specs, 4);
        std::env::remove_var("SDM_THREADS");
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats.delivered, b.stats.delivered);
        assert_eq!(a.proxy_counters, b.proxy_counters);
        assert_eq!(a.footprint, b.footprint);
    }
}
