//! Shared runtime state for the enforcement devices: the read-only
//! controller-installed configuration, and the per-device mutable state the
//! experiment harness inspects after a run.

use std::sync::Arc;

use sdm_util::sync::Mutex;
use sdm_util::FxHashMap;

use sdm_netsim::{AddressPlan, Ipv4Addr};
use sdm_policy::{FlowTable, LabelAllocator, LabelTable};

use crate::deployment::MiddleboxId;
use crate::measure::DestKey;
use crate::steer::{
    Assignments, CommodityKey, SteerPoint, SteeringEncoding, SteeringWeights, Strategy, WeightKey,
};
use sdm_netsim::FiveTuple;
use sdm_policy::PolicyId;

/// Interior-mutable holder for the installed LP split weights.
///
/// Devices share the [`RuntimeConfig`] through an `Arc`, so the §III.C
/// re-steer control loop cannot replace the config wholesale between
/// epochs without rebuilding every device (and losing the flow tables
/// that make live flows sticky). Instead the weights live behind this
/// cell: the controller [`WeightsCell::swap`]s a freshly solved table in
/// at an epoch boundary, and each selection takes a cheap
/// [`WeightsCell::snapshot`] handle. Selections run only on flow-cache
/// misses, so the lock is off the per-packet fast path.
#[derive(Debug, Default)]
pub struct WeightsCell {
    inner: Mutex<Option<Arc<SteeringWeights>>>,
}

impl WeightsCell {
    /// Wraps an initial weight table (or none, for weightless strategies).
    pub fn new(weights: Option<SteeringWeights>) -> Self {
        WeightsCell {
            inner: Mutex::new(weights.map(Arc::new)),
        }
    }

    /// A shared handle to the currently installed table.
    pub fn snapshot(&self) -> Option<Arc<SteeringWeights>> {
        self.inner.lock().clone()
    }

    /// Installs a new table, returning the previous one.
    pub fn swap(&self, weights: Option<SteeringWeights>) -> Option<Arc<SteeringWeights>> {
        std::mem::replace(&mut *self.inner.lock(), weights.map(Arc::new))
    }
}

/// Read-only configuration the controller pushes to every proxy and
/// middlebox before traffic starts (§III.B: assignments and policies;
/// §III.C: weights, which alone are swappable between epochs).
#[derive(Debug)]
pub struct RuntimeConfig {
    /// Enforcement strategy in force.
    pub strategy: Strategy,
    /// Candidate sets `M_x^e` for every steer point.
    pub assignments: Assignments,
    /// LP split weights (present only under load-balanced enforcement);
    /// swappable by the epoch control loop.
    pub weights: WeightsCell,
    /// Tunnel endpoint address of each middlebox, by id.
    pub mbox_addrs: Vec<Ipv4Addr>,
    /// Reverse map of `mbox_addrs`. Fx-hashed: this table sits on the
    /// per-packet decapsulation path.
    pub addr_to_mbox: FxHashMap<Ipv4Addr, MiddleboxId>,
    /// The network addressing plan (to resolve destination stubs).
    pub addr_plan: AddressPlan,
    /// How steering is encoded on the wire (§III.B/E, §V).
    pub encoding: SteeringEncoding,
    /// Functions implemented per middlebox (by id); lets proxies emulate
    /// downstream selections when building strict source routes.
    pub mbox_functions: Vec<std::collections::BTreeSet<sdm_policy::NetworkFunction>>,
    /// Hot-path telemetry collector shared with this shard's simulator
    /// (disabled by default: every record site is then a single branch).
    pub tel: Arc<sdm_telemetry::ShardTelemetry>,
}

impl RuntimeConfig {
    /// The address of a middlebox's tunnel endpoint.
    pub fn mbox_addr(&self, m: MiddleboxId) -> Ipv4Addr {
        self.mbox_addrs[m.index()]
    }

    /// Whether the §III.E label-switching enhancement is active.
    pub fn label_switching(&self) -> bool {
        self.encoding == SteeringEncoding::LabelSwitching
    }

    /// Emulates the whole chain selection for `flow` under policy
    /// `policy` with action list `actions`, starting at the proxy of
    /// `stub`: returns the distinct middleboxes visited, in order. Used to
    /// build strict source routes. Returns `None` if some function has no
    /// middlebox.
    pub fn resolve_chain(
        &self,
        origin: SteerPoint,
        policy: PolicyId,
        actions: &sdm_policy::ActionList,
        flow: &FiveTuple,
    ) -> Option<Vec<MiddleboxId>> {
        let mut chain = Vec::new();
        let first = actions.first()?;
        let mut current = self.select(origin, policy, first, 0, flow)?;
        chain.push(current);
        let mut idx = 0;
        while let Some(next_fn) = actions.get(idx + 1) {
            if self.mbox_functions[current.index()].contains(&next_fn) {
                // applied locally at `current`; no extra hop
                idx += 1;
                continue;
            }
            current = self.select(
                SteerPoint::Middlebox(current),
                policy,
                next_fn,
                (idx + 1) as u16,
                flow,
            )?;
            chain.push(current);
            idx += 1;
        }
        Some(chain)
    }

    /// Flow-sticky selection of the next middlebox for `flow` at `point`,
    /// towards the function at `next_index` of policy `policy`'s chain.
    ///
    /// Combines the candidate set, the installed weights (if any) and the
    /// strategy; returns `None` if no middlebox offers the function.
    /// Equivalent to [`RuntimeConfig::select_for_commodity`] without
    /// commodity context.
    pub fn select(
        &self,
        point: SteerPoint,
        policy: PolicyId,
        function: sdm_policy::NetworkFunction,
        next_index: u16,
        flow: &FiveTuple,
    ) -> Option<MiddleboxId> {
        self.select_for_commodity(point, policy, function, next_index, flow, None)
    }

    /// Like [`RuntimeConfig::select`], but when the flow's (source stub,
    /// destination) commodity is known, per-commodity Eq. (1) weights take
    /// precedence over the aggregate Eq. (2) weights.
    pub fn select_for_commodity(
        &self,
        point: SteerPoint,
        policy: PolicyId,
        function: sdm_policy::NetworkFunction,
        next_index: u16,
        flow: &FiveTuple,
        commodity: Option<(sdm_netsim::StubId, DestKey)>,
    ) -> Option<MiddleboxId> {
        let candidates = self.assignments.candidates(point, function);
        let key = WeightKey {
            point,
            policy,
            next_index,
        };
        let table = self.weights.snapshot();
        let weights = table.as_deref().and_then(|w| {
            commodity
                .and_then(|(src, dst)| w.get_fine(&CommodityKey { key, src, dst }))
                .or_else(|| w.get(&key))
        });
        crate::steer::select_next(self.strategy, candidates, weights, flow)
    }

    /// The commodity of a packet, derived from its *original* endpoints
    /// (which survive label switching's destination rewrites).
    pub fn commodity_of(&self, pkt: &sdm_netsim::Packet) -> Option<(sdm_netsim::StubId, DestKey)> {
        let src = self.addr_plan.stub_of(pkt.original.src)?;
        let dst = match self.addr_plan.stub_of(pkt.original.dst) {
            Some(s) => DestKey::Stub(s),
            None => DestKey::External,
        };
        Some((src, dst))
    }
}

/// Counters a policy proxy accumulates while enforcing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyCounters {
    /// Outbound packets intercepted (weighted).
    pub outbound: u64,
    /// Inbound packets delivered into the stub (weighted).
    pub inbound: u64,
    /// Outbound packets forwarded without any policy action.
    pub permitted: u64,
    /// Outbound packets steered into a middlebox chain.
    pub steered: u64,
    /// Packets forwarded via label switching instead of IP-over-IP.
    pub label_switched: u64,
    /// Label-ready control packets received.
    pub control_received: u64,
    /// Packets dropped because no middlebox offers a required function.
    pub unenforceable: u64,
}

impl ProxyCounters {
    /// Adds another proxy's counters into this one (used when merging the
    /// per-shard devices of a flow-sharded run).
    pub fn merge(&mut self, other: &ProxyCounters) {
        self.outbound += other.outbound;
        self.inbound += other.inbound;
        self.permitted += other.permitted;
        self.steered += other.steered;
        self.label_switched += other.label_switched;
        self.control_received += other.control_received;
        self.unenforceable += other.unenforceable;
    }
}

/// Mutable state of one policy proxy, shared between the device inside the
/// simulator and the harness outside it.
#[derive(Debug)]
pub struct ProxyState {
    /// The §III.D flow cache.
    pub flows: FlowTable,
    /// Label allocator for §III.E.
    pub labels: LabelAllocator,
    /// Enforcement counters.
    pub counters: ProxyCounters,
}

impl ProxyState {
    /// Fresh state with the given flow-cache ttl and negative-cache set
    /// count (`neg_sets`, a power of two — see
    /// [`sdm_policy::FlowTable::with_negative_sets`]).
    pub fn new(flow_ttl: u64, neg_sets: usize) -> Self {
        ProxyState {
            flows: FlowTable::with_negative_sets(flow_ttl, neg_sets),
            labels: LabelAllocator::new(),
            counters: ProxyCounters::default(),
        }
    }
}

/// Counters a middlebox accumulates while enforcing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MboxCounters {
    /// Network-function applications performed (weighted; one packet may
    /// receive several consecutive functions on a multi-function box).
    pub applications: u64,
    /// Tunneled (IP-over-IP) packets received.
    pub tunneled_in: u64,
    /// Label-switched packets received.
    pub label_switched_in: u64,
    /// Label-switched packets whose label had no table entry (dropped).
    pub label_misses: u64,
    /// Source-routed packets received (SR baseline encoding).
    pub source_routed_in: u64,
    /// Tunneled packets that matched no local policy (forwarded untouched).
    pub unmatched: u64,
    /// Packets dropped because the next function has no middlebox.
    pub unenforceable: u64,
    /// Packets dropped because this box has crashed.
    pub dropped_failed: u64,
}

impl MboxCounters {
    /// Adds another middlebox's counters into this one (used when merging
    /// the per-shard devices of a flow-sharded run).
    pub fn merge(&mut self, other: &MboxCounters) {
        self.applications += other.applications;
        self.tunneled_in += other.tunneled_in;
        self.label_switched_in += other.label_switched_in;
        self.label_misses += other.label_misses;
        self.source_routed_in += other.source_routed_in;
        self.unmatched += other.unmatched;
        self.unenforceable += other.unenforceable;
        self.dropped_failed += other.dropped_failed;
    }
}

/// Mutable state of one middlebox.
#[derive(Debug)]
pub struct MboxState {
    /// The §III.D flow cache (middleboxes keep one too).
    pub flows: FlowTable,
    /// The §III.E label table.
    pub labels: LabelTable,
    /// Enforcement counters.
    pub counters: MboxCounters,
    /// Crash flag: a failed box blackholes everything it receives (the
    /// failure model used by the dependability tests).
    pub failed: bool,
}

impl MboxState {
    /// Fresh state with the given soft-state ttls and negative-cache set
    /// count (see [`ProxyState::new`]).
    pub fn new(flow_ttl: u64, label_ttl: u64, neg_sets: usize) -> Self {
        MboxState {
            flows: FlowTable::with_negative_sets(flow_ttl, neg_sets),
            labels: LabelTable::new(label_ttl),
            counters: MboxCounters::default(),
            failed: false,
        }
    }
}

/// Convenience alias: shared handle to per-device state.
pub type Shared<T> = Arc<Mutex<T>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{Deployment, MiddleboxSpec};
    use crate::steer::{Assignments, KConfig, Strategy};
    use sdm_netsim::{AddressPlan, FiveTuple, Protocol, StubId};
    use sdm_policy::{ActionList, NetworkFunction::*};
    use sdm_topology::campus::campus;

    fn config() -> RuntimeConfig {
        let plan = campus(1);
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
        dep.add(MiddleboxSpec::new(Ids, plan.cores()[4], 1.0));
        dep.add(MiddleboxSpec::new(WebProxy, plan.cores()[9], 1.0));
        let routes = plan.topology().routing_tables();
        let assignments = Assignments::compute(&dep, &routes, plan.edges(), &KConfig::uniform(1));
        RuntimeConfig {
            strategy: Strategy::HotPotato,
            assignments,
            weights: WeightsCell::new(None),
            mbox_addrs: (0..3).map(sdm_netsim::preassigned_device_addr).collect(),
            addr_to_mbox: Default::default(),
            addr_plan: AddressPlan::new(&plan),
            encoding: SteeringEncoding::IpOverIp,
            mbox_functions: dep.iter().map(|(_, s)| s.functions.clone()).collect(),
            tel: Arc::new(sdm_telemetry::ShardTelemetry::new(false)),
        }
    }

    fn ft() -> FiveTuple {
        FiveTuple {
            src: "10.0.0.9".parse().unwrap(),
            dst: "10.0.16.9".parse().unwrap(), // stub 1 (/20 subnets)
            src_port: 4000,
            dst_port: 80,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn resolve_chain_visits_every_function_in_order() {
        let cfg = config();
        let chain = cfg
            .resolve_chain(
                SteerPoint::Proxy(StubId(0)),
                PolicyId(0),
                &ActionList::chain([Firewall, Ids, WebProxy]),
                &ft(),
            )
            .expect("all functions deployed");
        assert_eq!(chain.len(), 3);
        // single-function boxes: the chain is exactly FW, IDS, WP box ids
        assert_eq!(
            chain,
            vec![MiddleboxId(0), MiddleboxId(1), MiddleboxId(2)]
        );
    }

    #[test]
    fn resolve_chain_fails_on_missing_function() {
        let cfg = config();
        assert!(cfg
            .resolve_chain(
                SteerPoint::Proxy(StubId(0)),
                PolicyId(0),
                &ActionList::chain([TrafficMonitor]),
                &ft(),
            )
            .is_none());
    }

    #[test]
    fn commodity_resolution() {
        let cfg = config();
        let pkt = sdm_netsim::Packet::data(ft(), 100);
        let (src, dst) = cfg.commodity_of(&pkt).unwrap();
        assert_eq!(src, StubId(0));
        assert_eq!(dst, DestKey::Stub(StubId(1)));
        let mut ext = ft();
        ext.dst = "8.8.8.8".parse().unwrap();
        let pkt = sdm_netsim::Packet::data(ext, 100);
        assert_eq!(cfg.commodity_of(&pkt).unwrap().1, DestKey::External);
        let mut foreign = ft();
        foreign.src = "8.8.8.8".parse().unwrap();
        let pkt = sdm_netsim::Packet::data(foreign, 100);
        assert!(cfg.commodity_of(&pkt).is_none(), "external source has no stub");
    }
}
