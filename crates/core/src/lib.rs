//! Dependable policy enforcement in traditional non-SDN networks — the
//! core library of the ICDCS 2019 reproduction.
//!
//! This crate implements the paper's contribution on top of the substrate
//! crates (`sdm-topology`, `sdm-netsim`, `sdm-policy`, `sdm-lp`):
//!
//! * [`Deployment`] — software-defined middleboxes: functions, placement,
//!   capacities (§III.A).
//! * [`Controller`] — the central manager: computes the hot-potato targets
//!   `m_x^e` and candidate sets `M_x^e`, installs local policy tables
//!   `P_x`, aggregates traffic measurements and solves the load-balancing
//!   LPs (§III.B–C).
//! * [`Strategy`] — hot-potato, flow-sticky random, and load-balanced
//!   enforcement with hash-based probabilistic selection (§III.B–C, §IV.B).
//! * [`ProxyDevice`] / [`MiddleboxDevice`] — the data-plane devices, with
//!   the §III.D flow cache (negative caching included) and the §III.E
//!   label-switching enhancement that avoids packet fragmentation.
//! * [`Enforcement`] — a wired-up simulation: inject flows, run, read the
//!   per-middlebox loads the paper's figures report.
//!
//! # Quickstart
//!
//! ```
//! use sdm_core::*;
//! use sdm_policy::{ActionList, NetworkFunction, Policy, PolicySet, TrafficDescriptor};
//! use sdm_netsim::{FiveTuple, Protocol, StubId};
//!
//! // A campus network with the paper's middlebox deployment.
//! let plan = sdm_topology::campus::campus(1);
//! let deployment = Deployment::evaluation_default(&plan, 7);
//!
//! // One policy: all web traffic through FW -> IDS.
//! let mut policies = PolicySet::new();
//! policies.push(Policy::new(
//!     TrafficDescriptor::new().dst_port(80),
//!     ActionList::chain([NetworkFunction::Firewall, NetworkFunction::Ids]),
//! ));
//!
//! let controller = Controller::new(plan, deployment, policies, KConfig::paper_default());
//! let mut enf = controller.enforcement(Strategy::HotPotato, None,
//!                                      EnforcementOptions::default());
//! let flow = FiveTuple {
//!     src: controller.addr_plan().host(StubId(0), 1),
//!     dst: controller.addr_plan().host(StubId(5), 1),
//!     src_port: 40000, dst_port: 80, proto: Protocol::Tcp,
//! };
//! enf.inject_flow(flow, 1000, 512);
//! enf.run();
//! assert_eq!(enf.sim().stats().delivered, 1000);
//! assert!(enf.middlebox_loads().iter().sum::<u64>() >= 2000); // FW + IDS
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod deployment;
mod epoch;
mod ingress;
mod lp_model;
mod measure;
mod middlebox;
mod proxy;
mod reach;
mod report;
mod runtime;
mod shard;
mod steer;
mod telemetry;
mod verify;

pub use controller::{ConfigFootprint, Controller, Enforcement, EnforcementOptions};
pub use deployment::{Deployment, MiddleboxId, MiddleboxSpec};
pub use epoch::{EpochError, EpochLoop, EpochReport, LpTelemetry};
pub use lp_model::{
    build_full, build_reduced, build_reduced_with_cache, LbError, LbOptions, LbReport,
    LbWarmCache,
};
pub use measure::{DestKey, TrafficMatrix};
pub use ingress::IngressProxy;
pub use middlebox::MiddleboxDevice;
pub use proxy::ProxyDevice;
pub use report::{LoadReport, LoadRow};
pub use runtime::{
    MboxCounters, MboxState, ProxyCounters, ProxyState, RuntimeConfig, Shared, WeightsCell,
};
pub use shard::{resolve_shards, shard_of, FlowSpec, ShardedRun, StateFootprint};
pub use steer::{
    select_next, Assignments, CommodityKey, KConfig, SteerPoint, SteeringEncoding,
    SteeringWeights, Strategy, WeightKey,
};
pub use reach::{reach_view, strategy_view, verify_reach, verify_reach_hazards};
pub use verify::{plan_view, verify_controller, verify_enforcement, weights_view};
