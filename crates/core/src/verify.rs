//! Adapter between the controller's types and the `sdm-verify` static
//! plan verifier, plus the fail-fast hooks.
//!
//! `sdm-verify` sits *below* this crate in the dependency graph, so it
//! cannot see [`Controller`], [`Assignments`] or [`SteeringWeights`]
//! directly; [`plan_view`] projects them into the verifier's neutral
//! [`PlanView`] data model. Two hooks consume it:
//!
//! * [`Controller::new`] runs the **structural** verification (topology,
//!   addressing, chains, candidate sets — no weights, no runtime
//!   options) and panics on a fatal report, so a broken plan never
//!   produces a controller at all.
//! * [`Controller::run_sharded`] additionally verifies the steering
//!   weights and [`EnforcementOptions`] it was handed, so a broken LP
//!   solution or a misconfigured TTL/MTU is rejected before the first
//!   packet is injected.
//!
//! The `verify-plan` bench bin drives the same projection to emit the
//! JSON report for CI.

use sdm_netsim::preassigned_device_addr;
use sdm_verify::{
    CandidateSet, ChainView, MboxView, OptionsView, PlanView, Point, VerifyReport,
    WeightColumn, WeightsView,
};

use crate::controller::{Controller, EnforcementOptions};
use crate::steer::{SteerPoint, SteeringWeights};

fn point_of(p: SteerPoint) -> Point {
    match p {
        SteerPoint::Proxy(s) => Point::Proxy(s.index() as u32),
        SteerPoint::Gateway(g) => Point::Gateway(g),
        SteerPoint::Middlebox(m) => Point::Middlebox(m.0),
    }
}

/// Projects an LP solution into the verifier's neutral weight view (also
/// used by the reach tier to model the *previous* epoch's weights when
/// checking stale-flow hazards).
pub fn weights_view(w: &SteeringWeights) -> WeightsView {
    WeightsView {
        lambda: w.lambda(),
        columns: w
            .iter()
            .map(|(key, col)| WeightColumn {
                point: point_of(key.point),
                policy: key.policy.0,
                next_index: key.next_index,
                weights: col.iter().map(|&(m, v)| (m.0, v)).collect(),
            })
            .collect(),
    }
}

/// Projects the controller's state (and optionally an LP solution and
/// runtime options) into the verifier's neutral [`PlanView`].
pub fn plan_view(
    controller: &Controller,
    weights: Option<&SteeringWeights>,
    options: Option<&EnforcementOptions>,
) -> PlanView {
    let deployment = controller.deployment();
    let addr_plan = controller.addr_plan();
    let assignments = controller.assignments();

    let middleboxes: Vec<MboxView> = deployment
        .iter()
        .map(|(id, spec)| MboxView {
            functions: spec.functions.iter().copied().collect(),
            router: spec.router.index(),
            capacity: spec.capacity,
            available: !deployment.is_failed(id),
            addr: preassigned_device_addr(id.index()),
        })
        .collect();

    let policies: Vec<ChainView> = controller
        .policies()
        .iter()
        .map(|(id, p)| ChainView {
            policy: id.0,
            chain: p.actions.functions().to_vec(),
        })
        .collect();

    // Functions any chain references, first-use order.
    let mut used = Vec::new();
    for p in &policies {
        for &f in &p.chain {
            if !used.contains(&f) {
                used.push(f);
            }
        }
    }
    let k = used
        .iter()
        .map(|&f| (f, controller.k_config().k_for(f)))
        .collect();

    let mut candidates = Vec::new();
    let mut push_sets = |point: SteerPoint| {
        for &f in &used {
            // A middlebox implementing f applies it locally; it has no
            // set for f by construction and the verifier knows not to
            // expect one.
            if let SteerPoint::Middlebox(m) = point {
                if deployment.spec(m).implements(f) {
                    continue;
                }
            }
            candidates.push(CandidateSet {
                point: point_of(point),
                function: f,
                members: assignments
                    .candidates(point, f)
                    .iter()
                    .map(|m| m.0)
                    .collect(),
            });
        }
    };
    for stub in addr_plan.stubs() {
        push_sets(SteerPoint::Proxy(stub));
    }
    for g in 0..controller.plan().gateways().len() as u32 {
        push_sets(SteerPoint::Gateway(g));
    }
    for (id, _) in deployment.iter() {
        push_sets(SteerPoint::Middlebox(id));
    }

    PlanView {
        node_count: controller.plan().topology().node_count(),
        stub_subnets: addr_plan.stubs().map(|s| addr_plan.subnet(s)).collect(),
        gateway_count: controller.plan().gateways().len(),
        middleboxes,
        policies,
        k,
        candidates,
        weights: weights.map(weights_view),
        options: options.map(|o| OptionsView {
            flow_ttl: o.flow_ttl,
            label_ttl: o.label_ttl,
            mtu: o.mtu,
        }),
    }
}

/// Structural verification of a controller's plan (no weights, no
/// runtime options): what [`Controller::new`] fail-fasts on.
///
/// Uses [`sdm_verify::verify_plan_routed`] with the controller's routing
/// tables so the V005 steering-loop pass walks the *routed* realization
/// of every steering edge — the same next-hop view the reach tier
/// consumes — instead of trusting the declared tunnel edges alone.
pub fn verify_controller(controller: &Controller) -> VerifyReport {
    sdm_verify::verify_plan_routed(&plan_view(controller, None, None), controller.routes())
}

/// Full pre-run verification: structure plus the LP solution and the
/// runtime options an enforcement run was handed. What
/// [`Controller::run_sharded`] fail-fasts on. Routed like
/// [`verify_controller`].
pub fn verify_enforcement(
    controller: &Controller,
    weights: Option<&SteeringWeights>,
    options: &EnforcementOptions,
) -> VerifyReport {
    sdm_verify::verify_plan_routed(
        &plan_view(controller, weights, Some(options)),
        controller.routes(),
    )
}
