//! Building the load-balancing linear programs of §III.C and extracting
//! steering weights from their solutions.
//!
//! Two formulations are implemented:
//!
//! * [`build_reduced`] — the paper's Eq. (2): aggregate per-(function,
//!   policy) variables `t_{e,p}(x, y)`. Two *exact* size reductions are
//!   applied (documented in DESIGN.md): sources with identical candidate
//!   sets are merged (their first-hop constraints sum, and the optimum
//!   splits back proportionally to `T_{s,p}`), and the per-destination
//!   variables `t_p(x, d)` are aggregated to `t_p(x)` (recoverable as
//!   `t_p(x) · T_{d,p} / T_p`).
//! * [`build_full`] — the paper's Eq. (1): one commodity per (source,
//!   destination, policy) triple with variables `t_{s,d,p}(x, y)`. Used in
//!   the formulation ablation; both reach the same optimal λ, Eq. (2) with
//!   far fewer variables.
//!
//! Instead of the paper's indicator notation (`I_p(e,e')`, `J_p(e)`,
//! `J'_p(e)`), the builder walks each policy's action list by *stage
//! index*, which handles repeated functions in a chain unambiguously.

use sdm_util::FxHashMap;
use std::fmt;

use sdm_lp::{Basis, LinearProgram, Relation, SolveError, VarId};
use sdm_netsim::StubId;
use sdm_policy::{NetworkFunction, PolicyId, PolicySet};

use crate::deployment::{Deployment, MiddleboxId};
use crate::measure::TrafficMatrix;
use crate::measure::DestKey;
use crate::steer::{Assignments, CommodityKey, SteerPoint, SteeringWeights, WeightKey};

/// Error raised while building or solving a load-balancing LP.
#[derive(Debug, Clone, PartialEq)]
pub enum LbError {
    /// A policy's action list names a function no deployed middlebox
    /// offers; enforcement is impossible.
    MissingFunction(NetworkFunction, PolicyId),
    /// The LP solver failed (e.g. infeasible under a λ cap).
    Lp(SolveError),
}

impl fmt::Display for LbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LbError::MissingFunction(e, p) => {
                write!(f, "no middlebox offers function {e} required by policy {p}")
            }
            LbError::Lp(e) => write!(f, "load-balancing LP failed: {e}"),
        }
    }
}

impl std::error::Error for LbError {}

impl From<SolveError> for LbError {
    fn from(e: SolveError) -> Self {
        LbError::Lp(e)
    }
}

/// Options controlling LP construction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub struct LbOptions {
    /// If true, adds the paper's `λ ≤ 1` constraint, making the program
    /// infeasible when demand cannot fit within capacities (a
    /// dependability check). If false (default), λ is unconstrained and
    /// simply minimized.
    pub cap_lambda: bool,
}


/// Diagnostics of one LP build + solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LbReport {
    /// Optimal maximum load factor λ.
    pub lambda: f64,
    /// Decision variables in the program.
    pub variables: usize,
    /// Constraints in the program.
    pub constraints: usize,
    /// Simplex pivots spent.
    pub iterations: u64,
    /// `true` when both solves of the reduced formulation re-used a
    /// warm-start basis from a [`LbWarmCache`] (the online epoch loop);
    /// `false` on cold solves and for the full formulation.
    pub warm: bool,
}

/// Warm-start cache for the online re-steer loop: the optimal bases of
/// the two solves inside [`build_reduced_with_cache`] (the min-λ pass and
/// the lexicographic refinement pass). As long as the epoch's traffic
/// matrix keeps the same support (cells, sources, candidate sets), the LP
/// shape is unchanged and the cached bases let the simplex re-optimize in
/// a handful of pivots; any shape change is detected by the basis
/// fingerprint and silently falls back to a cold solve.
#[derive(Debug, Clone, Default)]
pub struct LbWarmCache {
    lambda_basis: Option<Basis>,
    refine_basis: Option<Basis>,
}

impl LbWarmCache {
    /// An empty cache; the first solve through it is cold and populates it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Internal: one enforcement stage of a policy — the boxes offering the
/// stage function, and per box the candidate successors.
struct Stage {
    function: NetworkFunction,
    boxes: Vec<MiddleboxId>,
}

fn stages_for(
    policy: PolicyId,
    functions: &[NetworkFunction],
    deployment: &Deployment,
) -> Result<Vec<Stage>, LbError> {
    functions
        .iter()
        .map(|&e| {
            let boxes = deployment.offering(e);
            if boxes.is_empty() {
                Err(LbError::MissingFunction(e, policy))
            } else {
                Ok(Stage { function: e, boxes })
            }
        })
        .collect()
}

/// Successor candidates of box `x` for next-stage function `e`: if `x`
/// itself offers `e` it applies it locally (self-arc), otherwise the
/// controller-assigned `M_x^e`.
fn successors(
    x: MiddleboxId,
    e: NetworkFunction,
    deployment: &Deployment,
    assignments: &Assignments,
) -> Vec<MiddleboxId> {
    if deployment.spec(x).implements(e) {
        vec![x]
    } else {
        assignments
            .candidates(SteerPoint::Middlebox(x), e)
            .to_vec()
    }
}

/// Builds and solves the reduced formulation (Eq. 2), returning the
/// steering weights `t_{e,p}(x, y)` and a diagnostics report.
///
/// # Errors
///
/// [`LbError::MissingFunction`] if a policy requires an un-deployed
/// function; [`LbError::Lp`] on solver failure.
pub fn build_reduced(
    deployment: &Deployment,
    assignments: &Assignments,
    policies: &PolicySet,
    traffic: &TrafficMatrix,
    options: LbOptions,
) -> Result<(SteeringWeights, LbReport), LbError> {
    build_reduced_with_cache(deployment, assignments, policies, traffic, options, None)
}

/// [`build_reduced`] with an optional warm-start cache: the online epoch
/// loop keeps one [`LbWarmCache`] alive across re-solves, so each epoch's
/// perturbed traffic matrix re-optimizes from the previous optimal basis
/// instead of running the full two-phase simplex. The cache is updated
/// with this solve's final bases on success.
///
/// # Errors
///
/// As [`build_reduced`]. A stale or mismatched cache never causes an
/// error — invalid bases are discarded and the solve falls back to cold.
pub fn build_reduced_with_cache(
    deployment: &Deployment,
    assignments: &Assignments,
    policies: &PolicySet,
    traffic: &TrafficMatrix,
    options: LbOptions,
    cache: Option<&mut LbWarmCache>,
) -> Result<(SteeringWeights, LbReport), LbError> {
    let (lambda_hint, refine_hint) = match &cache {
        Some(c) => (c.lambda_basis.clone(), c.refine_basis.clone()),
        None => (None, None),
    };

    // Phase 1: minimize the global maximum load factor λ.
    let model = assemble_reduced(deployment, assignments, policies, traffic, options, None)?;
    let vars = model.lp.num_vars();
    let cons = model.lp.num_constraints();
    let ws1 = model.lp.solve_warm(lambda_hint.as_ref())?;
    let lambda_star = ws1.solution.value(model.lambda);

    // Phase 2 (lexicographic refinement): pin λ at its optimum and minimize
    // the sum of per-function-type maximum load factors. A pure min-λ LP
    // has degenerate optima that leave non-bottleneck types arbitrarily
    // unbalanced; the paper's Table III shows *every* type balanced under
    // LB, which this second pass reproduces without disturbing λ.
    let bound = lambda_star * (1.0 + 1e-9) + 1e-6;
    let model = assemble_reduced(
        deployment,
        assignments,
        policies,
        traffic,
        options,
        Some(bound),
    )?;
    let ws2 = model.lp.solve_warm(refine_hint.as_ref())?;

    if let Some(c) = cache {
        c.lambda_basis = Some(ws1.basis);
        c.refine_basis = Some(ws2.basis);
    }

    let mut weights = SteeringWeights::new(lambda_star);
    extract_weights(&model.all_vars, |v| ws2.solution.value(v), &mut weights);
    Ok((
        weights,
        LbReport {
            lambda: lambda_star,
            variables: vars,
            constraints: cons,
            iterations: ws1.solution.iterations + ws2.solution.iterations,
            warm: ws1.warm_used && ws2.warm_used,
        },
    ))
}

/// One source group of the reduced model: the stubs sharing a candidate
/// set, each with its share of the group volume, plus the per-candidate
/// first-hop variable.
type FirstHopGroup = (Vec<(StubId, f64)>, Vec<MiddleboxId>, Vec<VarId>);

/// Bookkeeping for weight extraction after solving.
struct PolicyVars {
    policy: PolicyId,
    first_hop: Vec<FirstHopGroup>,
    /// transition vars [stage i][x][y] as flat entries
    transitions: Vec<(usize, MiddleboxId, MiddleboxId, VarId)>,
}

struct ReducedModel {
    lp: LinearProgram,
    lambda: VarId,
    all_vars: Vec<PolicyVars>,
}

fn extract_weights(
    all_vars: &[PolicyVars],
    value: impl Fn(VarId) -> f64,
    weights: &mut SteeringWeights,
) {
    for pv in all_vars {
        for (members, cands, vars) in &pv.first_hop {
            let w: Vec<(MiddleboxId, f64)> = cands
                .iter()
                .zip(vars)
                .map(|(&y, &v)| (y, value(v)))
                .collect();
            // The group optimum splits back proportionally to each
            // member's T_{s,p} (the exactness argument of the source
            // reduction); installing the unscaled group vector on every
            // member would multiply the group's volume by its member count.
            for &(s, share) in members {
                weights.set(
                    WeightKey {
                        point: SteerPoint::Proxy(s),
                        policy: pv.policy,
                        next_index: 0,
                    },
                    w.iter().map(|&(y, v)| (y, v * share)).collect(),
                );
            }
        }
        // group transitions by (stage, from)
        let mut by_from: FxHashMap<(usize, MiddleboxId), Vec<(MiddleboxId, f64)>> =
            FxHashMap::default();
        for &(i, x, y, v) in &pv.transitions {
            if x == y {
                continue; // local application, no steering decision
            }
            by_from.entry((i, x)).or_default().push((y, value(v)));
        }
        for ((i, x), w) in by_from {
            weights.set(
                WeightKey {
                    point: SteerPoint::Middlebox(x),
                    policy: pv.policy,
                    next_index: (i + 1) as u16,
                },
                w,
            );
        }
    }
}

/// Assembles the reduced LP. With `lambda_bound = None` the objective is
/// `min λ`; with `Some(bound)` the constraint `λ ≤ bound` is added and the
/// objective becomes the sum of per-function maximum load factors `μ_e`.
fn assemble_reduced(
    deployment: &Deployment,
    assignments: &Assignments,
    policies: &PolicySet,
    traffic: &TrafficMatrix,
    options: LbOptions,
    lambda_bound: Option<f64>,
) -> Result<ReducedModel, LbError> {
    let mut lp = LinearProgram::new();
    let lambda_obj = if lambda_bound.is_none() { 1.0 } else { 0.0 };
    let lambda = lp.add_var("lambda", lambda_obj);

    // capacity_terms[x] accumulates the inflow expression of middlebox x
    let mut capacity_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); deployment.len()];

    let mut all_vars: Vec<PolicyVars> = Vec::new();

    for p in traffic.policies() {
        let Some(policy) = policies.get(p) else {
            continue;
        };
        if policy.actions.is_permit() {
            continue;
        }
        let t_p = traffic.total(p);
        if t_p <= 0.0 {
            continue;
        }
        let chain = policy.actions.functions().to_vec();
        let stages = stages_for(p, &chain, deployment)?;
        let k = stages.len();

        // --- source grouping (exact reduction) ---
        // BTreeMap: deterministic variable order => deterministic optimum.
        // Value: the member stubs with their T_{s,p}, and the group total.
        type Group = (Vec<(StubId, f64)>, f64);
        let mut groups: std::collections::BTreeMap<Vec<MiddleboxId>, Group> = Default::default();
        for s in traffic.sources_for(p) {
            let t_sp = traffic.from_source(s, p);
            if t_sp <= 0.0 {
                continue;
            }
            let cands = assignments
                .candidates(SteerPoint::Proxy(s), stages[0].function)
                .to_vec();
            if cands.is_empty() {
                return Err(LbError::MissingFunction(stages[0].function, p));
            }
            let entry = groups.entry(cands).or_insert_with(|| (Vec::new(), 0.0));
            entry.0.push((s, t_sp));
            entry.1 += t_sp;
        }

        // --- variables ---
        let mut first_hop = Vec::new();
        for (cands, (members, volume)) in &groups {
            let vars: Vec<VarId> = cands
                .iter()
                .map(|y| lp.add_var(format!("t1[{p}][{y}]"), 0.0))
                .collect();
            // group total constraint: sum_y t1 = T_group
            lp.add_constraint(
                vars.iter().map(|&v| (v, 1.0)).collect(),
                Relation::Eq,
                *volume,
            );
            let shares: Vec<(StubId, f64)> = members
                .iter()
                .map(|&(s, t_sp)| (s, t_sp / *volume))
                .collect();
            first_hop.push((shares, cands.clone(), vars));
        }

        // transition vars t[i][x][y], i = 0-based transition from stage i to i+1
        let mut transitions: Vec<(usize, MiddleboxId, MiddleboxId, VarId)> = Vec::new();
        for i in 0..k.saturating_sub(1) {
            for &x in &stages[i].boxes {
                let succ = successors(x, stages[i + 1].function, deployment, assignments);
                if succ.is_empty() {
                    return Err(LbError::MissingFunction(stages[i + 1].function, p));
                }
                for y in succ {
                    let v = lp.add_var(format!("t[{p}][{i}][{x}->{y}]"), 0.0);
                    transitions.push((i, x, y, v));
                }
            }
        }
        // final vars tf[x] for stage K boxes
        let mut finals: FxHashMap<MiddleboxId, VarId> = FxHashMap::default();
        for &x in &stages[k - 1].boxes {
            finals.insert(x, lp.add_var(format!("tf[{p}][{x}]"), 0.0));
        }

        // --- flow conservation per stage and box ---
        for (i, stage) in stages.iter().enumerate() {
            for &y in &stage.boxes {
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                // inflow
                if i == 0 {
                    for (_, cands, vars) in &first_hop {
                        if let Some(pos) = cands.iter().position(|&c| c == y) {
                            terms.push((vars[pos], 1.0));
                        }
                    }
                } else {
                    for &(ti, _, ty, v) in transitions.iter().filter(|&&(ti, _, ty, _)| {
                        ti == i - 1 && ty == y
                    }) {
                        let _ = (ti, ty);
                        terms.push((v, 1.0));
                    }
                }
                // capacity: inflow of y counts towards its load
                capacity_terms[y.index()].extend(terms.iter().copied());
                // outflow
                if i + 1 < k {
                    for &(ti, tx, _, v) in transitions.iter().filter(|&&(ti, tx, _, _)| {
                        ti == i && tx == y
                    }) {
                        let _ = (ti, tx);
                        terms.push((v, -1.0));
                    }
                } else {
                    terms.push((finals[&y], -1.0));
                }
                lp.add_constraint(terms, Relation::Eq, 0.0);
            }
        }
        // total leaving the last stage equals T_p (anchors the chain
        // volume); iterate stage boxes for deterministic term order
        lp.add_constraint(
            stages[k - 1]
                .boxes
                .iter()
                .map(|x| (finals[x], 1.0))
                .collect(),
            Relation::Eq,
            t_p,
        );

        all_vars.push(PolicyVars {
            policy: p,
            first_hop,
            transitions,
        });
    }

    // --- capacity constraints ---
    for (x, spec) in deployment.iter() {
        let terms = &capacity_terms[x.index()];
        if terms.is_empty() {
            continue;
        }
        let mut row = terms.clone();
        row.push((lambda, -spec.capacity));
        lp.add_constraint(row, Relation::Le, 0.0);
    }
    if options.cap_lambda {
        lp.add_constraint(vec![(lambda, 1.0)], Relation::Le, 1.0);
    }

    // --- phase-2 refinement: per-function max load factors μ_e ---
    if let Some(bound) = lambda_bound {
        lp.add_constraint(vec![(lambda, 1.0)], Relation::Le, bound);
        for e in deployment.functions() {
            let boxes = deployment.offering(e);
            // skip types with no load expression at all
            if boxes
                .iter()
                .all(|x| capacity_terms[x.index()].is_empty())
            {
                continue;
            }
            let mu = lp.add_var(format!("mu[{e}]"), 1.0);
            for &x in &boxes {
                let terms = &capacity_terms[x.index()];
                if terms.is_empty() {
                    continue;
                }
                let mut row = terms.clone();
                row.push((mu, -deployment.spec(x).capacity));
                lp.add_constraint(row, Relation::Le, 0.0);
            }
        }
    }

    Ok(ReducedModel {
        lp,
        lambda,
        all_vars,
    })
}

/// Builds and solves the full formulation (Eq. 1): one commodity per
/// (source, destination, policy) triple. Returns per-point weights
/// aggregated over commodities (for apples-to-apples runtime use) plus the
/// diagnostics report. Intended for the formulation ablation; prefer
/// [`build_reduced`] in production.
///
/// # Errors
///
/// Same as [`build_reduced`].
pub fn build_full(
    deployment: &Deployment,
    assignments: &Assignments,
    policies: &PolicySet,
    traffic: &TrafficMatrix,
    options: LbOptions,
) -> Result<(SteeringWeights, LbReport), LbError> {
    let mut lp = LinearProgram::new();
    let lambda = lp.add_var("lambda", 1.0);
    let mut capacity_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); deployment.len()];

    struct CommodityVars {
        policy: PolicyId,
        source: StubId,
        dest: DestKey,
        first: Vec<(MiddleboxId, VarId)>,
        transitions: Vec<(usize, MiddleboxId, MiddleboxId, VarId)>,
    }
    let mut all: Vec<CommodityVars> = Vec::new();

    for (s, d, p, volume) in traffic.iter() {
        if volume <= 0.0 {
            continue;
        }
        let Some(policy) = policies.get(p) else {
            continue;
        };
        if policy.actions.is_permit() {
            continue;
        }
        let chain = policy.actions.functions().to_vec();
        let stages = stages_for(p, &chain, deployment)?;
        let k = stages.len();
        let _ = d; // destination is implicit: the commodity ends at d

        let cands = assignments
            .candidates(SteerPoint::Proxy(s), stages[0].function)
            .to_vec();
        if cands.is_empty() {
            return Err(LbError::MissingFunction(stages[0].function, p));
        }
        let first: Vec<(MiddleboxId, VarId)> = cands
            .iter()
            .map(|&y| (y, lp.add_var(format!("t1[{s}->{d}][{p}][{y}]"), 0.0)))
            .collect();
        lp.add_constraint(
            first.iter().map(|&(_, v)| (v, 1.0)).collect(),
            Relation::Eq,
            volume,
        );

        let mut transitions: Vec<(usize, MiddleboxId, MiddleboxId, VarId)> = Vec::new();
        for i in 0..k - 1 {
            for &x in &stages[i].boxes {
                for y in successors(x, stages[i + 1].function, deployment, assignments) {
                    let v = lp.add_var(format!("t[{s}->{d}][{p}][{i}][{x}->{y}]"), 0.0);
                    transitions.push((i, x, y, v));
                }
            }
        }
        let mut finals: FxHashMap<MiddleboxId, VarId> = FxHashMap::default();
        for &x in &stages[k - 1].boxes {
            finals.insert(x, lp.add_var(format!("tf[{s}->{d}][{p}][{x}]"), 0.0));
        }

        for (i, stage) in stages.iter().enumerate() {
            for &y in &stage.boxes {
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                if i == 0 {
                    if let Some(&(_, v)) = first.iter().find(|&&(c, _)| c == y) {
                        terms.push((v, 1.0));
                    }
                } else {
                    for &(_, _, _, v) in transitions
                        .iter()
                        .filter(|&&(ti, _, ty, _)| ti == i - 1 && ty == y)
                    {
                        terms.push((v, 1.0));
                    }
                }
                capacity_terms[y.index()].extend(terms.iter().copied());
                if i + 1 < k {
                    for &(_, _, _, v) in transitions
                        .iter()
                        .filter(|&&(ti, tx, _, _)| ti == i && tx == y)
                    {
                        terms.push((v, -1.0));
                    }
                } else {
                    terms.push((finals[&y], -1.0));
                }
                lp.add_constraint(terms, Relation::Eq, 0.0);
            }
        }
        lp.add_constraint(
            stages[k - 1]
                .boxes
                .iter()
                .map(|x| (finals[x], 1.0))
                .collect(),
            Relation::Eq,
            volume,
        );

        all.push(CommodityVars {
            policy: p,
            source: s,
            dest: d,
            first,
            transitions,
        });
    }

    for (x, spec) in deployment.iter() {
        let terms = &capacity_terms[x.index()];
        if terms.is_empty() {
            continue;
        }
        let mut row = terms.clone();
        row.push((lambda, -spec.capacity));
        lp.add_constraint(row, Relation::Le, 0.0);
    }
    if options.cap_lambda {
        lp.add_constraint(vec![(lambda, 1.0)], Relation::Le, 1.0);
    }

    let vars = lp.num_vars();
    let cons = lp.num_constraints();
    let sol = lp.solve()?;

    // Aggregate commodity weights per (point, policy, next_index) for the
    // coarse fallback, and install exact per-commodity weights under
    // `CommodityKey`s (Eq. 1's t_{s,d,p}(x, y)).
    let mut weights = SteeringWeights::new(sol.value(lambda));
    let mut acc: FxHashMap<WeightKey, FxHashMap<MiddleboxId, f64>> = FxHashMap::default();
    let mut fine: FxHashMap<CommodityKey, FxHashMap<MiddleboxId, f64>> =
        FxHashMap::default();
    for cv in &all {
        for &(y, v) in &cv.first {
            let key = WeightKey {
                point: SteerPoint::Proxy(cv.source),
                policy: cv.policy,
                next_index: 0,
            };
            *acc.entry(key).or_default().entry(y).or_insert(0.0) += sol.value(v);
            *fine
                .entry(CommodityKey {
                    key,
                    src: cv.source,
                    dst: cv.dest,
                })
                .or_default()
                .entry(y)
                .or_insert(0.0) += sol.value(v);
        }
        for &(i, x, y, v) in &cv.transitions {
            if x == y {
                continue;
            }
            let key = WeightKey {
                point: SteerPoint::Middlebox(x),
                policy: cv.policy,
                next_index: (i + 1) as u16,
            };
            *acc.entry(key).or_default().entry(y).or_insert(0.0) += sol.value(v);
            *fine
                .entry(CommodityKey {
                    key,
                    src: cv.source,
                    dst: cv.dest,
                })
                .or_default()
                .entry(y)
                .or_insert(0.0) += sol.value(v);
        }
    }
    for (key, per_box) in acc {
        let mut w: Vec<(MiddleboxId, f64)> = per_box.into_iter().collect();
        w.sort_by_key(|&(m, _)| m);
        weights.set(key, w);
    }
    for (key, per_box) in fine {
        let mut w: Vec<(MiddleboxId, f64)> = per_box.into_iter().collect();
        w.sort_by_key(|&(m, _)| m);
        weights.set_fine(key, w);
    }

    Ok((
        weights,
        LbReport {
            lambda: sol.value(lambda),
            variables: vars,
            constraints: cons,
            iterations: sol.iterations,
            warm: false,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::MiddleboxSpec;
    use crate::measure::DestKey;
    use crate::steer::KConfig;
    use sdm_policy::{ActionList, NetworkFunction::*, Policy, TrafficDescriptor};
    use sdm_topology::campus::campus;

    /// Two FW boxes, one IDS; one policy FW -> IDS; traffic from 2 stubs.
    fn tiny_world() -> (
        sdm_topology::NetworkPlan,
        Deployment,
        Assignments,
        PolicySet,
        TrafficMatrix,
    ) {
        let plan = campus(1);
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[8], 1.0));
        dep.add(MiddleboxSpec::new(Ids, plan.cores()[4], 1.0));
        let routes = plan.topology().routing_tables();
        let asg = Assignments::compute(&dep, &routes, plan.edges(), &KConfig::uniform(2));
        let mut pol = PolicySet::new();
        pol.push(Policy::new(
            TrafficDescriptor::new().dst_port(80),
            ActionList::chain([Firewall, Ids]),
        ));
        let mut tm = TrafficMatrix::new();
        tm.record(StubId(0), DestKey::Stub(StubId(5)), PolicyId(0), 600.0);
        tm.record(StubId(1), DestKey::Stub(StubId(6)), PolicyId(0), 400.0);
        (plan, dep, asg, pol, tm)
    }

    #[test]
    fn reduced_balances_firewalls_perfectly() {
        let (_plan, dep, asg, pol, tm) = tiny_world();
        let (w, report) =
            build_reduced(&dep, &asg, &pol, &tm, LbOptions::default()).unwrap();
        // 1000 units over two equal FWs: optimum max load = 500 each; the
        // single IDS must carry all 1000 -> lambda = 1000.
        assert!((report.lambda - 1000.0).abs() < 1e-6, "{}", report.lambda);
        assert_eq!(w.lambda(), report.lambda);
        // proxies got weights
        let key = WeightKey {
            point: SteerPoint::Proxy(StubId(0)),
            policy: PolicyId(0),
            next_index: 0,
        };
        let ws = w.get(&key).expect("proxy weights installed");
        // weights are per source-group volumes: non-negative, positive total
        let total: f64 = ws.iter().map(|&(_, v)| v).sum();
        assert!(total > 0.0);
        assert!(ws.iter().all(|&(_, v)| v >= -1e-9));
        // phase-2 refinement balances the two equal firewalls evenly in
        // aggregate (per-proxy splits may differ)
        let mut agg = std::collections::HashMap::new();
        for stub in [StubId(0), StubId(1)] {
            let key = WeightKey {
                point: SteerPoint::Proxy(stub),
                policy: PolicyId(0),
                next_index: 0,
            };
            for &(m, v) in w.get(&key).unwrap() {
                *agg.entry(m).or_insert(0.0) += v;
            }
        }
        for (&m, &v) in &agg {
            assert!((v - 500.0).abs() < 1e-6, "box {m} carries {v}");
        }
    }

    #[test]
    fn warm_cache_reuses_basis_on_perturbed_traffic() {
        let (_plan, dep, asg, pol, tm) = tiny_world();
        let mut cache = LbWarmCache::new();
        let (_, cold) = build_reduced_with_cache(
            &dep, &asg, &pol, &tm, LbOptions::default(), Some(&mut cache),
        )
        .unwrap();
        assert!(!cold.warm, "first solve through an empty cache is cold");

        // Perturb volumes on the *existing* support: same cells, same
        // sources, same candidate sets -> same LP shape.
        let mut tm2 = TrafficMatrix::new();
        tm2.record(StubId(0), DestKey::Stub(StubId(5)), PolicyId(0), 640.0);
        tm2.record(StubId(1), DestKey::Stub(StubId(6)), PolicyId(0), 410.0);
        let (w_warm, warm) = build_reduced_with_cache(
            &dep, &asg, &pol, &tm2, LbOptions::default(), Some(&mut cache),
        )
        .unwrap();
        let (w_cold, re_cold) =
            build_reduced(&dep, &asg, &pol, &tm2, LbOptions::default()).unwrap();
        assert!(warm.warm, "same-shape perturbation must warm-start");
        assert!((warm.lambda - re_cold.lambda).abs() < 1e-6);
        assert!(
            warm.iterations < re_cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            re_cold.iterations
        );
        // The steering weights must agree with the cold solve.
        for (key, wc) in w_cold.iter() {
            let ww = w_warm.get(key).expect("same keys");
            for (&(mc, vc), &(mw, vw)) in wc.iter().zip(ww) {
                assert_eq!(mc, mw);
                assert!((vc - vw).abs() < 1e-6, "{key:?}: {vc} vs {vw}");
            }
        }
    }

    #[test]
    fn warm_cache_falls_back_cold_when_support_changes() {
        let (_plan, dep, asg, pol, tm) = tiny_world();
        let mut cache = LbWarmCache::new();
        build_reduced_with_cache(&dep, &asg, &pol, &tm, LbOptions::default(), Some(&mut cache))
            .unwrap();
        // A new source appears: the LP gains variables/constraints, the
        // basis fingerprint mismatches, and the solve must fall back.
        let mut tm2 = tm.clone();
        tm2.record(StubId(2), DestKey::Stub(StubId(7)), PolicyId(0), 300.0);
        let (_, report) = build_reduced_with_cache(
            &dep, &asg, &pol, &tm2, LbOptions::default(), Some(&mut cache),
        )
        .unwrap();
        assert!(!report.warm, "support change must invalidate the basis");
        let (_, cold) = build_reduced(&dep, &asg, &pol, &tm2, LbOptions::default()).unwrap();
        assert!((report.lambda - cold.lambda).abs() < 1e-9);
    }

    #[test]
    fn reduced_and_full_reach_same_lambda() {
        let (_plan, dep, asg, pol, tm) = tiny_world();
        let (_, r2) = build_reduced(&dep, &asg, &pol, &tm, LbOptions::default()).unwrap();
        let (_, r1) = build_full(&dep, &asg, &pol, &tm, LbOptions::default()).unwrap();
        assert!(
            (r1.lambda - r2.lambda).abs() < 1e-5,
            "eq1={} eq2={}",
            r1.lambda,
            r2.lambda
        );
        // the full formulation uses at least as many variables
        assert!(r1.variables >= r2.variables);
    }

    #[test]
    fn capacity_weighting_shifts_load() {
        // FW0 has 3x capacity of FW1: optimum puts 3/4 of traffic on FW0.
        let plan = campus(1);
        let mut dep = Deployment::new();
        let f0 = dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 3.0));
        let _f1 = dep.add(MiddleboxSpec::new(Firewall, plan.cores()[8], 1.0));
        let routes = plan.topology().routing_tables();
        let asg = Assignments::compute(&dep, &routes, plan.edges(), &KConfig::uniform(2));
        let mut pol = PolicySet::new();
        pol.push(Policy::new(
            TrafficDescriptor::new().dst_port(80),
            ActionList::chain([Firewall]),
        ));
        let mut tm = TrafficMatrix::new();
        tm.record(StubId(0), DestKey::External, PolicyId(0), 800.0);
        let (w, report) = build_reduced(&dep, &asg, &pol, &tm, LbOptions::default()).unwrap();
        assert!((report.lambda - 200.0).abs() < 1e-6, "{}", report.lambda);
        let key = WeightKey {
            point: SteerPoint::Proxy(StubId(0)),
            policy: PolicyId(0),
            next_index: 0,
        };
        let ws = w.get(&key).unwrap();
        let w0 = ws.iter().find(|&&(m, _)| m == f0).unwrap().1;
        assert!((w0 - 600.0).abs() < 1e-6, "w0={w0}");
    }

    #[test]
    fn full_formulation_installs_fine_weights() {
        let (_plan, dep, asg, pol, tm) = tiny_world();
        let (w, _) = build_full(&dep, &asg, &pol, &tm, LbOptions::default()).unwrap();
        assert!(w.fine_len() > 0, "Eq. (1) must install per-commodity weights");
        // the fine weights for stub 0's commodity sum to its volume
        let key = WeightKey {
            point: SteerPoint::Proxy(StubId(0)),
            policy: PolicyId(0),
            next_index: 0,
        };
        let fine = w
            .get_fine(&crate::steer::CommodityKey {
                key,
                src: StubId(0),
                dst: DestKey::Stub(StubId(5)),
            })
            .expect("fine weights installed");
        let total: f64 = fine.iter().map(|&(_, v)| v).sum();
        assert!((total - 600.0).abs() < 1e-6, "total={total}");
    }

    #[test]
    fn missing_function_reported() {
        let (_plan, dep, asg, mut pol, mut tm) = tiny_world();
        pol.push(Policy::new(
            TrafficDescriptor::new().dst_port(22),
            ActionList::chain([TrafficMonitor]),
        ));
        tm.record(StubId(0), DestKey::External, PolicyId(1), 10.0);
        let err = build_reduced(&dep, &asg, &pol, &tm, LbOptions::default()).unwrap_err();
        assert_eq!(err, LbError::MissingFunction(TrafficMonitor, PolicyId(1)));
    }

    #[test]
    fn lambda_cap_triggers_infeasibility() {
        let (_plan, dep, asg, pol, tm) = tiny_world();
        // capacities are 1.0 but demand is 1000 packets: with cap it fails
        let err = build_reduced(
            &dep,
            &asg,
            &pol,
            &tm,
            LbOptions { cap_lambda: true },
        )
        .unwrap_err();
        assert_eq!(err, LbError::Lp(SolveError::Infeasible));
    }

    #[test]
    fn permit_policies_and_zero_traffic_ignored() {
        let plan = campus(1);
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
        let routes = plan.topology().routing_tables();
        let asg = Assignments::compute(&dep, &routes, plan.edges(), &KConfig::uniform(1));
        let mut pol = PolicySet::new();
        pol.push(Policy::permit(TrafficDescriptor::new()));
        let mut tm = TrafficMatrix::new();
        tm.record(StubId(0), DestKey::External, PolicyId(0), 500.0);
        let (w, report) = build_reduced(&dep, &asg, &pol, &tm, LbOptions::default()).unwrap();
        assert!(w.is_empty());
        assert_eq!(report.lambda, 0.0);
    }

    #[test]
    fn three_stage_chain_conserves_flow() {
        let plan = campus(2);
        let mut dep = Deployment::new();
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[0], 1.0));
        dep.add(MiddleboxSpec::new(Firewall, plan.cores()[1], 1.0));
        dep.add(MiddleboxSpec::new(Ids, plan.cores()[2], 1.0));
        dep.add(MiddleboxSpec::new(Ids, plan.cores()[3], 1.0));
        dep.add(MiddleboxSpec::new(WebProxy, plan.cores()[4], 1.0));
        let routes = plan.topology().routing_tables();
        let asg = Assignments::compute(&dep, &routes, plan.edges(), &KConfig::uniform(2));
        let mut pol = PolicySet::new();
        pol.push(Policy::new(
            TrafficDescriptor::new().dst_port(80),
            ActionList::chain([Firewall, Ids, WebProxy]),
        ));
        let mut tm = TrafficMatrix::new();
        for s in 0..4u32 {
            tm.record(StubId(s), DestKey::External, PolicyId(0), 250.0);
        }
        let (_, report) = build_reduced(&dep, &asg, &pol, &tm, LbOptions::default()).unwrap();
        // the single WP sees all 1000; FWs and IDSes split 500/500
        assert!((report.lambda - 1000.0).abs() < 1e-6, "{}", report.lambda);
    }
}
