//! Traffic measurement (§III.C): policy proxies measure per-policy traffic
//! volumes `T_{s,d,p}` and report them to the controller, which aggregates
//! `T_{s,p}`, `T_{d,p}` and `T_p` for the load-balancing LPs.

use std::collections::BTreeMap;
use std::fmt;

use sdm_netsim::StubId;
use sdm_policy::PolicyId;

/// A traffic destination as the measurement system sees it: another stub
/// network or somewhere outside the enterprise (beyond a gateway).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DestKey {
    /// An internal stub network.
    Stub(StubId),
    /// An external destination (reached through a gateway).
    External,
}

impl fmt::Display for DestKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DestKey::Stub(s) => write!(f, "{s}"),
            DestKey::External => f.write_str("ext"),
        }
    }
}

/// The aggregated traffic matrix: `T_{s,d,p}` in packets, with the marginal
/// sums the reduced LP formulation (Eq. 2) needs.
///
/// # Example
///
/// ```
/// use sdm_core::{TrafficMatrix, DestKey};
/// use sdm_netsim::StubId;
/// use sdm_policy::PolicyId;
///
/// let mut tm = TrafficMatrix::new();
/// tm.record(StubId(0), DestKey::Stub(StubId(1)), PolicyId(0), 100.0);
/// tm.record(StubId(2), DestKey::Stub(StubId(1)), PolicyId(0), 50.0);
/// assert_eq!(tm.total(PolicyId(0)), 150.0);
/// assert_eq!(tm.from_source(StubId(0), PolicyId(0)), 100.0);
/// assert_eq!(tm.to_dest(DestKey::Stub(StubId(1)), PolicyId(0)), 150.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrafficMatrix {
    // BTreeMap, not HashMap: `iter()` order feeds the full LP's variable
    // order (Eq. 1), so it must be deterministic across processes for the
    // simplex pivot sequence — and hence diagnostics — to reproduce.
    cells: BTreeMap<(StubId, DestKey, PolicyId), f64>,
}

impl TrafficMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `volume` packets of traffic from `s` to `d` matching `p` —
    /// what a source proxy reports.
    pub fn record(&mut self, s: StubId, d: DestKey, p: PolicyId, volume: f64) {
        if volume <= 0.0 {
            return;
        }
        *self.cells.entry((s, d, p)).or_insert(0.0) += volume;
    }

    /// Merges another matrix into this one (controller-side aggregation of
    /// per-proxy reports). Routes every cell through [`TrafficMatrix::record`],
    /// so non-positive volumes (a hand-built or corrupted report) are
    /// ignored exactly as they are on the direct recording path.
    pub fn merge(&mut self, other: &TrafficMatrix) {
        for (&(s, d, p), &v) in &other.cells {
            self.record(s, d, p, v);
        }
    }

    /// `T_{s,d,p}`.
    pub fn volume(&self, s: StubId, d: DestKey, p: PolicyId) -> f64 {
        self.cells.get(&(s, d, p)).copied().unwrap_or(0.0)
    }

    /// `T_p`: total volume matching `p`.
    pub fn total(&self, p: PolicyId) -> f64 {
        self.cells
            .iter()
            .filter(|((_, _, pp), _)| *pp == p)
            .map(|(_, v)| v)
            .sum()
    }

    /// `T_{s,p}`: volume from source `s` matching `p`.
    pub fn from_source(&self, s: StubId, p: PolicyId) -> f64 {
        self.cells
            .iter()
            .filter(|((ss, _, pp), _)| *ss == s && *pp == p)
            .map(|(_, v)| v)
            .sum()
    }

    /// `T_{d,p}`: volume towards destination `d` matching `p`.
    pub fn to_dest(&self, d: DestKey, p: PolicyId) -> f64 {
        self.cells
            .iter()
            .filter(|((_, dd, pp), _)| *dd == d && *pp == p)
            .map(|(_, v)| v)
            .sum()
    }

    /// All policies with nonzero measured traffic.
    pub fn policies(&self) -> Vec<PolicyId> {
        let mut v: Vec<PolicyId> = self.cells.keys().map(|&(_, _, p)| p).collect();
        v.sort();
        v.dedup();
        v
    }

    /// All sources with nonzero traffic for `p`, sorted.
    pub fn sources_for(&self, p: PolicyId) -> Vec<StubId> {
        let mut v: Vec<StubId> = self
            .cells
            .keys()
            .filter(|&&(_, _, pp)| pp == p)
            .map(|&(s, _, _)| s)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// All destinations with nonzero traffic for `p`.
    pub fn dests_for(&self, p: PolicyId) -> Vec<DestKey> {
        let mut v: Vec<DestKey> = self
            .cells
            .keys()
            .filter(|&&(_, _, pp)| pp == p)
            .map(|&(_, d, _)| d)
            .collect();
        v.sort_by_key(|d| match d {
            DestKey::Stub(s) => s.0 as i64,
            DestKey::External => -1,
        });
        v.dedup();
        v
    }

    /// Iterates over all `(source, dest, policy, volume)` cells.
    pub fn iter(&self) -> impl Iterator<Item = (StubId, DestKey, PolicyId, f64)> + '_ {
        self.cells.iter().map(|(&(s, d, p), &v)| (s, d, p, v))
    }

    /// Total measured volume across all policies.
    pub fn grand_total(&self) -> f64 {
        self.cells.values().sum()
    }

    /// Number of nonzero cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if nothing was measured.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> StubId {
        StubId(i)
    }
    fn p(i: u32) -> PolicyId {
        PolicyId(i)
    }

    #[test]
    fn record_and_marginals() {
        let mut tm = TrafficMatrix::new();
        tm.record(s(0), DestKey::Stub(s(1)), p(0), 10.0);
        tm.record(s(0), DestKey::Stub(s(2)), p(0), 20.0);
        tm.record(s(3), DestKey::Stub(s(1)), p(0), 5.0);
        tm.record(s(0), DestKey::External, p(1), 7.0);
        assert_eq!(tm.total(p(0)), 35.0);
        assert_eq!(tm.total(p(1)), 7.0);
        assert_eq!(tm.from_source(s(0), p(0)), 30.0);
        assert_eq!(tm.to_dest(DestKey::Stub(s(1)), p(0)), 15.0);
        assert_eq!(tm.to_dest(DestKey::External, p(1)), 7.0);
        assert_eq!(tm.volume(s(3), DestKey::Stub(s(1)), p(0)), 5.0);
        assert_eq!(tm.grand_total(), 42.0);
    }

    #[test]
    fn repeated_records_accumulate() {
        let mut tm = TrafficMatrix::new();
        for _ in 0..4 {
            tm.record(s(0), DestKey::Stub(s(1)), p(0), 2.5);
        }
        assert_eq!(tm.volume(s(0), DestKey::Stub(s(1)), p(0)), 10.0);
        assert_eq!(tm.len(), 1);
    }

    #[test]
    fn zero_and_negative_volumes_ignored() {
        let mut tm = TrafficMatrix::new();
        tm.record(s(0), DestKey::External, p(0), 0.0);
        tm.record(s(0), DestKey::External, p(0), -5.0);
        assert!(tm.is_empty());
    }

    #[test]
    fn merge_aggregates_reports() {
        let mut a = TrafficMatrix::new();
        a.record(s(0), DestKey::Stub(s(1)), p(0), 10.0);
        let mut b = TrafficMatrix::new();
        b.record(s(0), DestKey::Stub(s(1)), p(0), 5.0);
        b.record(s(2), DestKey::Stub(s(1)), p(1), 3.0);
        a.merge(&b);
        assert_eq!(a.volume(s(0), DestKey::Stub(s(1)), p(0)), 15.0);
        assert_eq!(a.total(p(1)), 3.0);
    }

    #[test]
    fn merge_ignores_non_positive_cells_like_record() {
        // Forge a report with zero/negative cells (possible only from
        // inside the module — every public ingestion path guards), and
        // check merge applies the same guard record does.
        let mut bad = TrafficMatrix::new();
        bad.cells.insert((s(0), DestKey::External, p(0)), -7.0);
        bad.cells.insert((s(1), DestKey::External, p(0)), 0.0);
        bad.cells.insert((s(2), DestKey::Stub(s(1)), p(1)), 4.0);
        let mut tm = TrafficMatrix::new();
        tm.record(s(0), DestKey::External, p(0), 10.0);
        tm.merge(&bad);
        assert_eq!(
            tm.volume(s(0), DestKey::External, p(0)),
            10.0,
            "negative merged cell must not subtract"
        );
        assert_eq!(tm.volume(s(1), DestKey::External, p(0)), 0.0);
        assert_eq!(tm.len(), 2, "zero/negative cells must not materialize");
        assert_eq!(tm.volume(s(2), DestKey::Stub(s(1)), p(1)), 4.0);
    }

    #[test]
    fn enumerations_sorted_and_deduped() {
        let mut tm = TrafficMatrix::new();
        tm.record(s(5), DestKey::Stub(s(1)), p(2), 1.0);
        tm.record(s(3), DestKey::External, p(2), 1.0);
        tm.record(s(3), DestKey::Stub(s(1)), p(0), 1.0);
        assert_eq!(tm.policies(), vec![p(0), p(2)]);
        assert_eq!(tm.sources_for(p(2)), vec![s(3), s(5)]);
        assert_eq!(
            tm.dests_for(p(2)),
            vec![DestKey::External, DestKey::Stub(s(1))]
        );
    }
}
