//! Property tests for the core crate's steering primitives: selection
//! stays within candidates, respects weights proportionally, and the LP
//! weight extraction conserves flow.

use sdm_core::{select_next, MiddleboxId, Strategy as Steering};
use sdm_netsim::{FiveTuple, Ipv4Addr, Protocol};
use sdm_util::prop::{check, Config};
use sdm_util::rng::StdRng;
use sdm_util::{prop_assert, prop_assert_eq};

fn gen_flow(rng: &mut StdRng) -> FiveTuple {
    FiveTuple {
        src: Ipv4Addr(rng.next_u32()),
        dst: Ipv4Addr(rng.next_u32()),
        src_port: rng.gen_range(0u16..=u16::MAX - 1),
        dst_port: rng.gen_range(0u16..=u16::MAX - 1),
        proto: Protocol::Tcp,
    }
}

fn mids(n: usize) -> Vec<MiddleboxId> {
    (0..n as u32).map(MiddleboxId).collect()
}

/// Whatever the strategy and weights, the selection is one of the
/// candidates (or None only for an empty candidate set).
#[test]
fn selection_stays_within_candidates() {
    check(
        "selection_stays_within_candidates",
        &Config::with_cases(128),
        |rng: &mut StdRng| {
            let n = rng.gen_range(0usize..6);
            let n_weights = rng.gen_range(0usize..6);
            let raw_weights: Vec<f64> =
                (0..n_weights).map(|_| rng.gen_range(0.0..100.0)).collect();
            (n, rng.next_u64(), rng.next_u64(), raw_weights)
        },
        |&(n, salt, flow_seed, ref raw_weights)| {
            let ft = gen_flow(&mut StdRng::seed_from_u64(flow_seed));
            let candidates = mids(n);
            let weights: Vec<(MiddleboxId, f64)> = candidates
                .iter()
                .zip(raw_weights.iter())
                .map(|(&m, &w)| (m, w))
                .collect();
            for strategy in [
                Steering::HotPotato,
                Steering::Random { salt },
                Steering::LoadBalanced,
            ] {
                let got = select_next(strategy, &candidates, Some(&weights), &ft);
                match got {
                    None => prop_assert!(candidates.is_empty()),
                    Some(m) => prop_assert!(candidates.contains(&m)),
                }
            }
            Ok(())
        },
    );
}

/// Selection is a pure function of (strategy, candidates, weights,
/// flow): repeated calls agree — the property that keeps a flow's path
/// stable across proxies, middleboxes and retransmissions.
#[test]
fn selection_is_deterministic() {
    check(
        "selection_is_deterministic",
        &Config::with_cases(128),
        |rng: &mut StdRng| (rng.gen_range(1usize..6), rng.next_u64(), rng.next_u64()),
        |&(n, salt, flow_seed)| {
            let n = n.max(1);
            let ft = gen_flow(&mut StdRng::seed_from_u64(flow_seed));
            let candidates = mids(n);
            for strategy in [
                Steering::HotPotato,
                Steering::Random { salt },
                Steering::LoadBalanced,
            ] {
                let a = select_next(strategy, &candidates, None, &ft);
                for _ in 0..5 {
                    prop_assert_eq!(a, select_next(strategy, &candidates, None, &ft));
                }
            }
            Ok(())
        },
    );
}

/// Load-balanced selection frequencies converge to the weight
/// proportions over many flows (10% tolerance at 4000 samples).
#[test]
fn lb_frequencies_match_weights() {
    check(
        "lb_frequencies_match_weights",
        &Config::with_cases(128),
        |rng: &mut StdRng| {
            [
                rng.gen_range(1.0..10.0),
                rng.gen_range(1.0..10.0),
                rng.gen_range(1.0..10.0),
            ]
        },
        |&[w0, w1, w2]| {
            let (w0, w1, w2) = (w0.max(1.0), w1.max(1.0), w2.max(1.0));
            let candidates = mids(3);
            let weights = vec![
                (MiddleboxId(0), w0),
                (MiddleboxId(1), w1),
                (MiddleboxId(2), w2),
            ];
            let total = w0 + w1 + w2;
            let mut counts = [0u32; 3];
            let n = 4000;
            for i in 0..n {
                let ft = FiveTuple {
                    src: Ipv4Addr(0x0a000000 + i),
                    dst: Ipv4Addr(0x0a100000),
                    src_port: (i % 50000) as u16,
                    dst_port: 80,
                    proto: Protocol::Tcp,
                };
                let m = select_next(Steering::LoadBalanced, &candidates, Some(&weights), &ft)
                    .unwrap();
                counts[m.index()] += 1;
            }
            for (i, &w) in [w0, w1, w2].iter().enumerate() {
                let expect = w / total;
                let got = counts[i] as f64 / n as f64;
                prop_assert!(
                    (got - expect).abs() < 0.10,
                    "candidate {}: expected {:.3}, got {:.3}",
                    i,
                    expect,
                    got
                );
            }
            Ok(())
        },
    );
}

/// A candidate with zero (or negative) weight is never chosen by the LB
/// strategy — at any position, including *last*, where the old fallback
/// (`w.last()`) could return it for flows hashing onto the bucket edge.
#[test]
fn zero_weight_never_selected() {
    check(
        "zero_weight_never_selected",
        &Config::with_cases(128),
        |rng: &mut StdRng| {
            let n = rng.gen_range(2usize..6);
            let weights: Vec<f64> = (0..n)
                .map(|_| {
                    if rng.gen_range(0u32..3) == 0 {
                        // dead candidate: zero or negative weight
                        -rng.gen_range(0.0..2.0)
                    } else {
                        rng.gen_range(0.5..10.0)
                    }
                })
                .collect();
            (weights, rng.gen_range(1u32..400))
        },
        |&(ref raw, flows)| {
            let mut weights: Vec<(MiddleboxId, f64)> = raw
                .iter()
                .enumerate()
                .map(|(i, &w)| (MiddleboxId(i as u32), w))
                .collect();
            // Force the worst case: a dead candidate in the last slot.
            weights.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let candidates = mids(weights.len());
            let any_live = weights.iter().any(|&(_, w)| w > 0.0);
            for i in 0..flows.max(1) {
                let ft = FiveTuple {
                    src: Ipv4Addr(i),
                    dst: Ipv4Addr(99),
                    src_port: (i % 60000) as u16,
                    dst_port: 80,
                    proto: Protocol::Tcp,
                };
                let got =
                    select_next(Steering::LoadBalanced, &candidates, Some(&weights), &ft)
                        .unwrap();
                if any_live {
                    let w = weights.iter().find(|&&(m, _)| m == got).unwrap().1;
                    prop_assert!(
                        w > 0.0,
                        "dead candidate {:?} selected (weight {})",
                        got,
                        w
                    );
                }
            }
            Ok(())
        },
    );
}

/// Frequencies still converge to the LP proportions when a zero-weight
/// candidate sits in the last slot (the fallback position).
#[test]
fn lb_frequencies_with_trailing_zero_weight() {
    check(
        "lb_frequencies_with_trailing_zero_weight",
        &Config::with_cases(64),
        |rng: &mut StdRng| [rng.gen_range(1.0..10.0), rng.gen_range(1.0..10.0)],
        |&[w0, w1]| {
            let (w0, w1) = (w0.max(1.0), w1.max(1.0));
            let candidates = mids(3);
            let weights = vec![
                (MiddleboxId(0), w0),
                (MiddleboxId(1), w1),
                (MiddleboxId(2), 0.0), // dead, last
            ];
            let total = w0 + w1;
            let mut counts = [0u32; 3];
            let n = 4000;
            for i in 0..n {
                let ft = FiveTuple {
                    src: Ipv4Addr(0x0a000000 + i),
                    dst: Ipv4Addr(0x0a100000),
                    src_port: (i % 50000) as u16,
                    dst_port: 80,
                    proto: Protocol::Tcp,
                };
                let m = select_next(Steering::LoadBalanced, &candidates, Some(&weights), &ft)
                    .unwrap();
                counts[m.index()] += 1;
            }
            prop_assert_eq!(counts[2], 0);
            for (i, &w) in [w0, w1].iter().enumerate() {
                let expect = w / total;
                let got = counts[i] as f64 / n as f64;
                prop_assert!(
                    (got - expect).abs() < 0.10,
                    "candidate {}: expected {:.3}, got {:.3}",
                    i,
                    expect,
                    got
                );
            }
            Ok(())
        },
    );
}
