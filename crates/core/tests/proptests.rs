//! Property tests for the core crate's steering primitives: selection
//! stays within candidates, respects weights proportionally, and the LP
//! weight extraction conserves flow.

use proptest::prelude::*;

use sdm_core::{select_next, MiddleboxId, Strategy as Steering};
use sdm_netsim::{FiveTuple, Ipv4Addr, Protocol};

fn arb_flow() -> impl Strategy<Value = FiveTuple> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>()).prop_map(|(s, d, sp, dp)| FiveTuple {
        src: Ipv4Addr(s),
        dst: Ipv4Addr(d),
        src_port: sp,
        dst_port: dp,
        proto: Protocol::Tcp,
    })
}

fn mids(n: usize) -> Vec<MiddleboxId> {
    (0..n as u32).map(MiddleboxId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the strategy and weights, the selection is one of the
    /// candidates (or None only for an empty candidate set).
    #[test]
    fn selection_stays_within_candidates(
        n in 0usize..6,
        ft in arb_flow(),
        salt in any::<u64>(),
        raw_weights in proptest::collection::vec(0.0f64..100.0, 0..6),
    ) {
        let candidates = mids(n);
        let weights: Vec<(MiddleboxId, f64)> = candidates
            .iter()
            .zip(raw_weights.iter())
            .map(|(&m, &w)| (m, w))
            .collect();
        for strategy in [
            Steering::HotPotato,
            Steering::Random { salt },
            Steering::LoadBalanced,
        ] {
            let got = select_next(strategy, &candidates, Some(&weights), &ft);
            match got {
                None => prop_assert!(candidates.is_empty()),
                Some(m) => prop_assert!(candidates.contains(&m)),
            }
        }
    }

    /// Selection is a pure function of (strategy, candidates, weights,
    /// flow): repeated calls agree — the property that keeps a flow's path
    /// stable across proxies, middleboxes and retransmissions.
    #[test]
    fn selection_is_deterministic(
        n in 1usize..6,
        ft in arb_flow(),
        salt in any::<u64>(),
    ) {
        let candidates = mids(n);
        for strategy in [
            Steering::HotPotato,
            Steering::Random { salt },
            Steering::LoadBalanced,
        ] {
            let a = select_next(strategy, &candidates, None, &ft);
            for _ in 0..5 {
                prop_assert_eq!(a, select_next(strategy, &candidates, None, &ft));
            }
        }
    }

    /// Load-balanced selection frequencies converge to the weight
    /// proportions over many flows (10% tolerance at 4000 samples).
    #[test]
    fn lb_frequencies_match_weights(
        w0 in 1.0f64..10.0,
        w1 in 1.0f64..10.0,
        w2 in 1.0f64..10.0,
    ) {
        let candidates = mids(3);
        let weights = vec![
            (MiddleboxId(0), w0),
            (MiddleboxId(1), w1),
            (MiddleboxId(2), w2),
        ];
        let total = w0 + w1 + w2;
        let mut counts = [0u32; 3];
        let n = 4000;
        for i in 0..n {
            let ft = FiveTuple {
                src: Ipv4Addr(0x0a000000 + i),
                dst: Ipv4Addr(0x0a100000),
                src_port: (i % 50000) as u16,
                dst_port: 80,
                proto: Protocol::Tcp,
            };
            let m = select_next(Steering::LoadBalanced, &candidates, Some(&weights), &ft)
                .unwrap();
            counts[m.index()] += 1;
        }
        for (i, &w) in [w0, w1, w2].iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / n as f64;
            prop_assert!(
                (got - expect).abs() < 0.10,
                "candidate {}: expected {:.3}, got {:.3}",
                i, expect, got
            );
        }
    }

    /// A zero-weight candidate is never chosen by the LB strategy.
    #[test]
    fn zero_weight_never_selected(live in 1.0f64..10.0, flows in 1u32..500) {
        let candidates = mids(2);
        let weights = vec![(MiddleboxId(0), 0.0), (MiddleboxId(1), live)];
        for i in 0..flows {
            let ft = FiveTuple {
                src: Ipv4Addr(i),
                dst: Ipv4Addr(99),
                src_port: (i % 60000) as u16,
                dst_port: 80,
                proto: Protocol::Tcp,
            };
            prop_assert_eq!(
                select_next(Steering::LoadBalanced, &candidates, Some(&weights), &ft),
                Some(MiddleboxId(1))
            );
        }
    }
}
