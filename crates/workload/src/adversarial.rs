//! Adversarial and stress workloads for the policy-state scaling
//! experiments (PR 9): traffic mixes whose *flow-table* behavior — not
//! their volume — is the stressor.
//!
//! * [`flash_crowd`] — a thundering herd of distinct sources hammering one
//!   policy's destination service: positive-cache churn concentrated on
//!   one device chain.
//! * [`elephant_skew`] — a few enormous flows among swarms of mice: the
//!   per-packet cache hit path dominated by a handful of entries while the
//!   table still fills with one-hit wonders.
//! * [`exhaustion_attack`] — millions of one-packet flows that match *no*
//!   policy: every packet is a classification miss that installs a
//!   negative-cache entry, the paper's flow-table exhaustion attack
//!   against soft-state proxies. The capped set-associative negative
//!   cache ([`sdm_policy::NegativeCache`]) bounds the memory this can pin.

use sdm_netsim::{AddressPlan, FiveTuple, Protocol, StubId};
use sdm_policy::{PolicyId, PolicySet};
use sdm_util::rng::StdRng;

use crate::flows::Flow;
use crate::policies::{GeneratedPolicies, PolicyClass};

/// Sentinel policy id carried by attack flows that intentionally match no
/// policy (a real id would claim a first-match that does not exist).
pub const NO_POLICY: PolicyId = PolicyId(u32::MAX);

/// Generates a flash crowd: `flows` one-to-few-packet flows from distinct
/// sources, all first-matching the same many-to-one policy (same
/// destination service), so one proxy/middlebox chain absorbs the entire
/// herd.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `policies` has no many-to-one policy or the plan has fewer
/// than two stubs.
pub fn flash_crowd(
    policies: &GeneratedPolicies,
    addrs: &AddressPlan,
    flows: usize,
    seed: u64,
) -> Vec<Flow> {
    assert!(addrs.stub_count() >= 2, "need at least two stub networks");
    let targets = policies.of_class(PolicyClass::ManyToOne);
    assert!(!targets.is_empty(), "flash crowd needs a many-to-one policy");
    let mut rng = StdRng::seed_from_u64(seed);
    let p = targets[rng.gen_range(0..targets.len())];
    let m = policies.endpoints(p);
    let dst_stub = m.dst.expect("many-to-one policies pin a destination");
    let dst = addrs.host(dst_stub, 0);

    let n_stubs = addrs.stub_count() as u32;
    let mut out = Vec::with_capacity(flows);
    for i in 0..flows {
        // distinct sources: walk stubs and host indices deterministically,
        // randomize the ephemeral port
        let mut src_stub = StubId((i as u32) % n_stubs);
        if src_stub == dst_stub {
            src_stub = StubId((src_stub.0 + 1) % n_stubs);
        }
        let host = ((i as u32) / n_stubs) % 1000;
        let five_tuple = FiveTuple {
            src: addrs.host(src_stub, host),
            dst,
            src_port: rng.gen_range(10_000u16..60_000),
            dst_port: m.service,
            proto: Protocol::Tcp,
        };
        debug_assert_eq!(
            policies.set.first_match(&five_tuple).map(|(id, _)| id),
            Some(p),
            "flash-crowd flow must hit its target policy"
        );
        out.push(Flow {
            five_tuple,
            packets: 1 + (i as u64 % 3),
            policy: p,
        });
    }
    out
}

/// Parameters of the elephant-skew generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElephantSkewConfig {
    /// Total flows to generate.
    pub flows: usize,
    /// How many of them are elephants (the rest are mice).
    pub elephants: usize,
    /// Packets per mouse flow.
    pub mouse_packets: u64,
    /// Packets per elephant flow.
    pub elephant_packets: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ElephantSkewConfig {
    fn default() -> Self {
        ElephantSkewConfig {
            flows: 10_000,
            elephants: 10,
            mouse_packets: 1,
            elephant_packets: 50_000,
            seed: 1,
        }
    }
}

/// Generates an elephant/mice mix: `elephants` flows of
/// `elephant_packets` packets interleaved (deterministically, spread
/// evenly) among mice of `mouse_packets` packets. All flows first-match
/// real policies, rotating over the available evaluation classes like
/// [`crate::generate_flows`].
///
/// # Panics
///
/// Panics if `cfg.elephants > cfg.flows`, `policies` is empty, or the plan
/// has fewer than two stubs.
pub fn elephant_skew(
    policies: &GeneratedPolicies,
    addrs: &AddressPlan,
    cfg: &ElephantSkewConfig,
) -> Vec<Flow> {
    assert!(cfg.elephants <= cfg.flows, "more elephants than flows");
    let mut out = crate::generate_flows(
        policies,
        addrs,
        &crate::WorkloadConfig {
            flows: cfg.flows,
            size_min: cfg.mouse_packets.max(1),
            size_max: cfg.mouse_packets.max(1),
            seed: cfg.seed,
            ..Default::default()
        },
    );
    if let Some(stride) = cfg.flows.checked_div(cfg.elephants) {
        for e in 0..cfg.elephants {
            out[e * stride.max(1)].packets = cfg.elephant_packets;
        }
    }
    out
}

/// Generates the flow-table exhaustion attack: `flows` distinct
/// one-packet five-tuples, none of which matches any policy in `set` —
/// every packet forces a full classification miss and a negative-cache
/// insert at its proxy. Flows carry the [`NO_POLICY`] sentinel id.
///
/// Candidate tuples walk destination ports downward from 65535 (far above
/// the evaluation service ranges) and are *verified* against
/// [`PolicySet::first_match`]; any colliding port is skipped, so the
/// guarantee holds for arbitrary policy sets.
///
/// Deterministic: the construction is a pure enumeration (no RNG), so the
/// same `(set, addrs, flows)` always yields the same list.
///
/// # Panics
///
/// Panics if the plan has fewer than two stubs, or if fewer than 1024
/// destination ports above 32768 are policy-free (no realistic policy set
/// comes close).
pub fn exhaustion_attack(set: &PolicySet, addrs: &AddressPlan, flows: usize) -> Vec<Flow> {
    assert!(addrs.stub_count() >= 2, "need at least two stub networks");
    // Pre-screen a bank of policy-free destination ports with a probe
    // tuple, then re-verify each emitted tuple (descriptors could in
    // principle match on src fields too).
    let probe_src = addrs.host(StubId(0), 0);
    let probe_dst = addrs.host(StubId(1), 0);
    let mut ports = Vec::with_capacity(1024);
    for port in (32_768..=65_535u16).rev() {
        let probe = FiveTuple {
            src: probe_src,
            dst: probe_dst,
            src_port: 10_000,
            dst_port: port,
            proto: Protocol::Tcp,
        };
        if set.first_match(&probe).is_none() {
            ports.push(port);
            if ports.len() == 1024 {
                break;
            }
        }
    }
    assert!(
        ports.len() == 1024,
        "policy set leaves too few high ports unmatched"
    );

    let n_stubs = addrs.stub_count() as u32;
    let mut out = Vec::with_capacity(flows);
    let mut i = 0u64;
    while out.len() < flows {
        // enumerate distinct tuples: port bank × stub × src port × host —
        // the stub cycles early so the attack spreads over every proxy
        let port = ports[(i % 1024) as usize];
        let rest = i / 1024;
        let src_stub = StubId((rest as u32) % n_stubs);
        let rest = rest / n_stubs as u64;
        let src_port = 10_000 + (rest % 50_000) as u16;
        let host = ((rest / 50_000) % 1000) as u32;
        let dst_stub = StubId((src_stub.0 + 1) % n_stubs);
        i += 1;
        let five_tuple = FiveTuple {
            src: addrs.host(src_stub, host),
            dst: addrs.host(dst_stub, host),
            src_port,
            dst_port: port,
            proto: Protocol::Udp,
        };
        if set.first_match(&five_tuple).is_some() {
            continue; // a src-sensitive policy caught this tuple; skip it
        }
        out.push(Flow {
            five_tuple,
            packets: 1,
            policy: NO_POLICY,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{evaluation_policies, PolicyClassCounts};
    use sdm_netsim::AddressPlan;
    use sdm_topology::campus::campus;

    fn world() -> (GeneratedPolicies, AddressPlan) {
        let plan = campus(1);
        let addrs = AddressPlan::new(&plan);
        let gp = evaluation_policies(&addrs, PolicyClassCounts::default(), 3);
        (gp, addrs)
    }

    #[test]
    fn flash_crowd_targets_one_policy() {
        let (gp, addrs) = world();
        let flows = flash_crowd(&gp, &addrs, 2000, 7);
        assert_eq!(flows.len(), 2000);
        let target = flows[0].policy;
        let dst = flows[0].five_tuple.dst;
        for f in &flows {
            assert_eq!(f.policy, target);
            assert_eq!(f.five_tuple.dst, dst, "one destination for the herd");
            let (id, _) = gp.set.first_match(&f.five_tuple).unwrap();
            assert_eq!(id, target);
        }
        // herd comes from many distinct sources
        let sources: std::collections::HashSet<_> =
            flows.iter().map(|f| f.five_tuple.src).collect();
        assert!(sources.len() > 100, "distinct sources: {}", sources.len());
    }

    #[test]
    fn flash_crowd_deterministic_in_seed() {
        let (gp, addrs) = world();
        assert_eq!(flash_crowd(&gp, &addrs, 100, 5), flash_crowd(&gp, &addrs, 100, 5));
        assert_ne!(flash_crowd(&gp, &addrs, 100, 5), flash_crowd(&gp, &addrs, 100, 6));
    }

    #[test]
    fn elephant_skew_shapes_sizes() {
        let (gp, addrs) = world();
        let cfg = ElephantSkewConfig {
            flows: 1000,
            elephants: 5,
            mouse_packets: 2,
            elephant_packets: 9999,
            seed: 3,
        };
        let flows = elephant_skew(&gp, &addrs, &cfg);
        assert_eq!(flows.len(), 1000);
        let big = flows.iter().filter(|f| f.packets == 9999).count();
        let small = flows.iter().filter(|f| f.packets == 2).count();
        assert_eq!(big, 5);
        assert_eq!(big + small, 1000);
        for f in &flows {
            let (id, _) = gp.set.first_match(&f.five_tuple).unwrap();
            assert_eq!(id, f.policy);
        }
    }

    #[test]
    fn exhaustion_flows_match_nothing_and_are_distinct() {
        let (gp, addrs) = world();
        let flows = exhaustion_attack(&gp.set, &addrs, 5000);
        assert_eq!(flows.len(), 5000);
        let mut seen = std::collections::HashSet::new();
        for f in &flows {
            assert_eq!(f.packets, 1);
            assert_eq!(f.policy, NO_POLICY);
            assert!(
                gp.set.first_match(&f.five_tuple).is_none(),
                "attack flow {} must not match",
                f.five_tuple
            );
            assert!(seen.insert(f.five_tuple), "duplicate {}", f.five_tuple);
        }
    }

    #[test]
    fn exhaustion_is_deterministic() {
        let (gp, addrs) = world();
        assert_eq!(
            exhaustion_attack(&gp.set, &addrs, 300),
            exhaustion_attack(&gp.set, &addrs, 300)
        );
    }
}
