//! Flow generation: power-law sizes, one third of flows per policy class
//! (§IV.A), each flow synthesized to first-match its intended policy.

use sdm_util::json::{FromJson, Json, JsonError, ToJson};
use sdm_util::rng::StdRng;
use sdm_netsim::{AddressPlan, FiveTuple, Protocol, StubId};
use sdm_policy::PolicyId;

use crate::policies::GeneratedPolicies;

/// One generated flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// The flow identifier (matches `policy` as its first match).
    pub five_tuple: FiveTuple,
    /// Number of packets in the flow (power-law distributed).
    pub packets: u64,
    /// The policy this flow was synthesized for.
    pub policy: PolicyId,
}

/// Parameters of the flow generator (§IV.A defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of flows to generate (the paper sweeps 30k–300k).
    pub flows: usize,
    /// Smallest flow size in packets.
    pub size_min: u64,
    /// Largest flow size in packets.
    pub size_max: u64,
    /// Bounded-Pareto shape parameter; smaller values produce heavier
    /// tails. The default 0.65 yields a mean flow size of ≈35 packets,
    /// matching the paper's totals (1M–10M packets from 30k–300k flows).
    pub alpha: f64,
    /// Payload bytes per packet.
    pub payload: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            flows: 30_000,
            size_min: 1,
            size_max: 5_000,
            alpha: 0.65,
            payload: 512,
            seed: 1,
        }
    }
}

impl ToJson for WorkloadConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("flows", Json::from(self.flows)),
            ("size_min", Json::from(self.size_min)),
            ("size_max", Json::from(self.size_max)),
            ("alpha", Json::Num(self.alpha)),
            ("payload", Json::from(self.payload)),
            ("seed", Json::from(self.seed)),
        ])
    }
}

impl FromJson for WorkloadConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let uint = |key: &str| {
            v.req(key)?
                .as_u64()
                .ok_or_else(|| JsonError::msg(format!("{key} must be a non-negative integer")))
        };
        Ok(WorkloadConfig {
            flows: uint("flows")? as usize,
            size_min: uint("size_min")?,
            size_max: uint("size_max")?,
            alpha: v
                .req("alpha")?
                .as_f64()
                .ok_or_else(|| JsonError::msg("alpha must be a number"))?,
            payload: uint("payload")? as u32,
            seed: uint("seed")?,
        })
    }
}

/// Bounded-Pareto sample via inverse CDF.
fn pareto_size(rng: &mut StdRng, cfg: &WorkloadConfig) -> u64 {
    let (l, h, a) = (cfg.size_min as f64, cfg.size_max as f64, cfg.alpha);
    let u: f64 = rng.gen_range(0.0..1.0);
    let la = l.powf(-a);
    let ha = h.powf(-a);
    let x = (la - u * (la - ha)).powf(-1.0 / a);
    (x as u64).clamp(cfg.size_min, cfg.size_max)
}

/// An ephemeral source port; unique-ish per flow so 5-tuples rarely
/// collide.
fn ephemeral_port(rng: &mut StdRng) -> u16 {
    rng.gen_range(10_000u16..60_000)
}

fn random_other_stub(rng: &mut StdRng, n: u32, not: StubId) -> StubId {
    loop {
        let s = StubId(rng.gen_range(0..n));
        if s != not {
            return s;
        }
    }
}

/// Generates `cfg.flows` flows, one third per policy class, each matching
/// its intended policy as the network-wide first match.
///
/// # Panics
///
/// Panics if `policies` contains no policies or the plan has fewer than
/// two stubs.
///
/// # Example
///
/// ```
/// use sdm_workload::*;
/// use sdm_netsim::AddressPlan;
///
/// let plan = sdm_topology::campus::campus(1);
/// let addrs = AddressPlan::new(&plan);
/// let gp = evaluation_policies(&addrs, PolicyClassCounts::default(), 7);
/// let flows = generate_flows(&gp, &addrs, &WorkloadConfig { flows: 100, ..Default::default() });
/// assert_eq!(flows.len(), 100);
/// for f in &flows {
///     let (id, _) = gp.set.first_match(&f.five_tuple).unwrap();
///     assert_eq!(id, f.policy);
/// }
/// ```
pub fn generate_flows(
    policies: &GeneratedPolicies,
    addrs: &AddressPlan,
    cfg: &WorkloadConfig,
) -> Vec<Flow> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.flows);
    generate_into(policies, addrs, cfg, &mut rng, &mut out, FlowBudget::Count(cfg.flows));
    out
}

/// Generates flows until their cumulative packet count reaches
/// `target_packets` (the x-axis of Figures 4–5). The flow mix and sizes
/// follow the same distributions as [`generate_flows`].
///
/// # Panics
///
/// Same conditions as [`generate_flows`].
pub fn generate_flows_with_total(
    policies: &GeneratedPolicies,
    addrs: &AddressPlan,
    cfg: &WorkloadConfig,
    target_packets: u64,
) -> Vec<Flow> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::new();
    generate_into(
        policies,
        addrs,
        cfg,
        &mut rng,
        &mut out,
        FlowBudget::Packets(target_packets),
    );
    out
}

enum FlowBudget {
    Count(usize),
    Packets(u64),
}

fn generate_into(
    policies: &GeneratedPolicies,
    addrs: &AddressPlan,
    cfg: &WorkloadConfig,
    rng: &mut StdRng,
    out: &mut Vec<Flow>,
    budget: FlowBudget,
) {
    assert!(!policies.set.is_empty(), "no policies to generate flows for");
    assert!(addrs.stub_count() >= 2, "need at least two stub networks");
    use crate::policies::PolicyClass::*;
    // Rotate over the classes that actually have policies; companions are
    // included only when they were generated.
    let classes: Vec<crate::policies::PolicyClass> = [ManyToOne, OneToMany, OneToOne, Companion]
        .into_iter()
        .filter(|&c| !policies.of_class(c).is_empty())
        .collect();
    let per_class: Vec<Vec<PolicyId>> =
        classes.iter().map(|&c| policies.of_class(c)).collect();
    assert!(
        !classes.is_empty(),
        "policy set contains none of the evaluation classes"
    );
    let n_stubs = addrs.stub_count() as u32;
    let mut total: u64 = 0;
    let mut i = 0usize;
    loop {
        match budget {
            FlowBudget::Count(n) => {
                if out.len() >= n {
                    break;
                }
            }
            FlowBudget::Packets(t) => {
                if total >= t {
                    break;
                }
            }
        }
        // round-robin across classes = exact one-third mix
        let class_idx = i % classes.len();
        i += 1;
        let pool = &per_class[class_idx];
        if pool.is_empty() {
            continue;
        }
        let p = pool[rng.gen_range(0..pool.len())];
        let m = policies.endpoints(p);

        let src_stub = m
            .src
            .unwrap_or_else(|| match m.dst {
                Some(d) => random_other_stub(rng, n_stubs, d),
                None => StubId(rng.gen_range(0..n_stubs)),
            });
        let dst_stub = m
            .dst
            .unwrap_or_else(|| random_other_stub(rng, n_stubs, src_stub));

        // Companion policies match *return* web traffic: source port 80,
        // arbitrary destination port; the primary classes match on the
        // destination service port.
        let (src_port, dst_port) = if m.class == Companion {
            (m.service, ephemeral_port(rng))
        } else {
            (ephemeral_port(rng), m.service)
        };
        let five_tuple = FiveTuple {
            src: addrs.host(src_stub, rng.gen_range(0u32..1000)),
            dst: addrs.host(dst_stub, rng.gen_range(0u32..1000)),
            src_port,
            dst_port,
            proto: Protocol::Tcp,
        };
        let packets = pareto_size(rng, cfg);
        total += packets;
        out.push(Flow {
            five_tuple,
            packets,
            policy: p,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{evaluation_policies, PolicyClass, PolicyClassCounts};
    use sdm_topology::campus::campus;

    #[test]
    fn workload_config_json_round_trip() {
        let cfg = WorkloadConfig::default();
        let text = cfg.to_json().to_string_pretty();
        let back = WorkloadConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn workload_config_json_rejects_missing_field() {
        assert!(WorkloadConfig::from_json(&Json::parse("{}").unwrap()).is_err());
    }

    fn world() -> (GeneratedPolicies, AddressPlan) {
        let plan = campus(1);
        let addrs = AddressPlan::new(&plan);
        let gp = evaluation_policies(&addrs, PolicyClassCounts::default(), 3);
        (gp, addrs)
    }

    #[test]
    fn flows_first_match_their_policy() {
        let (gp, addrs) = world();
        let flows = generate_flows(
            &gp,
            &addrs,
            &WorkloadConfig {
                flows: 3000,
                ..Default::default()
            },
        );
        assert_eq!(flows.len(), 3000);
        for f in &flows {
            let (id, _) = gp
                .set
                .first_match(&f.five_tuple)
                .expect("generated flow must match");
            assert_eq!(id, f.policy, "flow {} shadowed", f.five_tuple);
        }
    }

    #[test]
    fn class_mix_is_one_third_each() {
        let (gp, addrs) = world();
        let flows = generate_flows(
            &gp,
            &addrs,
            &WorkloadConfig {
                flows: 3000,
                ..Default::default()
            },
        );
        let mut counts = [0usize; 4];
        for f in &flows {
            match gp.endpoints(f.policy).class {
                PolicyClass::ManyToOne => counts[0] += 1,
                PolicyClass::OneToMany => counts[1] += 1,
                PolicyClass::OneToOne => counts[2] += 1,
                PolicyClass::Companion => counts[3] += 1,
            }
        }
        assert_eq!(counts, [1000, 1000, 1000, 0]);
    }

    #[test]
    fn sizes_within_bounds_and_heavy_tailed() {
        let (gp, addrs) = world();
        let cfg = WorkloadConfig {
            flows: 20_000,
            ..Default::default()
        };
        let flows = generate_flows(&gp, &addrs, &cfg);
        let mut max = 0;
        let mut small = 0usize;
        let mut total = 0u64;
        for f in &flows {
            assert!((1..=5000).contains(&f.packets));
            max = max.max(f.packets);
            if f.packets <= 3 {
                small += 1;
            }
            total += f.packets;
        }
        // heavy tail: some large flows exist, many flows are small
        assert!(max > 1000, "max={max}");
        assert!(small > flows.len() * 2 / 5, "small={small}");
        // mean in the ballpark the paper's totals imply (~10-60 pkts/flow)
        let mean = total as f64 / flows.len() as f64;
        assert!((5.0..80.0).contains(&mean), "mean={mean}");
    }

    #[test]
    fn total_targeting_reaches_budget() {
        let (gp, addrs) = world();
        let cfg = WorkloadConfig::default();
        let flows = generate_flows_with_total(&gp, &addrs, &cfg, 100_000);
        let total: u64 = flows.iter().map(|f| f.packets).sum();
        assert!(total >= 100_000);
        assert!(total < 100_000 + 5000); // overshoot bounded by max size
    }

    #[test]
    fn deterministic_in_seed() {
        let (gp, addrs) = world();
        let cfg = WorkloadConfig {
            flows: 100,
            seed: 9,
            ..Default::default()
        };
        assert_eq!(generate_flows(&gp, &addrs, &cfg), generate_flows(&gp, &addrs, &cfg));
        let other = WorkloadConfig { seed: 10, ..cfg };
        assert_ne!(generate_flows(&gp, &addrs, &cfg), generate_flows(&gp, &addrs, &other));
    }

    #[test]
    fn companion_flows_match_their_policy_and_carry_port_80_source() {
        let plan = campus(1);
        let addrs = AddressPlan::new(&plan);
        let counts = crate::policies::PolicyClassCounts {
            companions: true,
            ..Default::default()
        };
        let gp = evaluation_policies(&addrs, counts, 3);
        let flows = generate_flows(
            &gp,
            &addrs,
            &WorkloadConfig {
                flows: 2000,
                ..Default::default()
            },
        );
        let mut saw_companion = false;
        for f in &flows {
            let (id, _) = gp.set.first_match(&f.five_tuple).unwrap();
            assert_eq!(id, f.policy, "flow {} shadowed", f.five_tuple);
            if gp.endpoints(f.policy).class == PolicyClass::Companion {
                saw_companion = true;
                assert_eq!(f.five_tuple.src_port, 80);
                assert_eq!(addrs.stub_of(f.five_tuple.dst), gp.endpoints(f.policy).dst);
            }
        }
        assert!(saw_companion, "companion flows must be generated");
    }

    #[test]
    fn one_to_one_flows_respect_endpoints() {
        let (gp, addrs) = world();
        let flows = generate_flows(
            &gp,
            &addrs,
            &WorkloadConfig {
                flows: 900,
                ..Default::default()
            },
        );
        for f in &flows {
            let m = gp.endpoints(f.policy);
            if m.class == PolicyClass::OneToOne {
                assert_eq!(addrs.stub_of(f.five_tuple.src), m.src);
                assert_eq!(addrs.stub_of(f.five_tuple.dst), m.dst);
            }
        }
    }
}
