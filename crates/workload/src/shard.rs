//! Shard-aware flow iteration: convert generated [`Flow`]s into the
//! [`FlowSpec`]s the flow-sharded runtime consumes, and pre-bucket a flow
//! list by shard for callers that drive the shards themselves.

use sdm_core::{shard_of, FlowSpec};

use crate::flows::Flow;

/// Converts generated flows into injection specs with a uniform per-packet
/// payload (the experiments use [`crate::WorkloadConfig::payload`]).
pub fn to_flow_specs(flows: &[Flow], payload: u32) -> Vec<FlowSpec> {
    flows
        .iter()
        .map(|f| FlowSpec {
            flow: f.five_tuple,
            packets: f.packets,
            payload,
        })
        .collect()
}

/// Buckets flows by [`shard_of`] their five-tuple, preserving generation
/// order inside each bucket — the same partition
/// [`sdm_core::Controller::run_sharded`] computes internally. Useful for
/// inspecting or load-checking a partition without running it.
pub fn shard_flows(flows: &[Flow], shards: usize) -> Vec<Vec<Flow>> {
    let shards = shards.max(1);
    let mut buckets: Vec<Vec<Flow>> = vec![Vec::new(); shards];
    for f in flows {
        buckets[shard_of(&f.five_tuple, shards)].push(*f);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{evaluation_policies, PolicyClassCounts};
    use crate::WorkloadConfig;
    use sdm_netsim::AddressPlan;
    use sdm_topology::campus::campus;

    fn flows(n: usize) -> Vec<Flow> {
        let plan = campus(1);
        let addrs = AddressPlan::new(&plan);
        let gp = evaluation_policies(&addrs, PolicyClassCounts::default(), 3);
        crate::generate_flows(&gp, &addrs, &WorkloadConfig { flows: n, ..Default::default() })
    }

    #[test]
    fn buckets_partition_the_flow_list() {
        let fl = flows(500);
        let buckets = shard_flows(&fl, 4);
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), fl.len());
        // every flow is in the bucket its hash names, order preserved
        let mut rebuilt: Vec<Vec<Flow>> = vec![Vec::new(); 4];
        for f in &fl {
            rebuilt[shard_of(&f.five_tuple, 4)].push(*f);
        }
        assert_eq!(buckets, rebuilt);
    }

    #[test]
    fn single_shard_is_the_identity_partition() {
        let fl = flows(50);
        let buckets = shard_flows(&fl, 1);
        assert_eq!(buckets, vec![fl.clone()]);
        assert_eq!(shard_flows(&fl, 0), vec![fl]);
    }

    #[test]
    fn hashing_spreads_flows_roughly_evenly() {
        let fl = flows(4000);
        for &shards in &[2usize, 4, 8] {
            let buckets = shard_flows(&fl, shards);
            let expected = fl.len() / shards;
            for (i, b) in buckets.iter().enumerate() {
                assert!(
                    b.len() > expected / 2 && b.len() < expected * 2,
                    "shard {i}/{shards} holds {} of {} flows",
                    b.len(),
                    fl.len()
                );
            }
        }
    }

    #[test]
    fn specs_carry_flow_identity_and_payload() {
        let fl = flows(20);
        let specs = to_flow_specs(&fl, 512);
        assert_eq!(specs.len(), fl.len());
        for (s, f) in specs.iter().zip(&fl) {
            assert_eq!(s.flow, f.five_tuple);
            assert_eq!(s.packets, f.packets);
            assert_eq!(s.payload, 512);
        }
    }
}
