//! Workload generation for the SDM policy-enforcement experiments,
//! reproducing the evaluation setup of §IV.A:
//!
//! * **Three policy classes** — many-to-one (`FW → IDS` protecting one
//!   destination service), one-to-many (`FW → IDS → WP` on one subnet's
//!   outbound web traffic), one-to-one (`IDS → TM` between a chosen pair of
//!   subnets).
//! * **Flows** with power-law (bounded-Pareto) sizes between 1 and 5000
//!   packets, assigned one third to each policy class, scaled to total
//!   packet targets of 1M–10M.
//!
//! Everything is deterministic in the configured seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversarial;
mod flows;
mod policies;
mod shard;
mod trace;

pub use adversarial::{
    elephant_skew, exhaustion_attack, flash_crowd, ElephantSkewConfig, NO_POLICY,
};
pub use flows::{generate_flows, generate_flows_with_total, Flow, WorkloadConfig};
pub use shard::{shard_flows, to_flow_specs};
pub use policies::{evaluation_policies, GeneratedPolicies, PolicyClass, PolicyClassCounts};
pub use trace::{flows_from_text, flows_to_text, ParseTraceError};
