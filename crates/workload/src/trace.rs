//! Plain-text flow traces: save a generated workload to disk and replay it
//! later, so experiments are reproducible across machines and versions
//! independent of RNG details.
//!
//! Format, one flow per line (whitespace-separated, `#` comments):
//!
//! ```text
//! # src dst sport dport proto packets policy
//! 10.0.0.17 10.3.4.9 41022 80 tcp 351 12
//! ```

use std::fmt;

use sdm_netsim::{FiveTuple, Protocol};
use sdm_policy::PolicyId;

use crate::flows::Flow;

/// Error from parsing a flow-trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn err(line: usize, message: impl Into<String>) -> ParseTraceError {
    ParseTraceError {
        line,
        message: message.into(),
    }
}

/// Renders flows as a trace document (inverse of [`flows_from_text`]).
pub fn flows_to_text(flows: &[Flow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("# src dst sport dport proto packets policy\n");
    for f in flows {
        let t = &f.five_tuple;
        let _ = writeln!(
            out,
            "{} {} {} {} {} {} {}",
            t.src,
            t.dst,
            t.src_port,
            t.dst_port,
            t.proto,
            f.packets,
            f.policy.index(),
        );
    }
    out
}

/// Parses a trace document produced by [`flows_to_text`].
///
/// # Errors
///
/// Returns the first malformed line with its number.
///
/// # Example
///
/// ```
/// let text = "10.0.0.1 10.3.0.2 40000 80 tcp 12 0\n";
/// let flows = sdm_workload::flows_from_text(text)?;
/// assert_eq!(flows.len(), 1);
/// assert_eq!(flows[0].packets, 12);
/// # Ok::<(), sdm_workload::ParseTraceError>(())
/// ```
pub fn flows_from_text(text: &str) -> Result<Vec<Flow>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 7 {
            return Err(err(line_no, format!("expected 7 fields, got {}", fields.len())));
        }
        let src = fields[0]
            .parse()
            .map_err(|e| err(line_no, format!("src: {e}")))?;
        let dst = fields[1]
            .parse()
            .map_err(|e| err(line_no, format!("dst: {e}")))?;
        let src_port: u16 = fields[2]
            .parse()
            .map_err(|_| err(line_no, format!("bad sport '{}'", fields[2])))?;
        let dst_port: u16 = fields[3]
            .parse()
            .map_err(|_| err(line_no, format!("bad dport '{}'", fields[3])))?;
        let proto = match fields[4].to_ascii_lowercase().as_str() {
            "tcp" => Protocol::Tcp,
            "udp" => Protocol::Udp,
            "ipip" => Protocol::IpInIp,
            other => {
                let n: u8 = other
                    .strip_prefix("proto")
                    .unwrap_or(other)
                    .parse()
                    .map_err(|_| err(line_no, format!("bad proto '{}'", fields[4])))?;
                Protocol::from(n)
            }
        };
        let packets: u64 = fields[5]
            .parse()
            .map_err(|_| err(line_no, format!("bad packet count '{}'", fields[5])))?;
        if packets == 0 {
            return Err(err(line_no, "packet count must be positive"));
        }
        let policy: u32 = fields[6]
            .parse()
            .map_err(|_| err(line_no, format!("bad policy id '{}'", fields[6])))?;
        out.push(Flow {
            five_tuple: FiveTuple {
                src,
                dst,
                src_port,
                dst_port,
                proto,
            },
            packets,
            policy: PolicyId(policy),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::{generate_flows, WorkloadConfig};
    use crate::policies::{evaluation_policies, PolicyClassCounts};
    use sdm_netsim::AddressPlan;
    use sdm_topology::campus::campus;

    #[test]
    fn round_trips_generated_workloads() {
        let plan = campus(1);
        let addrs = AddressPlan::new(&plan);
        let gp = evaluation_policies(&addrs, PolicyClassCounts::default(), 3);
        let flows = generate_flows(
            &gp,
            &addrs,
            &WorkloadConfig {
                flows: 500,
                ..Default::default()
            },
        );
        let text = flows_to_text(&flows);
        let back = flows_from_text(&text).unwrap();
        assert_eq!(flows, back);
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# header\n\n10.0.0.1 10.3.0.2 1 2 udp 5 3 # trailing\n";
        let flows = flows_from_text(text).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].five_tuple.proto, Protocol::Udp);
        assert_eq!(flows[0].policy, PolicyId(3));
    }

    #[test]
    fn errors_with_line_numbers() {
        assert_eq!(flows_from_text("10.0.0.1 10.0.0.2 1 2 tcp 5\n").unwrap_err().line, 1);
        assert_eq!(
            flows_from_text("# ok\n10.0.0.1 10.0.0.2 1 2 tcp 0 0\n").unwrap_err().line,
            2
        );
        assert!(flows_from_text("x y 1 2 tcp 5 0\n").is_err());
        assert!(flows_from_text("10.0.0.1 10.0.0.2 1 2 quic 5 0\n").is_err());
    }

    #[test]
    fn exotic_protocols_round_trip() {
        let text = "10.0.0.1 10.0.0.2 0 0 proto47 9 1\n";
        let flows = flows_from_text(text).unwrap();
        assert_eq!(flows[0].five_tuple.proto, Protocol::Other(47));
        let again = flows_from_text(&flows_to_text(&flows)).unwrap();
        assert_eq!(flows, again);
    }
}
