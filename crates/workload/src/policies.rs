//! Generation of the three policy classes of §IV.A.

use sdm_util::json::{FromJson, Json, JsonError, ToJson};
use sdm_util::rng::StdRng;
use sdm_netsim::{AddressPlan, StubId};
use sdm_policy::{
    ActionList, NetworkFunction, Policy, PolicyId, PolicySet, TrafficDescriptor,
};

/// The class of a generated policy (§IV.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyClass {
    /// Wildcard sources to one destination subnet/service: `FW → IDS`.
    ManyToOne,
    /// One source subnet's web traffic to anywhere: `FW → IDS → WP`.
    OneToMany,
    /// One subnet pair, one service: `IDS → TM`.
    OneToOne,
    /// The many-to-one *companion* of a one-to-many policy (§IV.A: "each
    /// such policy will have a many-to-one companion policy for the return
    /// web traffic"): traffic from port 80 back into the subnet, traversing
    /// the reversed chain `WP → IDS → FW` (Table I, last row).
    Companion,
}

impl PolicyClass {
    /// The action list the paper assigns to this class.
    pub fn actions(self) -> ActionList {
        use NetworkFunction::*;
        match self {
            PolicyClass::ManyToOne => ActionList::chain([Firewall, Ids]),
            PolicyClass::OneToMany => ActionList::chain([Firewall, Ids, WebProxy]),
            PolicyClass::OneToOne => ActionList::chain([Ids, TrafficMonitor]),
            PolicyClass::Companion => ActionList::chain([WebProxy, Ids, Firewall]),
        }
    }
}

/// How many policies of each class to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyClassCounts {
    /// Many-to-one policies.
    pub many_to_one: usize,
    /// One-to-many policies.
    pub one_to_many: usize,
    /// One-to-one policies.
    pub one_to_one: usize,
    /// Also generate the many-to-one *companion* of every one-to-many
    /// policy for its return web traffic (§IV.A). Off by default: the
    /// paper's flow mix assigns flows to the three primary classes only.
    pub companions: bool,
}

impl Default for PolicyClassCounts {
    fn default() -> Self {
        PolicyClassCounts {
            many_to_one: 10,
            one_to_many: 10,
            one_to_one: 10,
            companions: false,
        }
    }
}

impl ToJson for PolicyClassCounts {
    fn to_json(&self) -> Json {
        Json::obj([
            ("many_to_one", Json::from(self.many_to_one)),
            ("one_to_many", Json::from(self.one_to_many)),
            ("one_to_one", Json::from(self.one_to_one)),
            ("companions", Json::from(self.companions)),
        ])
    }
}

impl FromJson for PolicyClassCounts {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let count = |key: &str| {
            v.req(key)?
                .as_usize()
                .ok_or_else(|| JsonError::msg(format!("{key} must be a non-negative integer")))
        };
        Ok(PolicyClassCounts {
            many_to_one: count("many_to_one")?,
            one_to_many: count("one_to_many")?,
            one_to_one: count("one_to_one")?,
            companions: v
                .req("companions")?
                .as_bool()
                .ok_or_else(|| JsonError::msg("companions must be a boolean"))?,
        })
    }
}

/// Metadata describing one generated policy: its class and the concrete
/// endpoints the generator chose (used to synthesize matching flows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyEndpoints {
    /// The class.
    pub class: PolicyClass,
    /// The concrete source subnet, if the class pins one.
    pub src: Option<StubId>,
    /// The concrete destination subnet, if the class pins one.
    pub dst: Option<StubId>,
    /// The destination service port the policy matches.
    pub service: u16,
}

/// A generated policy set plus per-policy metadata.
#[derive(Debug, Clone)]
pub struct GeneratedPolicies {
    /// The network-wide ordered policy list.
    pub set: PolicySet,
    /// Per-policy metadata, indexed by [`PolicyId`].
    pub meta: Vec<PolicyEndpoints>,
}

impl GeneratedPolicies {
    /// Policy ids of one class.
    pub fn of_class(&self, class: PolicyClass) -> Vec<PolicyId> {
        self.meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.class == class)
            .map(|(i, _)| PolicyId(i as u32))
            .collect()
    }

    /// Metadata of one policy.
    pub fn endpoints(&self, p: PolicyId) -> &PolicyEndpoints {
        &self.meta[p.index()]
    }
}

/// Port pools per class, disjoint so no generated policy shadows another:
/// the first match for any synthesized flow is exactly its intended policy.
const MANY_TO_ONE_BASE: u16 = 2000;
const ONE_TO_ONE_BASE: u16 = 3000;
/// One-to-many policies match web traffic.
const HTTP: u16 = 80;

/// Generates the evaluation policy mix of §IV.A over the given addressing
/// plan, deterministically in `seed`.
///
/// * many-to-one: random destination subnet, wildcard source, a dedicated
///   service port, `FW → IDS`;
/// * one-to-many: random source subnet, wildcard destination, port 80,
///   `FW → IDS → WP`;
/// * one-to-one: random subnet pair, dedicated service port, `IDS → TM`.
///
/// # Panics
///
/// Panics if the plan has fewer than two stub networks.
///
/// # Example
///
/// ```
/// use sdm_workload::{evaluation_policies, PolicyClassCounts, PolicyClass};
/// use sdm_netsim::AddressPlan;
///
/// let plan = sdm_topology::campus::campus(1);
/// let addrs = AddressPlan::new(&plan);
/// let gp = evaluation_policies(&addrs, PolicyClassCounts::default(), 7);
/// assert_eq!(gp.set.len(), 30);
/// assert_eq!(gp.of_class(PolicyClass::OneToMany).len(), 10);
/// ```
pub fn evaluation_policies(
    addrs: &AddressPlan,
    counts: PolicyClassCounts,
    seed: u64,
) -> GeneratedPolicies {
    assert!(
        addrs.stub_count() >= 2,
        "need at least two stub networks to generate policies"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = PolicySet::new();
    let mut meta = Vec::new();
    let n_stubs = addrs.stub_count() as u32;

    for i in 0..counts.many_to_one {
        let dst = StubId(rng.gen_range(0..n_stubs));
        let service = MANY_TO_ONE_BASE + i as u16;
        set.push(Policy::new(
            TrafficDescriptor::new()
                .dst_prefix(addrs.subnet(dst))
                .dst_port(service),
            PolicyClass::ManyToOne.actions(),
        ));
        meta.push(PolicyEndpoints {
            class: PolicyClass::ManyToOne,
            src: None,
            dst: Some(dst),
            service,
        });
    }

    // One-to-many policies all match destination port 80, so two with the
    // same source subnet would shadow each other; sample sources without
    // replacement.
    assert!(
        counts.one_to_many <= addrs.stub_count(),
        "at most one one-to-many policy per stub network ({} > {})",
        counts.one_to_many,
        addrs.stub_count()
    );
    let mut src_pool: Vec<u32> = (0..n_stubs).collect();
    for i in (1..src_pool.len()).rev() {
        src_pool.swap(i, rng.gen_range(0..=i));
    }
    for &pool_src in src_pool.iter().take(counts.one_to_many) {
        let src = StubId(pool_src);
        set.push(Policy::new(
            TrafficDescriptor::new()
                .src_prefix(addrs.subnet(src))
                .dst_port(HTTP),
            PolicyClass::OneToMany.actions(),
        ));
        meta.push(PolicyEndpoints {
            class: PolicyClass::OneToMany,
            src: Some(src),
            dst: None,
            service: HTTP,
        });
        if counts.companions {
            // return web traffic into `src`, reversed chain (Table I row 6)
            set.push(Policy::new(
                TrafficDescriptor::new()
                    .dst_prefix(addrs.subnet(src))
                    .src_port(HTTP),
                PolicyClass::Companion.actions(),
            ));
            meta.push(PolicyEndpoints {
                class: PolicyClass::Companion,
                src: None,
                dst: Some(src),
                service: HTTP,
            });
        }
    }

    for i in 0..counts.one_to_one {
        let src = StubId(rng.gen_range(0..n_stubs));
        let dst = loop {
            let d = StubId(rng.gen_range(0..n_stubs));
            if d != src {
                break d;
            }
        };
        let service = ONE_TO_ONE_BASE + i as u16;
        set.push(Policy::new(
            TrafficDescriptor::new()
                .src_prefix(addrs.subnet(src))
                .dst_prefix(addrs.subnet(dst))
                .dst_port(service),
            PolicyClass::OneToOne.actions(),
        ));
        meta.push(PolicyEndpoints {
            class: PolicyClass::OneToOne,
            src: Some(src),
            dst: Some(dst),
            service,
        });
    }

    GeneratedPolicies { set, meta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_netsim::AddressPlan;
    use sdm_policy::NetworkFunction::*;
    use sdm_topology::campus::campus;

    #[test]
    fn class_counts_json_round_trip() {
        let counts = PolicyClassCounts {
            many_to_one: 3,
            one_to_many: 7,
            one_to_one: 11,
            companions: true,
        };
        let text = counts.to_json().to_string();
        let back = PolicyClassCounts::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, counts);
    }

    fn gen() -> GeneratedPolicies {
        let plan = campus(1);
        let addrs = AddressPlan::new(&plan);
        evaluation_policies(&addrs, PolicyClassCounts::default(), 3)
    }

    #[test]
    fn counts_and_classes() {
        let gp = gen();
        assert_eq!(gp.set.len(), 30);
        assert_eq!(gp.of_class(PolicyClass::ManyToOne).len(), 10);
        assert_eq!(gp.of_class(PolicyClass::OneToMany).len(), 10);
        assert_eq!(gp.of_class(PolicyClass::OneToOne).len(), 10);
    }

    #[test]
    fn action_lists_match_paper() {
        let gp = gen();
        for (id, p) in gp.set.iter() {
            let expect = gp.endpoints(id).class.actions();
            assert_eq!(p.actions, expect);
        }
        assert_eq!(
            PolicyClass::OneToMany.actions().functions(),
            &[Firewall, Ids, WebProxy]
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let plan = campus(1);
        let addrs = AddressPlan::new(&plan);
        let a = evaluation_policies(&addrs, PolicyClassCounts::default(), 11);
        let b = evaluation_policies(&addrs, PolicyClassCounts::default(), 11);
        assert_eq!(a.set, b.set);
        let c = evaluation_policies(&addrs, PolicyClassCounts::default(), 12);
        assert_ne!(a.meta, c.meta);
    }

    #[test]
    fn service_ports_are_disjoint_across_classes() {
        let gp = gen();
        let m2o: Vec<u16> = gp
            .of_class(PolicyClass::ManyToOne)
            .iter()
            .map(|&p| gp.endpoints(p).service)
            .collect();
        let o2o: Vec<u16> = gp
            .of_class(PolicyClass::OneToOne)
            .iter()
            .map(|&p| gp.endpoints(p).service)
            .collect();
        for s in &m2o {
            assert!(!o2o.contains(s));
            assert_ne!(*s, 80);
        }
        // within a class, unique
        let mut sorted = m2o.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), m2o.len());
    }

    #[test]
    fn one_to_one_endpoints_differ() {
        let gp = gen();
        for &p in &gp.of_class(PolicyClass::OneToOne) {
            let m = gp.endpoints(p);
            assert_ne!(m.src, m.dst);
            assert!(m.src.is_some() && m.dst.is_some());
        }
    }

    #[test]
    fn companions_generated_with_reversed_chain() {
        let plan = campus(1);
        let addrs = AddressPlan::new(&plan);
        let counts = PolicyClassCounts {
            companions: true,
            ..Default::default()
        };
        let gp = evaluation_policies(&addrs, counts, 3);
        assert_eq!(gp.set.len(), 40);
        let companions = gp.of_class(PolicyClass::Companion);
        assert_eq!(companions.len(), 10);
        for &c in &companions {
            let p = gp.set.get(c).unwrap();
            assert_eq!(p.actions.functions(), &[WebProxy, Ids, Firewall]);
            // the companion's destination is the one-to-many's source
            let m = gp.endpoints(c);
            assert!(m.dst.is_some());
            assert!(m.src.is_none());
        }
    }

    #[test]
    #[should_panic(expected = "two stub networks")]
    fn rejects_tiny_plans() {
        let plan = sdm_topology::waxman::waxman_with(
            &sdm_topology::waxman::WaxmanConfig {
                cores: 1,
                edges: 1,
                links_per_core: 0,
                ..Default::default()
            },
            0,
        );
        let addrs = AddressPlan::new(&plan);
        let _ = evaluation_policies(&addrs, PolicyClassCounts::default(), 0);
    }
}
