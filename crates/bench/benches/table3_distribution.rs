//! Benchmark wrapper for the **Table III** pipeline (campus load
//! distribution) at a reduced volume, printing the reduced-scale table.
//! The canonical full-scale table is produced by
//! `cargo run --release -p sdm-bench --bin table3_distribution`.

use std::hint::black_box;

use sdm_bench::{ExperimentConfig, World, PLOT_ORDER};
use sdm_util::bench::Runner;

fn main() {
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(200_000, 42);
    let cmp = world.compare_strategies(&flows);
    eprintln!("table3 (reduced 200k pkts): type max/min per strategy");
    for f in PLOT_ORDER {
        eprintln!(
            "  {:<4} HP {:>8}/{:<8} Rand {:>8}/{:<8} LB {:>8}/{:<8}",
            f.abbrev(),
            cmp.hp.report.row(f).map_or(0, |r| r.max),
            cmp.hp.report.row(f).map_or(0, |r| r.min),
            cmp.rand.report.row(f).map_or(0, |r| r.max),
            cmp.rand.report.row(f).map_or(0, |r| r.min),
            cmp.lb.report.row(f).map_or(0, |r| r.max),
            cmp.lb.report.row(f).map_or(0, |r| r.min),
        );
    }

    let mut group = Runner::new("table3_distribution");
    group.bench("load_distribution_200k", || {
        let cmp = world.compare_strategies(&flows);
        black_box(cmp.lb.report.overall_max())
    });
    group.finish();
}
