//! Benchmark wrapper for the **Table III** pipeline (campus load
//! distribution) at a reduced volume, printing the reduced-scale table.
//! The canonical full-scale table is produced by
//! `cargo run --release -p sdm-bench --bin table3_distribution`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdm_bench::{ExperimentConfig, World, PLOT_ORDER};

fn bench_table3(c: &mut Criterion) {
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(200_000, 42);
    let cmp = world.compare_strategies(&flows);
    eprintln!("table3 (reduced 200k pkts): type max/min per strategy");
    for f in PLOT_ORDER {
        eprintln!(
            "  {:<4} HP {:>8}/{:<8} Rand {:>8}/{:<8} LB {:>8}/{:<8}",
            f.abbrev(),
            cmp.hp.report.row(f).map_or(0, |r| r.max),
            cmp.hp.report.row(f).map_or(0, |r| r.min),
            cmp.rand.report.row(f).map_or(0, |r| r.max),
            cmp.rand.report.row(f).map_or(0, |r| r.min),
            cmp.lb.report.row(f).map_or(0, |r| r.max),
            cmp.lb.report.row(f).map_or(0, |r| r.min),
        );
    }

    let mut group = c.benchmark_group("table3_distribution");
    group.sample_size(10);
    group.bench_function("load_distribution_200k", |b| {
        b.iter(|| {
            let cmp = world.compare_strategies(&flows);
            black_box(cmp.lb.report.overall_max())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
