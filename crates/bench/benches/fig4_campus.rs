//! Benchmark wrapper for the **Figure 4** pipeline (campus topology,
//! HP vs Rand vs LB) at a reduced volume. The canonical full-scale table
//! is produced by `cargo run --release -p sdm-bench --bin fig4_campus`.

use std::hint::black_box;

use sdm_bench::{figure_header, figure_row, ExperimentConfig, World};
use sdm_util::bench::Runner;

fn main() {
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(200_000, 5);

    // print one reduced-scale figure row so the bench run documents the
    // shape it measures
    let cmp = world.compare_strategies(&flows);
    eprintln!("fig4 (reduced 200k pkts)\n{}\n{}", figure_header(), figure_row(200_000, &cmp));

    let mut group = Runner::new("fig4_campus");
    group.bench("three_strategy_comparison_200k", || {
        black_box(world.compare_strategies(&flows).lb_report.lambda)
    });
    group.finish();
}
