//! Micro-benchmark: multi-field classification — linear first-match scan
//! versus the hierarchical-trie classifier (§III.D), across policy-table
//! sizes.

use std::hint::black_box;

use sdm_netsim::{FiveTuple, Ipv4Addr, Prefix, Protocol};
use sdm_policy::{
    ActionList, NetworkFunction, Policy, PolicySet, PortMatch, TrafficDescriptor, TrieClassifier,
};
use sdm_util::bench::Runner;

fn synthetic_policies(n: usize) -> PolicySet {
    let mut set = PolicySet::new();
    for i in 0..n {
        let src = Prefix::new(Ipv4Addr(0x0a00_0000 | ((i as u32 * 4096) & 0xFF_FFFF)), 20);
        set.push(Policy::new(
            TrafficDescriptor::new()
                .src_prefix(src)
                .dst_port(PortMatch::Exact((i % 1024) as u16)),
            ActionList::chain([NetworkFunction::Ids]),
        ));
    }
    set
}

fn sample_packets(n: usize) -> Vec<FiveTuple> {
    (0..n as u32)
        .map(|i| FiveTuple {
            src: Ipv4Addr(0x0a00_0000 | ((i * 97) & 0xF_FFFF)),
            dst: Ipv4Addr(0x0a00_0000 | ((i * 131) & 0xF_FFFF)),
            src_port: (i % 50_000) as u16,
            dst_port: ((i % 64) * 16) as u16,
            proto: Protocol::Tcp,
        })
        .collect()
}

fn main() {
    let packets = sample_packets(1024);
    let mut group = Runner::new("classifier");
    for n in [32usize, 256, 2048] {
        let set = synthetic_policies(n);
        let trie = TrieClassifier::build(&set);
        let mut i = 0;
        group.bench(&format!("linear/{n}"), || {
            i = (i + 1) % packets.len();
            black_box(set.first_match(&packets[i]))
        });
        let mut i = 0;
        group.bench(&format!("trie/{n}"), || {
            i = (i + 1) % packets.len();
            black_box(trie.classify(&packets[i]))
        });
        group.bench(&format!("build/{n}"), || {
            black_box(TrieClassifier::build(&set))
        });
    }
    group.finish();
}
