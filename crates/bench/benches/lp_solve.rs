//! Micro-benchmark: solving the load-balancing LPs — the reduced Eq. (2)
//! formulation at campus scale, and the full Eq. (1) formulation on a
//! smaller instance.

use std::hint::black_box;

use sdm_bench::{ExperimentConfig, World};
use sdm_core::{LbOptions, Strategy};
use sdm_util::bench::Runner;
use sdm_workload::PolicyClassCounts;

fn main() {
    let mut group = Runner::new("lp_solve");

    // campus-scale Eq. (2)
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(500_000, 5);
    let measured = world.run_strategy(Strategy::HotPotato, None, &flows);
    group.bench("eq2_campus", || {
        black_box(
            world
                .controller
                .solve_load_balanced(&measured.measurements, LbOptions::default())
                .unwrap(),
        )
    });

    // smaller instance for Eq. (1)
    let mut cfg = ExperimentConfig::campus(3);
    cfg.policy_counts = PolicyClassCounts {
        many_to_one: 3,
        one_to_many: 3,
        one_to_one: 3,
        companions: false,
    };
    let world_small = World::build(&cfg);
    let flows = world_small.flows(200_000, 5);
    let measured = world_small.run_strategy(Strategy::HotPotato, None, &flows);
    group.bench("eq1_campus_small", || {
        black_box(
            world_small
                .controller
                .solve_load_balanced_full(&measured.measurements, LbOptions::default())
                .unwrap(),
        )
    });
    group.bench("eq2_campus_small", || {
        black_box(
            world_small
                .controller
                .solve_load_balanced(&measured.measurements, LbOptions::default())
                .unwrap(),
        )
    });

    group.finish();
}
