//! Micro-benchmark: solving the load-balancing LPs — the reduced Eq. (2)
//! formulation at campus scale, and the full Eq. (1) formulation on a
//! smaller instance.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdm_bench::{ExperimentConfig, World};
use sdm_core::{LbOptions, Strategy};
use sdm_workload::PolicyClassCounts;

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solve");
    group.sample_size(10);

    // campus-scale Eq. (2)
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(500_000, 5);
    let measured = world.run_strategy(Strategy::HotPotato, None, &flows);
    group.bench_function("eq2_campus", |b| {
        b.iter(|| {
            black_box(
                world
                    .controller
                    .solve_load_balanced(&measured.measurements, LbOptions::default())
                    .unwrap(),
            )
        })
    });

    // smaller instance for Eq. (1)
    let mut cfg = ExperimentConfig::campus(3);
    cfg.policy_counts = PolicyClassCounts {
        many_to_one: 3,
        one_to_many: 3,
        one_to_one: 3,
        companions: false,
    };
    let world_small = World::build(&cfg);
    let flows = world_small.flows(200_000, 5);
    let measured = world_small.run_strategy(Strategy::HotPotato, None, &flows);
    group.bench_function("eq1_campus_small", |b| {
        b.iter(|| {
            black_box(
                world_small
                    .controller
                    .solve_load_balanced_full(&measured.measurements, LbOptions::default())
                    .unwrap(),
            )
        })
    });
    group.bench_function("eq2_campus_small", |b| {
        b.iter(|| {
            black_box(
                world_small
                    .controller
                    .solve_load_balanced(&measured.measurements, LbOptions::default())
                    .unwrap(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
