//! Micro-benchmark: warm-started vs cold epoch re-solves (§III.C online
//! control loop).
//!
//! The scenario mirrors what `EpochLoop` does every epoch boundary: the
//! traffic matrix drifts (same support, shifting volumes — the common
//! case between adjacent epochs) and the controller re-solves Eq. (2).
//! The cold sweep solves every epoch from scratch; the warm sweep reuses
//! the previous epoch's simplex bases through [`sdm_core::LbWarmCache`].
//!
//! Alongside the two timings, the group records the summed **simplex
//! pivot counts** of each sweep as `pivots_cold` / `pivots_warm` —
//! deterministic counters `bench_gate` enforces on every host (the
//! warm sweep must pivot less).

use std::hint::black_box;

use sdm_bench::{ExperimentConfig, World};
use sdm_core::{LbOptions, LbWarmCache, Strategy, TrafficMatrix};
use sdm_util::bench::Runner;

/// Epochs in the sweep (first one is necessarily cold in both variants).
const EPOCHS: usize = 8;

/// Deterministic per-epoch drift: same support, volumes scaled per cell
/// so the LP shape is warm-startable but the optimum genuinely moves.
fn drift(base: &TrafficMatrix, epoch: usize) -> TrafficMatrix {
    let mut out = TrafficMatrix::new();
    for (i, (s, d, p, v)) in base.iter().enumerate() {
        let factor = 1.0 + 0.04 * ((i + epoch * 7) % 11) as f64;
        out.record(s, d, p, v * factor);
    }
    out
}

fn main() {
    let mut group = Runner::new("warm_start");

    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(500_000, 5);
    let measured = world.run_strategy(Strategy::HotPotato, None, &flows);
    let epochs: Vec<TrafficMatrix> =
        (0..EPOCHS).map(|e| drift(&measured.measurements, e)).collect();

    let cold_sweep = || {
        let mut pivots = 0u64;
        for m in &epochs {
            let (_, report) = world
                .controller
                .solve_load_balanced(m, LbOptions::default())
                .unwrap();
            pivots += report.iterations;
        }
        pivots
    };
    let warm_sweep = || {
        let mut cache = LbWarmCache::new();
        let mut pivots = 0u64;
        for m in &epochs {
            let (_, report) = world
                .controller
                .solve_load_balanced_with_cache(m, LbOptions::default(), &mut cache)
                .unwrap();
            pivots += report.iterations;
        }
        pivots
    };

    group.bench("epoch_sweep_cold", || black_box(cold_sweep()));
    group.bench("epoch_sweep_warm", || black_box(warm_sweep()));

    // Deterministic pivot totals across the sweep, for the gate and the
    // EXPERIMENTS.md table.
    let pivots_cold = cold_sweep();
    let pivots_warm = warm_sweep();
    group.record("pivots_cold", pivots_cold as f64);
    group.record("pivots_warm", pivots_warm as f64);
    eprintln!(
        "warm_start: {EPOCHS}-epoch sweep pivots {pivots_warm} warm vs {pivots_cold} cold \
({:.1}% saved)",
        (1.0 - pivots_warm as f64 / pivots_cold as f64) * 100.0
    );

    group.finish();
}
