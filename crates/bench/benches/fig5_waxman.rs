//! Benchmark wrapper for the **Figure 5** pipeline (Waxman topology,
//! HP vs Rand vs LB) at a reduced volume. The canonical full-scale table
//! is produced by `cargo run --release -p sdm-bench --bin fig5_waxman`.

use std::hint::black_box;

use sdm_bench::{figure_header, figure_row, ExperimentConfig, World};
use sdm_util::bench::Runner;

fn main() {
    let world = World::build(&ExperimentConfig::waxman(3));
    let flows = world.flows(200_000, 5);

    let cmp = world.compare_strategies(&flows);
    eprintln!("fig5 (reduced 200k pkts)\n{}\n{}", figure_header(), figure_row(200_000, &cmp));

    let mut group = Runner::new("fig5_waxman");
    group.bench("three_strategy_comparison_200k", || {
        black_box(world.compare_strategies(&flows).lb_report.lambda)
    });
    group.finish();
}
