//! Benchmark wrapper for the steering-encoding ablation: runtime cost of
//! steering one workload under IP-over-IP, label switching and strict
//! source routing. The full-detail table comes from the `label_switching`
//! binary.

use std::hint::black_box;

use sdm_bench::{ExperimentConfig, World};
use sdm_core::{EnforcementOptions, SteeringEncoding, Strategy};
use sdm_netsim::SimTime;
use sdm_util::bench::Runner;
use sdm_workload::WorkloadConfig;

fn main() {
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = sdm_workload::generate_flows(
        &world.generated,
        world.controller.addr_plan(),
        &WorkloadConfig {
            flows: 100,
            seed: 5,
            ..Default::default()
        },
    );
    let mut group = Runner::new("encodings");
    for (name, encoding) in [
        ("ip_over_ip", SteeringEncoding::IpOverIp),
        ("label_switching", SteeringEncoding::LabelSwitching),
        ("source_routing", SteeringEncoding::SourceRouting),
    ] {
        group.bench(&format!("steer_100_flows_x20/{name}"), || {
            let mut enf = world.controller.enforcement(
                Strategy::HotPotato,
                None,
                EnforcementOptions {
                    encoding,
                    ..Default::default()
                },
            );
            for (i, f) in flows.iter().enumerate() {
                enf.inject_flow_packets(f.five_tuple, 20, 500, SimTime(i as u64), 100);
            }
            enf.run();
            black_box(enf.sim().stats().delivered)
        });
    }
    group.finish();
}
