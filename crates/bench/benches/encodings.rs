//! Benchmark wrapper for the steering-encoding ablation: runtime cost of
//! steering one workload under IP-over-IP, label switching and strict
//! source routing. The full-detail table comes from the `label_switching`
//! binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sdm_bench::{ExperimentConfig, World};
use sdm_core::{EnforcementOptions, SteeringEncoding, Strategy};
use sdm_netsim::SimTime;
use sdm_workload::WorkloadConfig;

fn bench_encodings(c: &mut Criterion) {
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = sdm_workload::generate_flows(
        &world.generated,
        world.controller.addr_plan(),
        &WorkloadConfig {
            flows: 100,
            seed: 5,
            ..Default::default()
        },
    );
    let mut group = c.benchmark_group("encodings");
    group.sample_size(10);
    for (name, encoding) in [
        ("ip_over_ip", SteeringEncoding::IpOverIp),
        ("label_switching", SteeringEncoding::LabelSwitching),
        ("source_routing", SteeringEncoding::SourceRouting),
    ] {
        group.bench_with_input(BenchmarkId::new("steer_100_flows_x20", name), &encoding, |b, &enc| {
            b.iter(|| {
                let mut enf = world.controller.enforcement(
                    Strategy::HotPotato,
                    None,
                    EnforcementOptions {
                        encoding: enc,
                        ..Default::default()
                    },
                );
                for (i, f) in flows.iter().enumerate() {
                    enf.inject_flow_packets(f.five_tuple, 20, 500, SimTime(i as u64), 100);
                }
                enf.run();
                black_box(enf.sim().stats().delivered)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encodings);
criterion_main!(benches);
