//! Telemetry overhead: the zero-perturbation claim, measured.
//!
//! Two scales:
//!
//! * micro — a single hot-path record call on [`ShardTelemetry`], enabled
//!   vs disabled (the disabled call is the price every run pays);
//! * macro — a full campus enforcement run with telemetry off vs on, the
//!   number EXPERIMENTS.md quotes.
//!
//! Gated through `bench_gate` like every other group, so a PR that makes
//! the disabled path expensive fails CI.

use std::hint::black_box;

use sdm_bench::{ExperimentConfig, World};
use sdm_core::{EnforcementOptions, Strategy};
use sdm_telemetry::{Hop, ShardTelemetry};
use sdm_util::bench::Runner;
use sdm_workload::to_flow_specs;

fn main() {
    let mut group = Runner::new("telemetry");

    let on = ShardTelemetry::new(true);
    let off = ShardTelemetry::new(false);
    group.bench("record_counter_enabled", || {
        on.steer_decision(black_box(Hop::Proxy));
    });
    group.bench("record_counter_disabled", || {
        off.steer_decision(black_box(Hop::Proxy));
    });
    group.bench("record_hist_enabled", || {
        on.observe_run_length(black_box(17));
    });
    group.bench("record_hist_disabled", || {
        off.observe_run_length(black_box(17));
    });

    // Macro: identical 100k-packet campus runs, telemetry off vs on. The
    // two medians should be statistically indistinguishable — telemetry
    // only adds relaxed atomic increments off the scalar fast path.
    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(100_000, 7);
    let specs = to_flow_specs(&flows, 512);
    let run = |telemetry: bool| {
        let options = EnforcementOptions {
            telemetry: Some(telemetry),
            ..Default::default()
        };
        let mut enf = world
            .controller
            .enforcement(Strategy::HotPotato, None, options);
        for s in &specs {
            enf.inject_flow(s.flow, s.packets, s.payload);
        }
        enf.run();
        enf.sim().stats().delivered
    };
    group.bench("enforce_100k_telemetry_off", || black_box(run(false)));
    group.bench("enforce_100k_telemetry_on", || black_box(run(true)));

    group.finish();
}
