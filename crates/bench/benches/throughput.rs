//! Benchmark: packets-per-second of the vector (batched) hot path vs the
//! scalar path, on the Figure-4 campus hot-potato workload.
//!
//! Two regimes are measured:
//!
//! - **aggregate** (`hp_10m_*`): the full 10M-packet population injected
//!   through the exact flow-aggregate fast path (one weighted event per
//!   flow), at 1 and 4 shards — the configuration every figure binary
//!   runs. Aggregates collapse each flow into a single event, so
//!   same-flow runs have length 1 and batching can only amortise queue
//!   drains and device-lock acquisition.
//! - **packet-level** (`hp_1m_pktlevel_*`): a 1M-packet slice of the same
//!   population injected as individual back-to-back packets. Consecutive
//!   same-flow packets form real runs at each device, so the per-run
//!   flow/label-table probe amortisation engages — this is the regime the
//!   vector path is designed for, and the one `bench_gate` holds against
//!   the batched-speedup target.
//!
//! Batch size is set through `SDM_BATCH` before each bench — every shard's
//! private simulator reads it at construction — so `b1` runs the legacy
//! scalar loop and `b256` the vector loop over identical inputs (the
//! sanity asserts below pin that they produce identical results).
//! `bench_gate` derives pkt/s from the fixed packet volumes and enforces
//! the batched-vs-scalar speedup target on hosts with ≥4 cores, reporting
//! it informationally on smaller hosts.

use std::hint::black_box;

use sdm_bench::{ExperimentConfig, World};
use sdm_core::Strategy;
use sdm_util::bench::Runner;

/// Aggregate-path packet volume; `bench_gate` divides by the measured
/// median to report pkt/s, so keep in sync with `THROUGHPUT_PACKETS`
/// there.
const PACKETS: u64 = 10_000_000;

/// Packet-level volume (one event per packet per hop — two orders of
/// magnitude more events per packet than the aggregate path). Keep in
/// sync with `THROUGHPUT_PACKETS_PKTLEVEL` in `bench_gate`.
const PACKETS_PKTLEVEL: u64 = 1_000_000;

fn main() {
    // A full run takes seconds; keep the default sample count small
    // unless the caller asked for something specific.
    if std::env::var_os("SDM_BENCH_SAMPLES").is_none() {
        std::env::set_var("SDM_BENCH_SAMPLES", "5");
    }

    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(PACKETS, 3u64.wrapping_add(10));
    let pkt_flows = world.flows(PACKETS_PKTLEVEL, 3u64.wrapping_add(10));
    eprintln!(
        "throughput workload: {} flows, {} packets aggregate; {} flows, {} packets packet-level; {} hardware threads",
        flows.len(),
        flows.iter().map(|f| f.packets).sum::<u64>(),
        pkt_flows.len(),
        pkt_flows.iter().map(|f| f.packets).sum::<u64>(),
        sdm_util::par::hardware_threads(),
    );

    std::env::set_var("SDM_BATCH", "1");
    let scalar = world.run_strategy_sharded(Strategy::HotPotato, None, &flows, 1);
    let scalar_pkt = world.run_strategy_packets(Strategy::HotPotato, None, &pkt_flows);
    std::env::set_var("SDM_BATCH", "256");
    let batched = world.run_strategy_sharded(Strategy::HotPotato, None, &flows, 1);
    let batched_pkt = world.run_strategy_packets(Strategy::HotPotato, None, &pkt_flows);
    assert_eq!(scalar.loads, batched.loads, "batching must not change results");
    assert_eq!(scalar.delivered, batched.delivered, "batching must not change results");
    assert_eq!(scalar_pkt.loads, batched_pkt.loads, "batching must not change results");
    assert_eq!(
        scalar_pkt.delivered, batched_pkt.delivered,
        "batching must not change results"
    );

    let mut group = Runner::new("throughput");
    for (name, batch, shards) in [
        ("hp_10m_b1_shards1", "1", 1usize),
        ("hp_10m_b256_shards1", "256", 1),
        ("hp_10m_b1_shards4", "1", 4),
        ("hp_10m_b256_shards4", "256", 4),
    ] {
        std::env::set_var("SDM_BATCH", batch);
        let res = group.bench(name, || {
            black_box(
                world
                    .run_strategy_sharded(Strategy::HotPotato, None, &flows, shards)
                    .delivered,
            )
        });
        eprintln!(
            "{:<40} {:>10.0} pkt/s",
            format!("throughput/{name}"),
            PACKETS as f64 / (res.median_ns / 1e9)
        );
    }
    for (name, batch) in [("hp_1m_pktlevel_b1", "1"), ("hp_1m_pktlevel_b256", "256")] {
        std::env::set_var("SDM_BATCH", batch);
        let res = group.bench(name, || {
            black_box(
                world
                    .run_strategy_packets(Strategy::HotPotato, None, &pkt_flows)
                    .delivered,
            )
        });
        eprintln!(
            "{:<40} {:>10.0} pkt/s",
            format!("throughput/{name}"),
            PACKETS_PKTLEVEL as f64 / (res.median_ns / 1e9)
        );
    }
    std::env::remove_var("SDM_BATCH");
    group.finish();
}
