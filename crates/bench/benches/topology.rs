//! Micro-benchmark: topology substrate — OSPF convergence (all-pairs
//! Dijkstra) on both evaluation networks, generator cost, and workload
//! generation throughput.

use std::hint::black_box;

use sdm_netsim::AddressPlan;
use sdm_util::bench::Runner;
use sdm_workload::{evaluation_policies, generate_flows, PolicyClassCounts, WorkloadConfig};

fn main() {
    let mut group = Runner::new("topology");

    group.bench("campus_generate", || {
        black_box(sdm_topology::campus::campus(3))
    });
    group.bench("waxman_generate", || {
        black_box(sdm_topology::waxman::waxman(3))
    });

    let campus = sdm_topology::campus::campus(3);
    group.bench("campus_ospf_convergence", || {
        black_box(campus.topology().routing_tables())
    });
    let waxman = sdm_topology::waxman::waxman(3);
    group.bench("waxman_ospf_convergence", || {
        black_box(waxman.topology().routing_tables())
    });
    group.finish();

    let mut group = Runner::new("workload");
    let addrs = AddressPlan::new(&campus);
    let gp = evaluation_policies(&addrs, PolicyClassCounts::default(), 3);
    let cfg = WorkloadConfig {
        flows: 10_000,
        ..Default::default()
    };
    group.bench("generate_10k_flows", || {
        black_box(generate_flows(&gp, &addrs, &cfg).len())
    });
    group.finish();
}
