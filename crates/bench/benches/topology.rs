//! Micro-benchmark: topology substrate — OSPF convergence (all-pairs
//! Dijkstra) on both evaluation networks, generator cost, and workload
//! generation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use sdm_netsim::AddressPlan;
use sdm_workload::{evaluation_policies, generate_flows, PolicyClassCounts, WorkloadConfig};

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    group.sample_size(10);

    group.bench_function("campus_generate", |b| {
        b.iter(|| black_box(sdm_topology::campus::campus(3)))
    });
    group.bench_function("waxman_generate", |b| {
        b.iter(|| black_box(sdm_topology::waxman::waxman(3)))
    });

    let campus = sdm_topology::campus::campus(3);
    group.bench_function("campus_ospf_convergence", |b| {
        b.iter(|| black_box(campus.topology().routing_tables()))
    });
    let waxman = sdm_topology::waxman::waxman(3);
    group.bench_function("waxman_ospf_convergence", |b| {
        b.iter(|| black_box(waxman.topology().routing_tables()))
    });
    group.finish();

    let mut group = c.benchmark_group("workload");
    group.sample_size(10);
    let addrs = AddressPlan::new(&campus);
    let gp = evaluation_policies(&addrs, PolicyClassCounts::default(), 3);
    let cfg = WorkloadConfig {
        flows: 10_000,
        ..Default::default()
    };
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("generate_10k_flows", |b| {
        b.iter(|| black_box(generate_flows(&gp, &addrs, &cfg).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);
