//! Reach-checker wall-clock vs topology size (PR 10): how long the
//! symbolic isolation verifier takes to prove/refute the committed
//! assertion sets on the campus (36 nodes), Waxman-425 and hierarchical
//! (≈21k nodes) fabrics, plus the flow-class counts that drove each
//! verdict.
//!
//! `*_check` times `check_assertions` alone (views and routes prebuilt —
//! on the hierarchical fabric the first check also pays the on-demand
//! per-destination Dijkstra fills, reported separately as
//! `hier_check_cold`). `hier_build` is the one-off cost of generating the
//! 21k-node fabric and assembling its symbolic view. The recorded
//! `*_flow_classes` counters are the number of symbolic classes examined
//! — the checker's work unit; no packet is ever enumerated.

use std::time::Instant;

use sdm_bench::reach_worlds::{hier_reach, world_reach};
use sdm_bench::ExperimentConfig;
use sdm_util::bench::Runner;
use sdm_verify::reach::{check_assertions, parse_assertions};

const CAMPUS_ASSERTS: &str = include_str!("../../../results/assertions_campus.txt");
const HIER_ASSERTS: &str = include_str!("../../../results/assertions_hier.txt");

fn main() {
    let mut runner = Runner::new("reach");

    // The committed campus assertion file uses the shared 10.0.0.0/8
    // stub scheme, so it checks unchanged on both controller worlds.
    let assertions = parse_assertions(CAMPUS_ASSERTS).expect("campus assertions parse");
    for (name, cfg) in [
        ("campus", ExperimentConfig::campus(1)),
        ("waxman", ExperimentConfig::waxman(1)),
    ] {
        let wr = world_reach(&cfg);
        let routes = wr.world.controller.routes();
        let report = check_assertions(&wr.view, routes, &assertions);
        runner.record(
            &format!("{name}_flow_classes"),
            report.flow_classes as f64,
        );
        runner.bench(&format!("{name}_check"), || {
            check_assertions(&wr.view, routes, &assertions)
        });
    }

    let assertions = parse_assertions(HIER_ASSERTS).expect("hier assertions parse");
    let t = Instant::now();
    let hr = hier_reach(1);
    runner.record("hier_build", t.elapsed().as_nanos() as f64);

    let routes = hr.plan.topology().dest_routes();
    let t = Instant::now();
    let report = check_assertions(&hr.view, &routes, &assertions);
    runner.record("hier_check_cold", t.elapsed().as_nanos() as f64);
    runner.record("hier_flow_classes", report.flow_classes as f64);
    runner.bench("hier_check", || {
        check_assertions(&hr.view, &routes, &assertions)
    });

    runner.finish();
}
