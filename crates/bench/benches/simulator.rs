//! Micro-benchmark: discrete-event simulator throughput — full enforcement
//! runs (events/second) and plain routing without policies.

use std::hint::black_box;

use sdm_bench::{ExperimentConfig, World};
use sdm_core::Strategy;
use sdm_netsim::{Packet, Simulator, StubId};
use sdm_util::bench::Runner;

fn main() {
    let mut group = Runner::new("simulator");

    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(100_000, 5);
    group.bench("enforcement_campus_100k_pkts", || {
        let run = world.run_strategy(Strategy::HotPotato, None, &flows);
        black_box(run.delivered)
    });

    // plain routing: no devices, raw hop-by-hop forwarding
    let plan = sdm_topology::campus::campus(3);
    group.bench("plain_routing_1k_flows", || {
        let mut sim = Simulator::new(&plan);
        for i in 0..1000u32 {
            let ft = sdm_netsim::FiveTuple {
                src: sim.addresses().host(StubId(i % 10), i),
                dst: sim.addresses().host(StubId((i + 1) % 10), i),
                src_port: (i % 60_000) as u16,
                dst_port: 80,
                proto: sdm_netsim::Protocol::Tcp,
            };
            sim.inject_from_stub(StubId(i % 10), Packet::data(ft, 512));
        }
        black_box(sim.run_until_idle())
    });

    group.finish();
}
