//! Micro-benchmark: the §III.D flow cache — hit-path lookups, miss-path
//! insert, and the flow-hash itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdm_netsim::{FiveTuple, Ipv4Addr, Protocol, SimTime};
use sdm_policy::{ActionList, FlowTable, NetworkFunction, PolicyId};

fn flows(n: usize) -> Vec<FiveTuple> {
    (0..n as u32)
        .map(|i| FiveTuple {
            src: Ipv4Addr(0x0a00_0000 + i),
            dst: Ipv4Addr(0x0a10_0000 + (i % 999)),
            src_port: (1000 + i % 50_000) as u16,
            dst_port: 80,
            proto: Protocol::Tcp,
        })
        .collect()
}

fn bench_flow_table(c: &mut Criterion) {
    let fts = flows(10_000);
    let mut group = c.benchmark_group("flow_table");

    group.bench_function("lookup_hit", |b| {
        let mut table = FlowTable::new(u64::MAX / 2);
        for ft in &fts {
            table.insert_positive(
                *ft,
                PolicyId(0),
                ActionList::chain([NetworkFunction::Firewall]),
                SimTime(0),
            );
        }
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % fts.len();
            black_box(table.lookup(&fts[i], SimTime(1), 1).is_some())
        })
    });

    group.bench_function("lookup_miss", |b| {
        let mut table = FlowTable::new(u64::MAX / 2);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % fts.len();
            black_box(table.lookup(&fts[i], SimTime(1), 1).is_none())
        })
    });

    group.bench_function("insert_positive", |b| {
        let mut table = FlowTable::new(u64::MAX / 2);
        let actions = ActionList::chain([NetworkFunction::Firewall, NetworkFunction::Ids]);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % fts.len();
            table.insert_positive(fts[i], PolicyId(0), actions.clone(), SimTime(0));
        })
    });

    group.bench_function("stable_hash", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % fts.len();
            black_box(fts[i].stable_hash())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_flow_table);
criterion_main!(benches);
