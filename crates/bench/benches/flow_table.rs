//! Micro-benchmark: the §III.D flow cache — hit-path lookups, miss-path
//! insert, and the flow-hash itself.

use std::hint::black_box;

use sdm_netsim::{FiveTuple, Ipv4Addr, Protocol, SimTime};
use sdm_policy::{ActionList, FlowTable, NetworkFunction, PolicyId};
use sdm_util::bench::Runner;

fn flows(n: usize) -> Vec<FiveTuple> {
    (0..n as u32)
        .map(|i| FiveTuple {
            src: Ipv4Addr(0x0a00_0000 + i),
            dst: Ipv4Addr(0x0a10_0000 + (i % 999)),
            src_port: (1000 + i % 50_000) as u16,
            dst_port: 80,
            proto: Protocol::Tcp,
        })
        .collect()
}

fn main() {
    let fts = flows(10_000);
    let mut group = Runner::new("flow_table");

    {
        let mut table = FlowTable::new(u64::MAX / 2);
        for ft in &fts {
            table.insert_positive(
                *ft,
                PolicyId(0),
                ActionList::chain([NetworkFunction::Firewall]),
                SimTime(0),
            );
        }
        let mut i = 0;
        group.bench("lookup_hit", || {
            i = (i + 1) % fts.len();
            black_box(table.lookup(&fts[i], SimTime(1), 1).is_some())
        });
    }

    {
        let mut table = FlowTable::new(u64::MAX / 2);
        let mut i = 0;
        group.bench("lookup_miss", || {
            i = (i + 1) % fts.len();
            black_box(table.lookup(&fts[i], SimTime(1), 1).is_none())
        });
    }

    {
        let mut table = FlowTable::new(u64::MAX / 2);
        let actions = ActionList::chain([NetworkFunction::Firewall, NetworkFunction::Ids]);
        let mut i = 0;
        group.bench("insert_positive", || {
            i = (i + 1) % fts.len();
            table.insert_positive(fts[i], PolicyId(0), actions.clone(), SimTime(0));
        });
    }

    {
        let mut i = 0;
        group.bench("stable_hash", || {
            i = (i + 1) % fts.len();
            black_box(fts[i].stable_hash())
        });
    }

    group.finish();

    // Expiry maintenance: the legacy full-table purge versus one step of
    // the amortized sweep. Both run against a steady-state table of 10k
    // *live* entries (nothing expires), so every iteration sees the same
    // table and the numbers compare the per-call maintenance cost a
    // device pays on its packet path.
    let mut cache = Runner::new("flow_cache");

    {
        let mut table = FlowTable::new(u64::MAX / 2);
        for ft in &fts {
            table.insert_positive(
                *ft,
                PolicyId(0),
                ActionList::chain([NetworkFunction::Firewall]),
                SimTime(0),
            );
        }
        let mut now = 0u64;
        cache.bench("purge_expired_full_pass_10k", || {
            now += 1;
            black_box(table.purge_expired(SimTime(now)))
        });
    }

    {
        let mut table = FlowTable::new(u64::MAX / 2);
        for ft in &fts {
            table.insert_positive(
                *ft,
                PolicyId(0),
                ActionList::chain([NetworkFunction::Firewall]),
                SimTime(0),
            );
        }
        let mut now = 0u64;
        cache.bench("amortized_sweep_step_64", || {
            now += 1;
            black_box(table.sweep(SimTime(now), 64))
        });
    }

    cache.finish();
}
