//! Benchmark: the flow-sharded parallel data plane on the Figure-4
//! campus workload at full scale (10M packets), 1 shard vs 4 shards.
//!
//! The two benches run the *same* hot-potato enforcement over the same
//! flow list — the sharded runtime guarantees bit-identical output — so
//! their median ratio is a pure parallel-speedup measurement. `bench_gate`
//! enforces a ≥2x speedup at 4 shards when the host has ≥4 cores and
//! reports the ratio informationally otherwise (a 1-core CI box cannot
//! speed up by threading).

use std::hint::black_box;

use sdm_bench::{ExperimentConfig, World};
use sdm_core::Strategy;
use sdm_util::bench::Runner;

fn main() {
    // A full 10M-packet run takes seconds; keep the default sample count
    // small unless the caller asked for something specific.
    if std::env::var_os("SDM_BENCH_SAMPLES").is_none() {
        std::env::set_var("SDM_BENCH_SAMPLES", "5");
    }

    let world = World::build(&ExperimentConfig::campus(3));
    let flows = world.flows(10_000_000, 3u64.wrapping_add(10));
    eprintln!(
        "sharding workload: {} flows, {} packets, {} hardware threads",
        flows.len(),
        flows.iter().map(|f| f.packets).sum::<u64>(),
        sdm_util::par::hardware_threads(),
    );

    let sanity1 = world.run_strategy_sharded(Strategy::HotPotato, None, &flows, 1);
    let sanity4 = world.run_strategy_sharded(Strategy::HotPotato, None, &flows, 4);
    assert_eq!(sanity1.loads, sanity4.loads, "sharding must not change results");

    let mut group = Runner::new("sharding");
    group.bench("hp_10m_shards1", || {
        black_box(
            world
                .run_strategy_sharded(Strategy::HotPotato, None, &flows, 1)
                .delivered,
        )
    });
    group.bench("hp_10m_shards4", || {
        black_box(
            world
                .run_strategy_sharded(Strategy::HotPotato, None, &flows, 4)
                .delivered,
        )
    });
    group.finish();
}
