//! Policy-state scaling (PR 9): the open-addressed flow cache at 10k /
//! 100k / 1M entries.
//!
//! The `lookup_hot_*` series probes the *same* 512-flow working set
//! against tables of increasing size, so the measured growth isolates the
//! structural cost (probe lengths, resize residue) from memory-system
//! effects — the working set is small enough that its probe cells and slab
//! lines stay TLB/L2-resident even inside the 1M-entry table's ~48 MB
//! footprint (a larger hot set measures page-walk latency on the probe
//! array, which any million-entry structure pays identically). That ratio
//! (`lookup_hot_1m / lookup_hot_10k ≤ 1.5×`) is the scaling target
//! `bench_gate` enforces against the committed baseline.
//! `lookup_cold_1m` walks all million keys and is informational (it mostly
//! measures the memory system). Recorded counters carry the memory side:
//! `bytes_per_entry_*` (allocation ÷ occupancy) and the negative-cache
//! exhaustion-attack outcome (`negcache_len_attack` must stay at or below
//! `negcache_cap_attack` no matter how many one-packet attack flows hit
//! the table — also gate-enforced).

use std::hint::black_box;

use sdm_netsim::{AddressPlan, FiveTuple, Ipv4Addr, Protocol, SimTime};
use sdm_policy::{ActionList, FlowTable, NetworkFunction, PolicyId};
use sdm_topology::hierarchical::{hierarchical, HierarchicalConfig};
use sdm_util::bench::Runner;
use sdm_workload::{
    elephant_skew, evaluation_policies, flash_crowd, ElephantSkewConfig, PolicyClassCounts,
};

/// Distinct five-tuples; `i` feeds the source address directly so any
/// count up to 2^24 stays collision-free.
fn flows(n: usize) -> Vec<FiveTuple> {
    (0..n as u32)
        .map(|i| FiveTuple {
            src: Ipv4Addr(0x0a00_0000 + i),
            dst: Ipv4Addr(0x0a10_0000 + (i % 999)),
            src_port: (1000 + i % 50_000) as u16,
            dst_port: 80,
            proto: Protocol::Tcp,
        })
        .collect()
}

fn filled(fts: &[FiveTuple]) -> FlowTable {
    let mut table = FlowTable::new(u64::MAX / 2);
    let actions = ActionList::chain([NetworkFunction::Firewall]);
    for ft in fts {
        table.insert_positive(*ft, PolicyId(0), actions.clone(), SimTime(0));
    }
    table
}

const HOT: usize = 512;

fn main() {
    let fts = flows(1_000_000);
    let mut group = Runner::new("table_scale");

    // --- hot-working-set lookups across table sizes ---------------------
    for &(label, size) in &[("10k", 10_000usize), ("100k", 100_000), ("1m", 1_000_000)] {
        let mut table = filled(&fts[..size]);
        let mut i = 0;
        group.bench(&format!("lookup_hot_{label}"), || {
            i = (i + 1) % HOT;
            black_box(table.lookup(&fts[i], SimTime(1), 1).is_some())
        });
        group.record(
            &format!("bytes_per_entry_{label}"),
            table.allocated_bytes() as f64 / table.len() as f64,
        );
    }

    // --- cold sweep over the full million (informational) ---------------
    {
        let mut table = filled(&fts);
        let mut i = 0;
        group.bench("lookup_cold_1m", || {
            i = (i + 1) % fts.len();
            black_box(table.lookup(&fts[i], SimTime(1), 1).is_some())
        });
    }

    // --- steady-state insert (replace) at 100k ---------------------------
    {
        let mut table = filled(&fts[..100_000]);
        let actions = ActionList::chain([NetworkFunction::Firewall, NetworkFunction::Ids]);
        let mut i = 0;
        group.bench("insert_churn_100k", || {
            i = (i + 1) % 100_000;
            table.insert_positive(fts[i], PolicyId(0), actions.clone(), SimTime(0));
        });
    }

    // --- one amortized sweep step against the million-entry table -------
    {
        let mut table = filled(&fts);
        let mut now = 0u64;
        group.bench("sweep_step_64_1m", || {
            now += 1;
            black_box(table.sweep(SimTime(now), 64))
        });
    }

    // --- adversarial workload mixes through the cache hot path -----------
    // Flash crowd: distinct sources, one policy — install-then-hit churn
    // concentrated on one destination chain. Elephant skew: 10 elephants
    // among 100k mice — the steady state is mouse installs punctuated by
    // elephant run-hits.
    {
        let plan = sdm_topology::campus::campus(1);
        let addrs = AddressPlan::new(&plan);
        let gp = evaluation_policies(&addrs, PolicyClassCounts::default(), 3);
        let crowd = flash_crowd(&gp, &addrs, 100_000, 9);
        let mut table = FlowTable::new(u64::MAX / 2);
        let mut i = 0;
        group.bench("flash_crowd_churn_100k", || {
            i = (i + 1) % crowd.len();
            let f = &crowd[i];
            if table.lookup(&f.five_tuple, SimTime(1), 1).is_none() {
                let actions = gp.set.get(f.policy).expect("crowd policy").actions.clone();
                table.insert_positive(f.five_tuple, f.policy, actions, SimTime(1));
            }
            black_box(table.len())
        });
        group.record("flash_crowd_classes", table.policy_classes() as f64);

        let mix = elephant_skew(
            &gp,
            &addrs,
            &ElephantSkewConfig { flows: 100_000, ..ElephantSkewConfig::default() },
        );
        let mut table = FlowTable::new(u64::MAX / 2);
        let mut i = 0;
        group.bench("elephant_skew_100k", || {
            i = (i + 1) % mix.len();
            let f = &mix[i];
            match table.lookup(&f.five_tuple, SimTime(1), 1) {
                Some(_) => table.record_run_hit(f.packets.saturating_sub(1)),
                None => {
                    let actions = gp.set.get(f.policy).expect("mix policy").actions.clone();
                    table.insert_positive(f.five_tuple, f.policy, actions, SimTime(1));
                }
            }
            black_box(table.len())
        });
    }

    // --- the ISP-scale topology axis (informational records) -------------
    // tens of thousands of routers: the table population above is the flow
    // state such a composition funnels through each border proxy
    {
        let cfg = HierarchicalConfig::large();
        let plan = hierarchical(&cfg, 5);
        group.record("hierarchical_nodes", plan.topology().node_count() as f64);
        group.record("hierarchical_links", plan.topology().link_count() as f64);
    }

    // --- exhaustion attack: a million one-packet no-match flows ----------
    // 1024 sets × 8 ways = 8192-entry cap; the table must shed the rest.
    {
        let mut table = FlowTable::with_negative_sets(u64::MAX / 2, 1024);
        for ft in &fts {
            table.insert_negative(*ft, SimTime(0));
        }
        group.record("negcache_len_attack", table.negative_len() as f64);
        group.record("negcache_cap_attack", table.negative_capacity() as f64);
        group.record("negcache_evictions_attack", table.negative_evictions() as f64);
        group.record(
            "negcache_bytes_attack",
            (table.allocated_bytes() - FlowTable::with_negative_sets(u64::MAX / 2, 1024).allocated_bytes())
                as f64,
        );
    }

    group.finish();
}
