//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§IV), plus the ablations documented in DESIGN.md.
//!
//! The pipeline mirrors the paper's methodology:
//!
//! 1. build the topology (campus or Waxman) and the middlebox deployment
//!    (WP=4, FW=7, IDS=7, TM=4 on random core routers);
//! 2. generate the three policy classes and a power-law flow population
//!    scaled to a total packet budget;
//! 3. run **hot-potato** enforcement — its proxies measure the per-policy
//!    traffic matrix exactly as §III.C prescribes;
//! 4. hand the measurements to the controller, solve the Eq. (2) LP, and
//!    rerun the same flows under **load-balanced** enforcement;
//! 5. run **random** enforcement for the third baseline;
//! 6. report per-middlebox-type loads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reach_worlds;
pub mod replay;

use sdm_core::{
    Controller, Deployment, EnforcementOptions, KConfig, LbOptions, LbReport, LoadReport,
    Strategy, TrafficMatrix,
};
use sdm_netsim::AddressPlan;
use sdm_policy::NetworkFunction;
use sdm_topology::NetworkPlan;
use sdm_workload::{
    evaluation_policies, generate_flows_with_total, to_flow_specs, Flow, GeneratedPolicies,
    PolicyClassCounts, WorkloadConfig,
};

/// Which evaluation topology to build (§IV.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// The real-world campus network: 2 gateways, 16 cores, 10 edges.
    Campus,
    /// The Waxman random topology: 25 cores, 400 edges.
    Waxman,
}

/// Configuration of one experiment world.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Topology to generate.
    pub topology: TopologyKind,
    /// Seed for topology, deployment, policies and flows.
    pub seed: u64,
    /// Policies per class.
    pub policy_counts: PolicyClassCounts,
    /// Middlebox counts in the order WP, FW, IDS, TM.
    pub mbox_counts: [usize; 4],
    /// Candidate-set sizes.
    pub k: KConfig,
}

impl ExperimentConfig {
    /// The paper's campus setting.
    pub fn campus(seed: u64) -> Self {
        ExperimentConfig {
            topology: TopologyKind::Campus,
            seed,
            policy_counts: PolicyClassCounts::default(),
            mbox_counts: [4, 7, 7, 4],
            k: KConfig::paper_default(),
        }
    }

    /// The paper's Waxman setting.
    pub fn waxman(seed: u64) -> Self {
        ExperimentConfig {
            topology: TopologyKind::Waxman,
            ..Self::campus(seed)
        }
    }
}

/// A fully built experiment world: network, deployment, controller and
/// generated policies.
pub struct World {
    /// The central controller (owns topology, deployment, policies).
    pub controller: Controller,
    /// Generated policy metadata (classes, endpoints).
    pub generated: GeneratedPolicies,
    /// The deployment (kept separately for load reporting).
    pub deployment: Deployment,
}

impl World {
    /// Builds the world for a configuration.
    pub fn build(cfg: &ExperimentConfig) -> World {
        let plan: NetworkPlan = match cfg.topology {
            TopologyKind::Campus => sdm_topology::campus::campus(cfg.seed),
            TopologyKind::Waxman => sdm_topology::waxman::waxman(cfg.seed),
        };
        let deployment =
            Deployment::evaluation_with_counts(&plan, cfg.seed.wrapping_add(1), &cfg.mbox_counts);
        let addrs = AddressPlan::new(&plan);
        let generated =
            evaluation_policies(&addrs, cfg.policy_counts, cfg.seed.wrapping_add(2));
        let controller = Controller::new(
            plan,
            deployment.clone(),
            generated.set.clone(),
            cfg.k.clone(),
        );
        World {
            controller,
            generated,
            deployment,
        }
    }

    /// Generates flows totalling `total_packets` packets.
    pub fn flows(&self, total_packets: u64, seed: u64) -> Vec<Flow> {
        let cfg = WorkloadConfig {
            seed,
            ..Default::default()
        };
        generate_flows_with_total(
            &self.generated,
            self.controller.addr_plan(),
            &cfg,
            total_packets,
        )
    }

    /// Runs one strategy over a flow population (aggregate fast path) and
    /// returns per-middlebox loads plus the measured traffic matrix.
    pub fn run_strategy(
        &self,
        strategy: Strategy,
        weights: Option<sdm_core::SteeringWeights>,
        flows: &[Flow],
    ) -> StrategyRun {
        let mut enf = self.controller.enforcement(
            strategy,
            weights,
            EnforcementOptions::default(),
        );
        for f in flows {
            enf.inject_flow(f.five_tuple, f.packets, 512);
        }
        enf.run();
        StrategyRun {
            loads: enf.middlebox_loads(),
            report: enf.load_report(&self.deployment),
            measurements: enf.measurements(),
            delivered: enf.sim().stats().delivered + enf.sim().stats().delivered_external,
            link_hops: enf.sim().stats().link_hops,
        }
    }

    /// [`World::run_strategy`] in packet-level mode: every flow is
    /// injected as individual back-to-back packets (payload 512, gap 0)
    /// instead of one weighted aggregate. Much slower — one event per
    /// packet per hop — but it exercises the regime the vector execution
    /// path is built for: consecutive same-flow packets forming runs at
    /// each device. Used by the `throughput` bench group.
    pub fn run_strategy_packets(
        &self,
        strategy: Strategy,
        weights: Option<sdm_core::SteeringWeights>,
        flows: &[Flow],
    ) -> StrategyRun {
        let mut enf = self.controller.enforcement(
            strategy,
            weights,
            EnforcementOptions::default(),
        );
        for f in flows {
            enf.inject_flow_packets(f.five_tuple, f.packets, 512, sdm_netsim::SimTime(0), 0);
        }
        enf.run();
        StrategyRun {
            loads: enf.middlebox_loads(),
            report: enf.load_report(&self.deployment),
            measurements: enf.measurements(),
            delivered: enf.sim().stats().delivered + enf.sim().stats().delivered_external,
            link_hops: enf.sim().stats().link_hops,
        }
    }

    /// [`World::run_strategy`] over the flow-sharded parallel runtime:
    /// identical results (the merge is deterministic — see
    /// [`sdm_core::Controller::run_sharded`]), wall-clock divided across
    /// `shards` worker threads on multicore hosts.
    pub fn run_strategy_sharded(
        &self,
        strategy: Strategy,
        weights: Option<sdm_core::SteeringWeights>,
        flows: &[Flow],
        shards: usize,
    ) -> StrategyRun {
        let specs = to_flow_specs(flows, 512);
        let run = self.controller.run_sharded(
            strategy,
            weights.as_ref(),
            EnforcementOptions::default(),
            &specs,
            shards,
        );
        StrategyRun {
            loads: run.loads.clone(),
            report: run.load_report(&self.deployment),
            measurements: run.measurements,
            delivered: run.stats.delivered + run.stats.delivered_external,
            link_hops: run.stats.link_hops,
        }
    }

    /// The full three-strategy comparison of §IV.B at one traffic volume:
    /// HP (which doubles as the measurement pass), Rand, and LB driven by
    /// the Eq. (2) LP on HP's measurements.
    ///
    /// # Panics
    ///
    /// Panics if the load-balancing LP fails (a deployment must offer
    /// every function the policies use).
    pub fn compare_strategies(&self, flows: &[Flow]) -> Comparison {
        let hp = self.run_strategy(Strategy::HotPotato, None, flows);
        let rand = self.run_strategy(Strategy::Random { salt: 0xDA7A }, None, flows);
        let (weights, lb_report) = self
            .controller
            .solve_load_balanced(&hp.measurements, LbOptions::default())
            .expect("load-balancing LP must solve");
        let lb = self.run_strategy(Strategy::LoadBalanced, Some(weights), flows);
        Comparison {
            hp,
            rand,
            lb,
            lb_report,
        }
    }

    /// [`World::compare_strategies`] over the flow-sharded runtime. With
    /// any `shards` value this produces bit-identical numbers to the
    /// legacy path (the sharded-equivalence property test pins this); on a
    /// multicore host it is the faster way to regenerate Figures 4–5 and
    /// Table III.
    ///
    /// # Panics
    ///
    /// Same conditions as [`World::compare_strategies`].
    pub fn compare_strategies_sharded(&self, flows: &[Flow], shards: usize) -> Comparison {
        let hp = self.run_strategy_sharded(Strategy::HotPotato, None, flows, shards);
        let rand =
            self.run_strategy_sharded(Strategy::Random { salt: 0xDA7A }, None, flows, shards);
        let (weights, lb_report) = self
            .controller
            .solve_load_balanced(&hp.measurements, LbOptions::default())
            .expect("load-balancing LP must solve");
        let lb = self.run_strategy_sharded(Strategy::LoadBalanced, Some(weights), flows, shards);
        Comparison {
            hp,
            rand,
            lb,
            lb_report,
        }
    }
}

/// Result of one strategy run.
pub struct StrategyRun {
    /// Per-middlebox packet loads.
    pub loads: Vec<u64>,
    /// Per-type summary.
    pub report: LoadReport,
    /// Traffic matrix the proxies measured during the run.
    pub measurements: TrafficMatrix,
    /// Packets delivered end-to-end.
    pub delivered: u64,
    /// Router-to-router link traversals across the run.
    pub link_hops: u64,
}

impl StrategyRun {
    /// Average router-to-router hops per delivered packet.
    pub fn hops_per_packet(&self) -> f64 {
        self.link_hops as f64 / self.delivered.max(1) as f64
    }
}

/// The three-strategy comparison at one traffic volume.
pub struct Comparison {
    /// Hot-potato run.
    pub hp: StrategyRun,
    /// Random run.
    pub rand: StrategyRun,
    /// Load-balanced run.
    pub lb: StrategyRun,
    /// LP diagnostics for the LB run.
    pub lb_report: LbReport,
}

/// The four middlebox types in the paper's plotting order (Figures 4–5:
/// FW, IDS, WP, TM).
pub const PLOT_ORDER: [NetworkFunction; 4] = [
    NetworkFunction::Firewall,
    NetworkFunction::Ids,
    NetworkFunction::WebProxy,
    NetworkFunction::TrafficMonitor,
];

/// Formats one figure row: total volume plus max load per type for the
/// three strategies.
pub fn figure_row(total: u64, c: &Comparison) -> String {
    let mut s = format!("{:>10}", total);
    for f in PLOT_ORDER {
        let hp = c.hp.report.row(f).map_or(0, |r| r.max);
        let rd = c.rand.report.row(f).map_or(0, |r| r.max);
        let lb = c.lb.report.row(f).map_or(0, |r| r.max);
        s.push_str(&format!(
            " | {:>9} {:>9} {:>9}",
            hp, rd, lb
        ));
    }
    s
}

/// Header line matching [`figure_row`].
pub fn figure_header() -> String {
    let mut s = format!("{:>10}", "packets");
    for f in PLOT_ORDER {
        s.push_str(&format!(
            " | {:>9} {:>9} {:>9}",
            format!("{}-HP", f.abbrev()),
            format!("{}-Rd", f.abbrev()),
            format!("{}-LB", f.abbrev()),
        ));
    }
    s
}

/// Parses `--key value`-style arguments from a bin's argv; returns the
/// value for `key` if present.
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end comparison: LB must not exceed HP's maximum
    /// load on any type, and every strategy delivers all packets.
    #[test]
    fn small_campus_comparison_shape() {
        let cfg = ExperimentConfig::campus(3);
        let world = World::build(&cfg);
        let flows = world.flows(50_000, 99);
        let total: u64 = flows.iter().map(|f| f.packets).sum();
        let c = world.compare_strategies(&flows);
        assert_eq!(c.hp.delivered, total);
        assert_eq!(c.lb.delivered, total);
        assert_eq!(c.rand.delivered, total);
        // headline: LB's worst-loaded box is no worse than HP's (small
        // hash-split noise allowed)
        let hp_max = c.hp.report.overall_max() as f64;
        let lb_max = c.lb.report.overall_max() as f64;
        assert!(
            lb_max <= hp_max * 1.10,
            "LB {lb_max} should not exceed HP {hp_max}"
        );
    }

    #[test]
    fn figure_rows_format() {
        assert!(figure_header().contains("FW-HP"));
        assert!(figure_header().contains("TM-LB"));
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--volumes", "1,2", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--seed").as_deref(), Some("7"));
        assert_eq!(arg_value(&args, "--volumes").as_deref(), Some("1,2"));
        assert_eq!(arg_value(&args, "--missing"), None);
    }
}
