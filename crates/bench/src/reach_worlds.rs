//! Pre-packaged symbolic worlds for the reach checker — shared by the
//! `sdm-reach` binary, the `reach` bench group and the replay property
//! tests.
//!
//! Two shapes:
//!
//! * **Controller-backed** ([`world_reach`]): the campus/Waxman
//!   evaluation worlds. The [`ReachView`] is extracted from a live
//!   [`Controller`](sdm_core::Controller), so every `R0xx` witness can
//!   be lowered to a [`ReplayScenario`](sdm_verify::witness::ReplayScenario)
//!   and executed by [`crate::replay`].
//! * **Plan-backed** ([`hier_reach`]): the ≈21k-node hierarchical
//!   fabric. A controller at that scale would materialise all-pairs
//!   routing tables (gigabytes), so the view is assembled directly from
//!   the [`NetworkPlan`] and checked against on-demand per-destination
//!   routes ([`sdm_topology::DestRoutes`]). Addressing is synthetic —
//!   the fabric has more stubs than [`sdm_netsim::AddressPlan`]
//!   supports — with stub `s` at `8.0.0.0 + (s << 12)` `/20` inside an
//!   `8.0.0.0/5` enterprise.

use sdm_core::{EnforcementOptions, Strategy};
use sdm_netsim::{Ipv4Addr, Prefix};
use sdm_policy::NetworkFunction;
use sdm_topology::hierarchical::{hierarchical, HierarchicalConfig};
use sdm_topology::NetworkPlan;
use sdm_verify::plan::{CandidateSet, ChainView, MboxView, OptionsView, PlanView, Point};
use sdm_verify::reach::{FlowClass, ReachView, RouteView, RuleView, StrategyView};

use crate::{ExperimentConfig, World};

/// A controller-backed symbolic world (campus or Waxman).
pub struct WorldReach {
    /// The live evaluation world (controller, deployment, policies).
    pub world: World,
    /// Its symbolic reach view under hot-potato steering.
    pub view: ReachView,
    /// The runtime options the view reflects (reuse them for replays so
    /// the data plane matches what was verified).
    pub options: EnforcementOptions,
}

/// Builds a controller-backed reach world under hot-potato steering.
///
/// Hot-potato gives every chain stage a singleton steering support, so
/// every witness the checker emits is deterministic and replayable.
pub fn world_reach(cfg: &ExperimentConfig) -> WorldReach {
    let world = World::build(cfg);
    let options = EnforcementOptions::default();
    let view = sdm_core::reach_view(&world.controller, Strategy::HotPotato, None, &options);
    WorldReach {
        world,
        view,
        options,
    }
}

/// Re-checks a controller-backed world in the hazard state "the
/// middlebox hot-potato pins first for the first enforced policy just
/// failed" — exactly the stale-pinned-flow window that opens when a box
/// crashes before its proxies' flow caches expire. Runs with an empty
/// assertion set, so the returned report carries only `R00x` hazard
/// findings (each lowered to a replayable scenario). Returns the failed
/// box alongside the report.
pub fn hazard_pass(wr: &mut WorldReach) -> (u32, sdm_verify::reach::ReachReport) {
    let first_fn = wr
        .view
        .rules
        .iter()
        .find_map(|r| r.chain.first().copied())
        .expect("evaluation worlds always install enforced policies");
    let failed = wr
        .view
        .plan
        .candidates
        .iter()
        .find(|c| matches!(c.point, Point::Proxy(_)) && c.function == first_fn)
        .and_then(|c| c.members.first().copied())
        .expect("every stub proxy has a candidate set per used function");

    wr.view.hazards = Some(sdm_verify::reach::HazardView {
        prev_weights: None,
        failed_now: vec![failed],
    });
    let report = sdm_verify::reach::check_assertions(
        &wr.view,
        wr.world.controller.routes(),
        &[],
    );
    wr.view.hazards = None;
    (failed, report)
}

/// Base address of the synthetic hierarchical enterprise (`8.0.0.0/5`).
pub const HIER_BASE: u32 = 0x0800_0000;
/// Prefix length of the synthetic enterprise space.
pub const HIER_ENTERPRISE_LEN: u8 = 5;
/// Bits per synthetic stub subnet (`/20` ⇒ 12 host bits… shifted by 12).
pub const HIER_STUB_SHIFT: u32 = 12;
/// Prefix length of each synthetic stub subnet.
pub const HIER_STUB_LEN: u8 = 20;
/// Middleboxes placed on the hierarchical fabric (first half firewalls,
/// second half IDSes).
pub const HIER_BOXES: usize = 8;

/// A plan-backed symbolic world over the large hierarchical fabric.
pub struct HierReach {
    /// The generated network plan (call `plan.topology().dest_routes()`
    /// for the routing view).
    pub plan: NetworkPlan,
    /// The hand-assembled symbolic view.
    pub view: ReachView,
}

/// The synthetic subnet of hierarchical stub `s`.
pub fn hier_subnet(s: u32) -> Prefix {
    Prefix::new(Ipv4Addr(HIER_BASE + (s << HIER_STUB_SHIFT)), HIER_STUB_LEN)
}

/// The policy table installed on the hierarchical fabric, in first-match
/// order. Kept tiny and aggregate — the point of the hierarchical run is
/// checker scale in *topology*, not rule count:
///
/// * `p0`: `8.0.0.0/16 → 8.1.0.0/16` via `FW`
/// * `p1`: `8.0.0.0/16 → 8.2.0.0/16` via `FW, IDS`
pub fn hier_rules() -> Vec<RuleView> {
    let p = |addr: u32, len: u8| Prefix::new(Ipv4Addr(addr), len);
    vec![
        RuleView {
            policy: 0,
            class: FlowClass::between(p(0x0800_0000, 16), p(0x0801_0000, 16)),
            chain: vec![NetworkFunction::Firewall],
        },
        RuleView {
            policy: 1,
            class: FlowClass::between(p(0x0800_0000, 16), p(0x0802_0000, 16)),
            chain: vec![NetworkFunction::Firewall, NetworkFunction::Ids],
        },
    ]
}

/// Builds the ≈21k-node hierarchical reach world: [`HierarchicalConfig::large`]
/// topology, [`HIER_BOXES`] middleboxes spread over the pod routers, the
/// [`hier_rules`] policy table, and candidate sets (closest-first, by
/// per-destination shortest-path distance) for **every** stub proxy,
/// gateway and middlebox steer point.
pub fn hier_reach(seed: u64) -> HierReach {
    let cfg = HierarchicalConfig::large();
    let plan = hierarchical(&cfg, seed);
    let view = {
        let topo = plan.topology();
        let routes = topo.dest_routes();
        let cores = plan.cores();
        let fns = [NetworkFunction::Firewall, NetworkFunction::Ids];

        let mut middleboxes = Vec::with_capacity(HIER_BOXES);
        for i in 0..HIER_BOXES {
            let router = cores[i * cores.len() / HIER_BOXES];
            middleboxes.push(MboxView {
                functions: vec![fns[if i < HIER_BOXES / 2 { 0 } else { 1 }]],
                router: router.index(),
                capacity: 1e9,
                available: true,
                addr: Ipv4Addr(0x0100_0000 + i as u32),
            });
        }

        // Candidate members for a steer point at `from`, closest first
        // (ties broken by box index, matching the controller's ordering).
        let members = |from: u32, f: NetworkFunction| -> Vec<u32> {
            let mut v: Vec<(u32, u32)> = middleboxes
                .iter()
                .enumerate()
                .filter(|(_, m)| m.functions.contains(&f))
                .map(|(i, m)| {
                    let d = RouteView::dist(&routes, from, m.router as u32)
                        .unwrap_or(u32::MAX);
                    (d, i as u32)
                })
                .collect();
            v.sort_unstable();
            v.into_iter().map(|(_, i)| i).collect()
        };

        let stub_routers: Vec<u32> =
            plan.edges().iter().map(|n| n.index() as u32).collect();
        let gateway_routers: Vec<u32> =
            plan.gateways().iter().map(|n| n.index() as u32).collect();

        let mut candidates = Vec::new();
        for (s, &r) in stub_routers.iter().enumerate() {
            for f in fns {
                candidates.push(CandidateSet {
                    point: Point::Proxy(s as u32),
                    function: f,
                    members: members(r, f),
                });
            }
        }
        for (g, &r) in gateway_routers.iter().enumerate() {
            for f in fns {
                candidates.push(CandidateSet {
                    point: Point::Gateway(g as u32),
                    function: f,
                    members: members(r, f),
                });
            }
        }
        for (m, mv) in middleboxes.iter().enumerate() {
            for f in fns {
                candidates.push(CandidateSet {
                    point: Point::Middlebox(m as u32),
                    function: f,
                    members: members(mv.router as u32, f),
                });
            }
        }

        let rules = hier_rules();
        let stub_subnets: Vec<Prefix> =
            (0..stub_routers.len() as u32).map(hier_subnet).collect();
        ReachView {
            plan: PlanView {
                node_count: topo.node_count(),
                stub_subnets,
                gateway_count: gateway_routers.len(),
                middleboxes,
                policies: rules
                    .iter()
                    .map(|r| ChainView {
                        policy: r.policy,
                        chain: r.chain.clone(),
                    })
                    .collect(),
                k: fns.iter().map(|&f| (f, HIER_BOXES / 2)).collect(),
                candidates,
                weights: None,
                options: Some(OptionsView {
                    flow_ttl: 1 << 20,
                    label_ttl: 1 << 20,
                    mtu: 1500,
                }),
            },
            rules,
            stub_routers,
            gateway_routers,
            enterprise: Prefix::new(Ipv4Addr(HIER_BASE), HIER_ENTERPRISE_LEN),
            strategy: StrategyView::HotPotato,
            hazards: None,
        }
    };
    HierReach { plan, view }
}
