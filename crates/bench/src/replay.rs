//! Executes reach-tier counterexamples ([`ReplayScenario`]) in the
//! simulator and checks that the data plane agrees with the static
//! verdict — the closing half of the PR-10 static/dynamic agreement
//! loop.
//!
//! A scenario is a short injection script produced by
//! `sdm_verify::reach::check_assertions` as the witness of an `R0xx`
//! finding: inject a representative flow of the violating class at its
//! stub proxy, optionally fail/restore a middlebox between injections,
//! and predict for each injection whether the packets are delivered,
//! whether they die at a crashed box, and which middleboxes must (or
//! must not) process them. [`replay_scenario`] runs the script against a
//! fresh [`sdm_core::Enforcement`] and reports every prediction the simulator
//! disagreed with; CI replays the committed corpus at all shard/batch
//! corners and fails on any disagreement.

use sdm_core::{Controller, EnforcementOptions, MiddleboxId, SteeringWeights, Strategy};
use sdm_netsim::StubId;
use sdm_util::json::Json;
use sdm_verify::witness::{ReplayScenario, ReplayStep, StepExpect};

/// Payload bytes per injected packet (well under every MTU in play, so
/// label switching never fragments the witness flow).
const REPLAY_PAYLOAD: u32 = 256;

/// The outcome of replaying one scenario.
#[derive(Debug, Clone)]
pub struct ReplayVerdict {
    /// The scenario's name (assertion + class + stub).
    pub name: String,
    /// The `R0xx` code the scenario witnesses.
    pub code: String,
    /// True when the simulator agreed with every prediction.
    pub agrees: bool,
    /// One line per disagreement (empty when `agrees`).
    pub mismatches: Vec<String>,
}

impl ReplayVerdict {
    /// JSON form for the CI report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("code", Json::from(self.code.as_str())),
            ("agrees", Json::Bool(self.agrees)),
            (
                "mismatches",
                Json::Arr(
                    self.mismatches
                        .iter()
                        .map(|m| Json::from(m.as_str()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Replays `scenario` against a fresh enforcement built from
/// `controller` and checks every per-step expectation. `strategy` and
/// `weights` must be the configuration the checker verified.
pub fn replay_scenario(
    controller: &Controller,
    strategy: Strategy,
    weights: Option<&SteeringWeights>,
    options: EnforcementOptions,
    scenario: &ReplayScenario,
) -> ReplayVerdict {
    let mut enf = controller.enforcement(strategy, weights.cloned(), options);
    let ft = scenario.flow.five_tuple();
    let mut mismatches: Vec<String> = Vec::new();

    for (i, step) in scenario.steps.iter().enumerate() {
        match step {
            ReplayStep::Inject { packets, expect } => {
                let stats = enf.sim().stats();
                let delivered_before = stats.delivered + stats.delivered_external;
                let dropped_before = dropped_failed(&enf, controller);
                let loads_before = enf.middlebox_loads();

                enf.inject_flow(ft, *packets, REPLAY_PAYLOAD);
                enf.run();

                let stats = enf.sim().stats();
                let delivered =
                    stats.delivered + stats.delivered_external - delivered_before;
                let dropped = dropped_failed(&enf, controller) - dropped_before;
                let loads = enf.middlebox_loads();
                check_inject(
                    i,
                    *packets,
                    expect,
                    delivered,
                    dropped,
                    &loads_before,
                    &loads,
                    &mut mismatches,
                );
            }
            ReplayStep::FailMbox(m) => {
                // The hazard scenarios rest on the flow being *pinned* to
                // the box about to fail; confirm the flow-cache state the
                // static analysis asserted before pulling the box.
                let pinned = enf
                    .proxy_state(StubId(scenario.stub))
                    .lock()
                    .flows
                    .pinned_next(&ft);
                if scenario.code == "R005" && pinned != Some(*m) {
                    mismatches.push(format!(
                        "step {i}: expected flow pinned to m{m} before failure, \
found {pinned:?}"
                    ));
                }
                enf.fail_middlebox(MiddleboxId(*m));
            }
            ReplayStep::RestoreMbox(m) => enf.restore_middlebox(MiddleboxId(*m)),
        }
    }

    ReplayVerdict {
        name: scenario.name.clone(),
        code: scenario.code.clone(),
        agrees: mismatches.is_empty(),
        mismatches,
    }
}

#[allow(clippy::too_many_arguments)]
fn check_inject(
    step: usize,
    packets: u64,
    expect: &StepExpect,
    delivered: u64,
    dropped: u64,
    loads_before: &[u64],
    loads: &[u64],
    mismatches: &mut Vec<String>,
) {
    if expect.delivered && delivered != packets {
        mismatches.push(format!(
            "step {step}: predicted delivery of {packets} packets, simulator \
delivered {delivered}"
        ));
    }
    if !expect.delivered && delivered != 0 {
        mismatches.push(format!(
            "step {step}: predicted no delivery, simulator delivered {delivered}"
        ));
    }
    if expect.dropped_failed && dropped == 0 {
        mismatches.push(format!(
            "step {step}: predicted drops at a failed middlebox, none counted"
        ));
    }
    if !expect.dropped_failed && dropped != 0 {
        mismatches.push(format!(
            "step {step}: predicted no failed-box drops, simulator counted {dropped}"
        ));
    }
    for &m in &expect.must_process {
        let delta = load_delta(loads_before, loads, m);
        if delta < packets {
            mismatches.push(format!(
                "step {step}: predicted m{m} processes all {packets} packets, \
its load rose by {delta}"
            ));
        }
    }
    for &m in &expect.must_not_process {
        let delta = load_delta(loads_before, loads, m);
        if delta != 0 {
            mismatches.push(format!(
                "step {step}: predicted m{m} sees no packet, its load rose by {delta}"
            ));
        }
    }
}

fn load_delta(before: &[u64], after: &[u64], m: u32) -> u64 {
    let b = before.get(m as usize).copied().unwrap_or(0);
    let a = after.get(m as usize).copied().unwrap_or(0);
    a.saturating_sub(b)
}

/// Packets dropped at crashed middleboxes, summed over the deployment.
fn dropped_failed(enf: &sdm_core::Enforcement, controller: &Controller) -> u64 {
    let mut total = 0;
    for (id, _) in controller.deployment().iter() {
        total += enf.mbox_state(id).lock().counters.dropped_failed;
    }
    total
}

/// Replays every scenario and returns the verdicts plus overall
/// agreement (used by both the `sdm-reach --replay` gate and the
/// property tests).
pub fn replay_corpus(
    controller: &Controller,
    strategy: Strategy,
    weights: Option<&SteeringWeights>,
    options: EnforcementOptions,
    corpus: &[ReplayScenario],
) -> (Vec<ReplayVerdict>, bool) {
    let verdicts: Vec<ReplayVerdict> = corpus
        .iter()
        .map(|s| replay_scenario(controller, strategy, weights, options, s))
        .collect();
    let all_agree = verdicts.iter().all(|v| v.agrees);
    (verdicts, all_agree)
}
