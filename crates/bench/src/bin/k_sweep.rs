//! Ablation A: effect of the candidate-set size `k` (|M_x^e|) on the
//! load-balanced strategy's maximum middlebox load. `k = 1` degenerates to
//! hot-potato (§III.C); larger `k` gives the LP more room to balance.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin k_sweep
//!     [--packets N]  total packets (default 5000000)
//!     [--seed N]     world seed (default 3)

use sdm_bench::{arg_value, ExperimentConfig, World, PLOT_ORDER};
use sdm_core::KConfig;
use sdm_util::par::par_map;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let total: u64 = arg_value(&args, "--packets")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000_000);

    println!("# Ablation A — k-sweep on the campus topology, LB strategy,");
    println!("# {total} total packets. k = 1 is equivalent to hot-potato.");
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "k", "lambda", "FW-max", "IDS-max", "WP-max", "TM-max"
    );
    // Each k-point is an independent world: build, run and solve them in
    // parallel, print in order afterwards.
    let ks: Vec<usize> = (1..=7).collect();
    let rows = par_map(&ks, |_, &k| {
        let mut cfg = ExperimentConfig::campus(seed);
        cfg.k = KConfig::uniform(k);
        let world = World::build(&cfg);
        let flows = world.flows(total, seed.wrapping_add(7));
        let c = world.compare_strategies(&flows);
        let maxes: Vec<u64> = PLOT_ORDER
            .iter()
            .map(|&f| c.lb.report.row(f).map_or(0, |r| r.max))
            .collect();
        (k, c.lb_report.lambda, maxes)
    });
    for (k, lambda, maxes) in rows {
        println!(
            "{:>3} {:>12.0} {:>12} {:>12} {:>12} {:>12}",
            k, lambda, maxes[0], maxes[1], maxes[2], maxes[3]
        );
    }
    println!("# expected shape: max loads drop steeply from k=1 and flatten once");
    println!("# k approaches the number of deployed replicas per type.");
}
