//! Ablation B: the full Eq. (1) formulation versus the reduced Eq. (2)
//! formulation of the load-balancing LP (§III.C). Both reach the same
//! optimal λ; Eq. (2) exists to cut variables, constraints and solve time.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin lp_formulations
//!     [--packets N]   total packets (default 500000)
//!     [--seed N]      world seed (default 3)

use std::time::Instant;

use sdm_bench::{arg_value, ExperimentConfig, World};
use sdm_core::{LbOptions, Strategy};
use sdm_workload::PolicyClassCounts;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let total: u64 = arg_value(&args, "--packets")
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);

    println!("# Ablation B — Eq. (1) full vs Eq. (2) reduced LP formulation,");
    println!("# campus topology, {total} packets, 3 policies per class.");
    let mut cfg = ExperimentConfig::campus(seed);
    cfg.policy_counts = PolicyClassCounts {
        many_to_one: 3,
        one_to_many: 3,
        one_to_one: 3,
        companions: false,
    };
    let world = World::build(&cfg);
    let flows = world.flows(total, seed.wrapping_add(5));
    let measure = world.run_strategy(Strategy::HotPotato, None, &flows);

    let t = Instant::now(); // lint:allow(wall-clock)
    let (w2, reduced) = world
        .controller
        .solve_load_balanced(&measure.measurements, LbOptions::default())
        .expect("reduced LP must solve");
    let reduced_time = t.elapsed();

    let t = Instant::now(); // lint:allow(wall-clock)
    let (w1, full) = world
        .controller
        .solve_load_balanced_full(&measure.measurements, LbOptions::default())
        .expect("full LP must solve");
    let full_time = t.elapsed();

    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "formulation", "lambda", "variables", "constraints", "pivots", "time"
    );
    println!(
        "{:<18} {:>12.1} {:>12} {:>12} {:>14} {:>12?}",
        "Eq. (2) reduced",
        reduced.lambda,
        reduced.variables,
        reduced.constraints,
        reduced.iterations,
        reduced_time
    );
    println!(
        "{:<18} {:>12.1} {:>12} {:>12} {:>14} {:>12?}",
        "Eq. (1) full",
        full.lambda,
        full.variables,
        full.constraints,
        full.iterations,
        full_time
    );
    let gap = (full.lambda - reduced.lambda).abs() / reduced.lambda.max(1e-12);
    println!("# relative lambda gap: {gap:.2e} (expected ~0: same optimum)");
    println!(
        "# variable reduction: {:.1}x",
        full.variables as f64 / reduced.variables.max(1) as f64
    );
    println!(
        "# controller -> data-plane config: Eq.(2) {} B vs Eq.(1) {} B ({:.1}x less to push)",
        w2.footprint_bytes(),
        w1.footprint_bytes(),
        w1.footprint_bytes() as f64 / w2.footprint_bytes().max(1) as f64
    );
}
