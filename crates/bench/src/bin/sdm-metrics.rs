//! Deterministic metrics exporter: runs the online re-steer scenario
//! (campus topology, epoch loop with warm LP re-solves) with telemetry
//! forced on and prints the merged [`sdm_telemetry::Snapshot`].
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin sdm-metrics
//!     [--epochs N]     epochs to run (default 3)
//!     [--packets N]    packets injected per epoch (default 100000)
//!     [--seed N]       world seed (default 3)
//!     [--full]         include non-invariant families (histograms,
//!                      pinned-replay counts — these depend on the
//!                      SDM_SHARDS / SDM_BATCH configuration)
//!     [--prometheus]   Prometheus text exposition instead of JSON
//!
//! Environment: `SDM_SHARDS` sets the shard count, `SDM_BATCH` the vector
//! batch size. Without `--full`, the output is **byte-identical** for any
//! combination of the two — `ci.sh` diffs 1-shard/batch-1 and
//! 4-shard/batch-256 runs against the committed golden
//! `results/telemetry_golden.json`.

use sdm_bench::{arg_value, ExperimentConfig, World};
use sdm_core::{EnforcementOptions, EpochLoop, LbOptions};
use sdm_util::par::shard_count;
use sdm_workload::to_flow_specs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let epochs: u64 = arg_value(&args, "--epochs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let packets: u64 = arg_value(&args, "--packets")
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let full = args.iter().any(|a| a == "--full");
    let prometheus = args.iter().any(|a| a == "--prometheus");

    let world = World::build(&ExperimentConfig::campus(seed));
    let options = EnforcementOptions {
        telemetry: Some(true),
        ..Default::default()
    };
    let mut ep = EpochLoop::new(&world.controller, shard_count(), options, LbOptions::default());
    for e in 1..=epochs {
        // Epochs come in pairs sharing one flow population: the second of
        // a pair re-injects the first's flows, so the snapshot exercises
        // flow-cache hits, pinned steering replays and a warm LP solve —
        // not just the all-miss cold path.
        let flows = world.flows(packets, seed.wrapping_add(100 + e.div_ceil(2)));
        let specs = to_flow_specs(&flows, 512);
        ep.run_epoch(&specs).expect("epoch must solve and verify");
    }

    let snap = ep.telemetry_snapshot();
    if prometheus {
        print!("{}", snap.to_prometheus(full));
    } else {
        println!("{}", snap.to_json(full));
    }
}
