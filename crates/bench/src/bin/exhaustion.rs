//! The flow-table **exhaustion attack** scenario (PR 9): floods the campus
//! enforcement plane with one-packet flows that match *no* policy, so
//! every packet forces a classification miss and a negative-cache insert
//! at its proxy — the soft-state memory-exhaustion vector against
//! SDM-style proxies. Runs the same attack twice:
//!
//! * **uncapped** — the default negative-cache capacity (far above the
//!   attack population: memory grows with the attack, no evictions);
//! * **capped** — a small per-table capacity, where the set-associative
//!   cache must shed stale markers and hold the line.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin exhaustion
//!     [--flows N]  attack flows (default 200000)
//!     [--sets N]   capped run's negative-cache sets (default 512 → 4096 cap)
//!     [--seed N]   world seed (default 3)
//!
//! Environment: `SDM_SHARDS` / `SDM_BATCH` select the parallel corner.
//! Everything on stdout is byte-identical across power-of-two corners —
//! the negative cache partitions flows by stable hash exactly like the
//! shard split, so lengths and eviction counts are shard-invariant; CI
//! diffs `SDM_SHARDS=1` vs `4` and `SDM_BATCH=1` vs `256`. Exits 1 if any
//! device's negative-cache occupancy exceeds its cap.

use sdm_bench::{arg_value, ExperimentConfig, World};
use sdm_core::{EnforcementOptions, ShardedRun, Strategy};
use sdm_util::par::shard_count;
use sdm_workload::{exhaustion_attack, to_flow_specs};

fn run(world: &World, specs: &[sdm_core::FlowSpec], sets: usize, shards: usize) -> ShardedRun {
    let options = EnforcementOptions {
        neg_cache_sets: sets,
        ..EnforcementOptions::default()
    };
    world
        .controller
        .run_sharded(Strategy::HotPotato, None, options, specs, shards)
}

fn summarize(label: &str, run: &ShardedRun, cap: usize) -> bool {
    let fp = &run.footprint;
    let stats = {
        let mut s = sdm_policy::FlowTableStats::default();
        for t in fp.proxy_flow_stats.iter().chain(&fp.mbox_flow_stats) {
            s.merge(t);
        }
        s
    };
    let neg_entries: u64 = {
        // live flow entries minus positives = negative markers; the
        // attack installs no positives, so proxy entries *are* negatives
        fp.proxy_flow_entries.iter().sum()
    };
    let evictions: u64 = fp.proxy_neg_evictions.iter().sum::<u64>()
        + fp.ingress_neg_evictions.iter().sum::<u64>()
        + fp.mbox_neg_evictions.iter().sum::<u64>();
    let worst = fp.proxy_flow_entries.iter().copied().max().unwrap_or(0);
    println!("## {label}");
    println!("delivered            {}", run.stats.delivered + run.stats.delivered_external);
    println!("proxy lookups  hits  {}", stats.hits);
    println!("               neg   {}", stats.negative_hits);
    println!("               miss  {}", stats.misses);
    println!("neg entries (total)  {neg_entries}");
    println!("neg entries (worst)  {worst}");
    println!("per-table cap        {cap}");
    println!("evictions            {evictions}");
    let ok = worst as usize <= cap;
    println!(
        "bounded              {}",
        if ok { "yes" } else { "NO — cap exceeded" }
    );
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let n_flows: usize = arg_value(&args, "--flows")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let sets: usize = arg_value(&args, "--sets")
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let shards = shard_count();

    println!("# Exhaustion attack — negative-cache memory bound");
    println!("# campus topology, {n_flows} one-packet no-match flows");
    let world = World::build(&ExperimentConfig::campus(seed));
    let flows = exhaustion_attack(
        &world.generated.set,
        world.controller.addr_plan(),
        n_flows,
    );
    let specs = to_flow_specs(&flows, 64);

    let uncapped = run(&world, &specs, sdm_policy::DEFAULT_NEG_SETS, shards);
    let capped = run(&world, &specs, sets, shards);

    let cap_default = sdm_policy::DEFAULT_NEG_SETS * sdm_policy::NEG_WAYS;
    let cap_small = sets * sdm_policy::NEG_WAYS;
    let ok_before = summarize("before: default capacity", &uncapped, cap_default);
    let ok_after = summarize("after: capped capacity", &capped, cap_small);

    // the cap changes memory, never forwarding behavior
    let same_delivery = uncapped.stats.delivered == capped.stats.delivered
        && uncapped.stats.delivered_external == capped.stats.delivered_external;
    println!("## invariants");
    println!(
        "delivery unchanged   {}",
        if same_delivery { "yes" } else { "NO" }
    );

    if !(ok_before && ok_after && same_delivery) {
        std::process::exit(1);
    }
}
