//! Network-wide isolation verification: checks operator assertion files
//! against the campus evaluation world and the ≈21k-node hierarchical
//! fabric, entirely symbolically, and lowers every violation into a
//! replayable simulator scenario.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin sdm-reach --
//!     [--seed N]                   world seed (default 1)
//!     [--campus-assertions FILE]   check FILE on the campus world
//!     [--hier-assertions FILE]     check FILE on the hierarchical fabric
//!     [--corpus-out FILE]          write the campus counterexample corpus
//!     [--replay FILE]              replay a corpus against the campus
//!                                  world; exit 1 on any disagreement
//!
//! In check mode one deterministic JSON document is printed (CI
//! byte-diffs it against `results/reach_golden.json`) and the exit code
//! is 0 even when assertions are refuted — the committed assertion sets
//! intentionally contain refutable assertions so the counterexample
//! corpus is non-empty. The campus run additionally verifies a hazard
//! state: the middlebox that hot-potato steering pins first is declared
//! failed, and every stale-pinned-flow window (`R005`) is reported and
//! lowered into the corpus.
//!
//! The hierarchical run never builds a controller (all-pairs routing at
//! that scale is gigabytes); it checks the hand-assembled plan view
//! against on-demand per-destination routes, which is why its witnesses
//! are reported but not replayed.

use std::process::ExitCode;

use sdm_bench::reach_worlds::{hazard_pass, hier_reach, world_reach};
use sdm_bench::replay::replay_corpus;
use sdm_bench::{arg_value, ExperimentConfig};
use sdm_core::Strategy;
use sdm_util::json::Json;
use sdm_verify::reach::{check_assertions, parse_assertions};
use sdm_verify::witness::{corpus_from_json, corpus_to_json, ReplayScenario};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    if let Some(path) = arg_value(&args, "--replay") {
        return replay_mode(seed, &path);
    }

    let mut sections: Vec<(&str, Json)> = vec![("seed", Json::from(seed))];
    let mut corpus: Vec<ReplayScenario> = Vec::new();

    if let Some(path) = arg_value(&args, "--campus-assertions") {
        let assertions = load_assertions(&path);
        let mut wr = world_reach(&ExperimentConfig::campus(seed));
        let report =
            check_assertions(&wr.view, wr.world.controller.routes(), &assertions);
        corpus.extend(report.scenarios());

        let (failed, hazard_report) = hazard_pass(&mut wr);
        corpus.extend(hazard_report.scenarios());
        sections.push((
            "campus",
            Json::obj([
                ("converged", report.to_json()),
                (
                    "hazard",
                    Json::obj([
                        ("failed", Json::from(failed as u64)),
                        ("report", hazard_report.to_json()),
                    ]),
                ),
            ]),
        ));
    }

    if let Some(path) = arg_value(&args, "--hier-assertions") {
        let assertions = load_assertions(&path);
        let hr = hier_reach(seed);
        let routes = hr.plan.topology().dest_routes();
        let report = check_assertions(&hr.view, &routes, &assertions);
        sections.push((
            "hierarchical",
            Json::obj([
                ("nodes", Json::from(hr.view.plan.node_count)),
                ("stubs", Json::from(hr.view.stub_routers.len())),
                ("report", report.to_json()),
            ]),
        ));
    }

    if let Some(path) = arg_value(&args, "--corpus-out") {
        let text = corpus_to_json(&corpus).to_string();
        if let Err(e) = std::fs::write(&path, text + "\n") {
            eprintln!("sdm-reach: cannot write corpus '{path}': {e}");
            return ExitCode::from(2);
        }
        sections.push(("corpus_scenarios", Json::from(corpus.len())));
    }

    println!("{}", Json::obj(sections));
    ExitCode::SUCCESS
}

fn replay_mode(seed: u64, path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sdm-reach: cannot read corpus '{path}': {e}");
            return ExitCode::from(2);
        }
    };
    let corpus = corpus_from_json(&text).unwrap_or_else(|e| {
        eprintln!("sdm-reach: '{path}' is not a reach corpus: {e}");
        std::process::exit(2);
    });

    let wr = world_reach(&ExperimentConfig::campus(seed));
    let (verdicts, all_agree) = replay_corpus(
        &wr.world.controller,
        Strategy::HotPotato,
        None,
        wr.options,
        &corpus,
    );
    let out = Json::obj([
        ("seed", Json::from(seed)),
        ("scenarios", Json::from(corpus.len())),
        ("agree", Json::Bool(all_agree)),
        (
            "verdicts",
            Json::Arr(verdicts.iter().map(|v| v.to_json()).collect()),
        ),
    ]);
    println!("{out}");
    if all_agree {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn load_assertions(path: &str) -> Vec<sdm_verify::reach::Assertion> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("sdm-reach: cannot read assertions '{path}': {e}");
        std::process::exit(2);
    });
    parse_assertions(&text).unwrap_or_else(|e| {
        eprintln!("sdm-reach: {path}: {e}");
        std::process::exit(2);
    })
}
