//! Ablation H: what load imbalance *costs* — give every middlebox the same
//! finite processing rate and measure queueing delay under hot-potato,
//! random and load-balanced enforcement. Peak load translates directly
//! into waiting time at the hottest box, which is why the paper minimizes
//! the maximum load factor λ.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin queueing
//!     [--flows N]    flows (default 4000, packet-level)
//!     [--window N]   arrival window in ticks (default 2000000)
//!     [--service N]  middlebox service ticks per packet (default 150)
//!     [--seed N]     world seed (default 3)
//!
//! This experiment is **not shard-safe**: finite service rates make flows
//! contend for the same middlebox queues, so splitting them across
//! independent shard engines would change every waiting time. It therefore
//! ignores `SDM_SHARDS` and always runs single-shard
//! ([`sdm_core::resolve_shards`] with `shard_safe = false`).

use sdm_bench::{arg_value, ExperimentConfig, World};
use sdm_core::{resolve_shards, EnforcementOptions, LbOptions, Strategy};
use sdm_netsim::SimTime;
use sdm_util::par::shard_count;
use sdm_workload::WorkloadConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Shared middlebox queues couple the flows: force the single-shard
    // fallback no matter what SDM_SHARDS asks for.
    let shards = resolve_shards(shard_count(), false);
    assert_eq!(shards, 1);
    if shard_count() > 1 {
        eprintln!("[queueing] shared-queue experiment: ignoring SDM_SHARDS, running 1 shard");
    }
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let n_flows: usize = arg_value(&args, "--flows")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    let window: u64 = arg_value(&args, "--window")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let service: u64 = arg_value(&args, "--service")
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);

    println!("# Ablation H — queueing delay under finite middlebox capacity,");
    println!("# campus topology, {n_flows} flows over a {window}-tick window,");
    println!("# service time {service} ticks/packet at every middlebox.");
    let world = World::build(&ExperimentConfig::campus(seed));
    let flows = sdm_workload::generate_flows(
        &world.generated,
        world.controller.addr_plan(),
        &WorkloadConfig {
            flows: n_flows,
            seed: seed.wrapping_add(23),
            ..Default::default()
        },
    );
    let total_pkts: u64 = flows.iter().map(|f| f.packets.min(50)).sum();
    println!("# {total_pkts} packets injected");

    // LB weights from an (unqueued) measurement pass.
    let mut measure = world
        .controller
        .enforcement(Strategy::HotPotato, None, EnforcementOptions::default());
    for f in &flows {
        measure.inject_flow(f.five_tuple, f.packets.min(50), 300);
    }
    measure.run();
    let (weights, _) = world
        .controller
        .solve_load_balanced(&measure.measurements(), LbOptions::default())
        .expect("LP solves");

    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "strategy", "delivered", "avg wait", "max wait", "avg e2e", "max e2e"
    );
    for (name, strategy, w) in [
        ("hot-potato", Strategy::HotPotato, None),
        ("random", Strategy::Random { salt: 5 }, None),
        ("load-balanced", Strategy::LoadBalanced, Some(weights)),
    ] {
        let mut enf = world
            .controller
            .enforcement(strategy, w, EnforcementOptions::default());
        enf.set_middlebox_service_time(service);
        // Poisson-ish arrivals: flow i starts at a hashed offset in the
        // window, its packets spaced 64 ticks apart.
        for (i, f) in flows.iter().enumerate() {
            let start = (i as u64).wrapping_mul(2654435761) % window;
            enf.inject_flow_packets(f.five_tuple, f.packets.min(50), 300, SimTime(start), 64);
        }
        enf.run();
        let s = enf.sim().stats();
        let delivered = s.delivered + s.delivered_external;
        println!(
            "{:<14} {:>12} {:>12.1} {:>12} {:>12.1} {:>12}",
            name,
            delivered,
            s.device_wait_total as f64 / delivered.max(1) as f64,
            s.device_wait_max,
            s.avg_latency(),
            s.latency_max
        );
    }
    println!("# expected shape: load balancing cuts both the average and the worst");
    println!("# queueing delay versus hot-potato — the operational payoff of a");
    println!("# smaller maximum load factor.");
}
