//! Ablation E: dependability under middlebox failure. Crashes the most
//! loaded firewall mid-experiment, shows the loss before the controller
//! reacts, then the recomputed assignments/LP routing around the failure.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin failure_recovery
//!     [--packets N]  total packets per phase (default 1000000)
//!     [--seed N]     world seed (default 3)

use sdm_bench::{arg_value, ExperimentConfig, World};
use sdm_core::{EnforcementOptions, LbOptions, Strategy};
use sdm_policy::NetworkFunction;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let total: u64 = arg_value(&args, "--packets")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    println!("# Ablation E — middlebox failure and controller recovery,");
    println!("# campus topology, {total} packets per phase, LB strategy.");
    let mut world = World::build(&ExperimentConfig::campus(seed));
    let flows = world.flows(total, seed.wrapping_add(13));

    // Phase 0: healthy network, measured + load-balanced.
    let hp = world.run_strategy(Strategy::HotPotato, None, &flows);
    let (weights, report) = world
        .controller
        .solve_load_balanced(&hp.measurements, LbOptions::default())
        .expect("LP solves");
    let lb = world.run_strategy(Strategy::LoadBalanced, Some(weights.clone()), &flows);
    let victim = world
        .deployment
        .offering(NetworkFunction::Firewall)
        .into_iter()
        .max_by_key(|m| lb.loads[m.index()])
        .expect("a firewall exists");
    println!(
        "phase 0 (healthy):   delivered {:>9}, lambda {:>9.0}, victim {victim} carried {}",
        lb.delivered,
        report.lambda,
        lb.loads[victim.index()]
    );

    // Phase 1: the victim crashes; stale configuration keeps steering into
    // the black hole.
    let mut stale = world.controller.enforcement(
        Strategy::LoadBalanced,
        Some(weights),
        EnforcementOptions::default(),
    );
    stale.fail_middlebox(victim);
    for f in &flows {
        stale.inject_flow(f.five_tuple, f.packets, 512);
    }
    stale.run();
    let lost = stale.mbox_state(victim).lock().counters.dropped_failed;
    println!(
        "phase 1 (stale cfg): delivered {:>9}, blackholed {lost} packets at the crashed box",
        stale.sim().stats().delivered + stale.sim().stats().delivered_external,
    );

    // Phase 2: the controller reacts — recomputes assignments and the LP
    // without the victim.
    world.controller.fail_middlebox(victim);
    let (weights2, report2) = world
        .controller
        .solve_load_balanced(&hp.measurements, LbOptions::default())
        .expect("LP solves without the victim");
    let mut healed = world.controller.enforcement(
        Strategy::LoadBalanced,
        Some(weights2),
        EnforcementOptions::default(),
    );
    healed.fail_middlebox(victim); // box is still down in the data plane
    for f in &flows {
        healed.inject_flow(f.five_tuple, f.packets, 512);
    }
    healed.run();
    println!(
        "phase 2 (recovered): delivered {:>9}, lambda {:>9.0}, victim load {}",
        healed.sim().stats().delivered + healed.sim().stats().delivered_external,
        report2.lambda,
        healed.middlebox_loads()[victim.index()]
    );
    println!("# expected shape: phase 1 loses exactly the victim's share; phase 2");
    println!("# delivers 100% with a modestly higher lambda (one fewer replica).");
}
