//! Ablation G: the routing cost of policy enforcement — average link hops
//! per delivered packet with middlebox steering versus plain shortest-path
//! delivery, per strategy. Quantifies the "detour" price of hot-potato
//! steering and how load balancing trades extra distance for lower peak
//! load.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin path_stretch
//!     [--packets N]  total packets (default 1000000)
//!     [--seed N]     world seed (default 3)

use sdm_bench::{arg_value, ExperimentConfig, World};
use sdm_core::{LbOptions, Strategy};
use sdm_netsim::{Packet, Simulator};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let total: u64 = arg_value(&args, "--packets")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    println!("# Ablation G — path stretch of policy enforcement,");
    println!("# campus topology, {total} packets.");
    let world = World::build(&ExperimentConfig::campus(seed));
    let flows = world.flows(total, seed.wrapping_add(33));

    // Baseline: the same packets with no proxies/middleboxes at all.
    let mut plain = Simulator::new(world.controller.plan());
    for f in &flows {
        let stub = plain.addresses().stub_of(f.five_tuple.src).unwrap();
        plain.inject_from_stub(stub, Packet::with_weight(f.five_tuple, 512, f.packets));
    }
    plain.run_until_idle();
    let plain_delivered = plain.stats().delivered + plain.stats().delivered_external;
    let base = plain.stats().link_hops as f64 / plain_delivered.max(1) as f64;
    println!(
        "{:<14} {:>12} {:>14} {:>10}",
        "configuration", "delivered", "hops/packet", "stretch"
    );
    println!("{:<14} {:>12} {:>14.3} {:>9.2}x", "no policies", plain_delivered, base, 1.0);

    let hp = world.run_strategy(Strategy::HotPotato, None, &flows);
    let (w, _) = world
        .controller
        .solve_load_balanced(&hp.measurements, LbOptions::default())
        .expect("LP solves");
    for (name, run) in [
        ("hot-potato", world.run_strategy(Strategy::HotPotato, None, &flows)),
        ("random", world.run_strategy(Strategy::Random { salt: 7 }, None, &flows)),
        ("load-balanced", world.run_strategy(Strategy::LoadBalanced, Some(w), &flows)),
    ] {
        // link_hops counted inside the strategy run's simulator
        let hops = run.hops_per_packet();
        println!(
            "{:<14} {:>12} {:>14.3} {:>9.2}x",
            name,
            run.delivered,
            hops,
            hops / base
        );
    }
    println!("# expected shape: enforcement costs extra hops (the chain detour);");
    println!("# hot-potato has the shortest detours by construction, LB pays a");
    println!("# modest extra stretch for its balanced load.");
}
