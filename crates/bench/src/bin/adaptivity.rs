//! Ablation F: measurement-driven adaptation. The traffic matrix drifts
//! between epochs; compares re-solving the LP on fresh measurements
//! against keeping the stale epoch-1 weights (and against hot-potato).
//! This exercises the paper's control loop: "periodically, all policy
//! proxies send their measured traffic volumes to the controller" (§III.C).
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin adaptivity
//!     [--packets N]  packets per epoch (default 1000000)
//!     [--seed N]     world seed (default 3)

use sdm_bench::{arg_value, ExperimentConfig, World};
use sdm_core::{LbOptions, Strategy};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let total: u64 = arg_value(&args, "--packets")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    println!("# Ablation F — adaptation to traffic drift, campus topology,");
    println!("# {total} packets per epoch.");
    let world = World::build(&ExperimentConfig::campus(seed));

    // Epoch 1 and a drifted epoch 2 (different flow seed = different
    // sources, destinations and flow sizes; same policy classes).
    let epoch1 = world.flows(total, seed.wrapping_add(21));
    let epoch2 = world.flows(total, seed.wrapping_add(1_000_003));

    let hp1 = world.run_strategy(Strategy::HotPotato, None, &epoch1);
    let (w1, _) = world
        .controller
        .solve_load_balanced(&hp1.measurements, LbOptions::default())
        .expect("epoch-1 LP");

    // Epoch 2 under three configurations.
    let hp2 = world.run_strategy(Strategy::HotPotato, None, &epoch2);
    let stale = world.run_strategy(Strategy::LoadBalanced, Some(w1.clone()), &epoch2);
    let (w2, _) = world
        .controller
        .solve_load_balanced(&hp2.measurements, LbOptions::default())
        .expect("epoch-2 LP");
    let fresh = world.run_strategy(Strategy::LoadBalanced, Some(w2), &epoch2);

    println!(
        "{:<22} {:>14} {:>14}",
        "epoch-2 configuration", "max load", "vs fresh"
    );
    let f = fresh.report.overall_max();
    for (name, run) in [
        ("hot-potato", &hp2),
        ("stale epoch-1 weights", &stale),
        ("fresh epoch-2 weights", &fresh),
    ] {
        let m = run.report.overall_max();
        println!(
            "{:<22} {:>14} {:>13.1}%",
            name,
            m,
            100.0 * m as f64 / f.max(1) as f64
        );
    }
    println!("# expected shape: stale weights still beat hot-potato by a wide");
    println!("# margin (the drift keeps class mixes), but re-solving on fresh");
    println!("# measurements recovers the remaining gap.");
}
