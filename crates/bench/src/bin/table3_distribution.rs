//! Regenerates **Table III**: per-type maximum and minimum middlebox loads
//! on the campus topology under HP / Rand / LB enforcement.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin table3_distribution
//!     [--packets N]   total packets (default 10000000, the figure's top end)
//!     [--seed N]      world seed (default 3)
//!
//! Environment: `SDM_SHARDS` sets the flow-shard count (default:
//! autodetected core count). The table on stdout is byte-identical for any
//! shard count — CI diffs SDM_SHARDS=1 against SDM_SHARDS=4 to prove it.
//! Per-phase wall-clock goes to stderr so it never perturbs that diff.

use std::time::Instant;

use sdm_bench::{arg_value, ExperimentConfig, World, PLOT_ORDER};
use sdm_util::par::shard_count;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let total: u64 = arg_value(&args, "--packets")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000_000);
    let shards = shard_count();

    println!("# Table III — load distribution (max/min packets per middlebox type),");
    println!("# campus topology at {total} total packets");
    let t0 = Instant::now(); // lint:allow(wall-clock)
    let world = World::build(&ExperimentConfig::campus(seed));
    eprintln!("[table3] build world: {:.3}s", t0.elapsed().as_secs_f64());
    let t1 = Instant::now(); // lint:allow(wall-clock)
    let flows = world.flows(total, seed.wrapping_add(42));
    eprintln!(
        "[table3] generate {} flows: {:.3}s",
        flows.len(),
        t1.elapsed().as_secs_f64()
    );
    let t2 = Instant::now(); // lint:allow(wall-clock)
    let c = world.compare_strategies_sharded(&flows, shards);
    eprintln!(
        "[table3] run 3 strategies ({shards} shard{}): {:.3}s",
        if shards == 1 { "" } else { "s" },
        t2.elapsed().as_secs_f64()
    );

    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "Middlebox", "Hot-potato", "Random", "Load-balance"
    );
    for f in PLOT_ORDER {
        let (hp, rd, lb) = (
            c.hp.report.row(f),
            c.rand.report.row(f),
            c.lb.report.row(f),
        );
        println!(
            "{:<12} {:>14} {:>14} {:>14}",
            format!("{} max.", f.abbrev()),
            hp.map_or(0, |r| r.max),
            rd.map_or(0, |r| r.max),
            lb.map_or(0, |r| r.max),
        );
        println!(
            "{:<12} {:>14} {:>14} {:>14}",
            format!("{} min.", f.abbrev()),
            hp.map_or(0, |r| r.min),
            rd.map_or(0, |r| r.min),
            lb.map_or(0, |r| r.min),
        );
    }
    println!("# expected shape (paper): LB's max/min spread is far narrower than");
    println!("# Rand's, which is far narrower than HP's; WP and TM stay less");
    println!("# balanced than FW/IDS because fewer replicas exist.");
}
