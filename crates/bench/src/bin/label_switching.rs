//! Ablation C: steering encodings compared — plain IP-over-IP (§III.B),
//! label switching (§III.E) and strict source routing (the segment-routing
//! style baseline of §V). Packet-level simulation with near-MTU packets;
//! reports header overhead, fragmentation, control-plane cost and the
//! per-flow state footprint at middleboxes.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin label_switching
//!     [--flows N]     number of flows (default 200)
//!     [--pkts N]      packets per flow (default 50)
//!     [--payload N]   payload bytes (default 1470: fits the 1500 MTU bare,
//!                     exceeds it under one tunnel header or >7 SR segments)
//!     [--emulate]     emulate fragmentation/reassembly instead of counting
//!     [--seed N]      world seed (default 3)

use sdm_bench::{arg_value, ExperimentConfig, World};
use sdm_core::{EnforcementOptions, SteeringEncoding, Strategy};
use sdm_netsim::SimTime;
use sdm_workload::WorkloadConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let n_flows: usize = arg_value(&args, "--flows")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let pkts: u64 = arg_value(&args, "--pkts")
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let payload: u32 = arg_value(&args, "--payload")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1470);
    let emulate = args.iter().any(|a| a == "--emulate");

    println!("# Ablation C — steering encodings (§III.B vs §III.E vs §V SR baseline),");
    println!("# campus topology, {n_flows} flows x {pkts} packets, payload {payload} B, MTU 1500.");
    let world = World::build(&ExperimentConfig::campus(seed));
    let flows = {
        let cfg = WorkloadConfig {
            flows: n_flows,
            seed: seed.wrapping_add(9),
            ..Default::default()
        };
        sdm_workload::generate_flows(&world.generated, world.controller.addr_plan(), &cfg)
    };

    let mut results = Vec::new();
    for (name, encoding) in [
        ("IP-over-IP", SteeringEncoding::IpOverIp),
        ("label-switch", SteeringEncoding::LabelSwitching),
        ("source-route", SteeringEncoding::SourceRouting),
    ] {
        let mut enf = world.controller.enforcement(
            Strategy::HotPotato,
            None,
            EnforcementOptions {
                encoding,
                ..Default::default()
            },
        );
        if emulate {
            enf.sim_mut()
                .set_fragmentation(sdm_netsim::FragmentationMode::Emulate);
        }
        for (i, f) in flows.iter().enumerate() {
            // Stagger packets so the label-ready control round trip can
            // complete between a flow's first and second packet.
            enf.inject_flow_packets(f.five_tuple, pkts, payload, SimTime(i as u64), 64);
        }
        enf.run();
        let s = enf.sim().stats().clone();
        let state: usize = world
            .deployment
            .iter()
            .map(|(id, _)| enf.mbox_state(id).lock().labels.len())
            .sum();
        results.push((name, s, state));
    }

    println!(
        "{:<14} {:>10} {:>12} {:>15} {:>11} {:>8} {:>12} {:>10} {:>10}",
        "mode", "delivered", "encap hops", "extra hdr B", "frag evts", "control", "mbox entries",
        "fragments", "reassembly"
    );
    for (name, s, state) in &results {
        println!(
            "{:<14} {:>10} {:>12} {:>15} {:>11} {:>8} {:>12} {:>10} {:>10}",
            name,
            s.delivered + s.delivered_external,
            s.encapsulated_hops,
            s.extra_header_bytes,
            s.frag_events,
            s.control_received,
            state,
            s.fragments_created,
            s.reassembly_events,
        );
    }
    let (_, tunnel, _) = &results[0];
    let (_, label, _) = &results[1];
    let (_, sr, _) = &results[2];
    assert_eq!(
        tunnel.delivered + tunnel.delivered_external,
        label.delivered + label.delivered_external,
        "all modes must deliver identically"
    );
    assert_eq!(
        tunnel.delivered + tunnel.delivered_external,
        sr.delivered + sr.delivered_external,
        "all modes must deliver identically"
    );
    println!(
        "# fragmentation avoided by label switching: {:.1}% of tunnel-mode events",
        100.0 * (1.0 - label.frag_events as f64 / tunnel.frag_events.max(1) as f64)
    );
    println!("# expected shape: label switching ~eliminates encapsulation and");
    println!("# fragmentation at the cost of per-flow middlebox state + one control");
    println!("# packet per flow; source routing needs no state but pays header");
    println!("# bytes on every packet (and fragments when segments push the packet");
    println!("# past the MTU), which is the overhead §V argues against.");
}
