//! Ablation D: effectiveness of the §III.D flow cache — per-packet hit
//! rates at the proxies under the evaluation workload (packet-level
//! simulation), and the per-lookup cost of the trie classifier versus the
//! linear scan as the policy table grows.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin flow_cache
//!     [--packets N]  total packets, packet-level (default 200000)
//!     [--seed N]     world seed (default 3)

use std::time::Instant;

use sdm_bench::{arg_value, ExperimentConfig, World};
use sdm_core::Strategy;
use sdm_netsim::{FiveTuple, Ipv4Addr, Prefix, Protocol, SimTime, StubId};
use sdm_policy::{ActionList, NetworkFunction, Policy, PolicySet, PortMatch,
                 TrafficDescriptor, TrieClassifier};
use sdm_workload::generate_flows_with_total;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let total: u64 = arg_value(&args, "--packets")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    println!("# Ablation D — flow-cache hit rate and classifier cost,");
    println!("# campus topology, {total} packets injected individually.");
    let world = World::build(&ExperimentConfig::campus(seed));
    let flows = generate_flows_with_total(
        &world.generated,
        world.controller.addr_plan(),
        &Default::default(),
        total,
    );

    let mut enf = world
        .controller
        .enforcement(Strategy::HotPotato, None, Default::default());
    for (i, f) in flows.iter().enumerate() {
        enf.inject_flow_packets(f.five_tuple, f.packets, 512, SimTime(i as u64 % 1000), 5);
    }
    enf.run();

    let (mut hits, mut misses) = (0u64, 0u64);
    for s in 0..world.controller.addr_plan().stub_count() {
        let st = enf.proxy_state(StubId(s as u32));
        let stats = st.lock().flows.stats();
        hits += stats.hits;
        misses += stats.misses;
    }
    let pkts: u64 = flows.iter().map(|f| f.packets).sum();
    println!(
        "{} flows, {} packets: {} cache hits, {} misses",
        flows.len(),
        pkts,
        hits,
        misses
    );
    println!(
        "hit rate: {:.2}% (multi-field classification for only {:.2}% of packets;",
        100.0 * hits as f64 / (hits + misses).max(1) as f64,
        100.0 * misses as f64 / (hits + misses).max(1) as f64,
    );
    println!(
        "ideal = one miss per flow = {:.2}%)",
        100.0 * flows.len() as f64 / pkts as f64
    );

    // Classifier micro-cost: linear scan vs hierarchical trie, growing
    // policy-table sizes (synthetic prefix policies).
    println!("\n# classifier cost per lookup vs policy-table size");
    println!("{:>9} {:>14} {:>14}", "policies", "linear", "trie");
    let sample: Vec<FiveTuple> = (0..50_000u32)
        .map(|i| FiveTuple {
            src: Ipv4Addr(0x0a000000 | (i * 97) & 0xFFFFF),
            dst: Ipv4Addr(0x0a000000 | (i * 131) & 0xFFFFF),
            src_port: (i % 50_000) as u16,
            dst_port: (i % 64) as u16 * 16,
            proto: Protocol::Tcp,
        })
        .collect();
    for n in [30usize, 300, 3000] {
        let set = synthetic_policies(n);
        let trie = TrieClassifier::build(&set);
        let t = Instant::now(); // lint:allow(wall-clock)
        let mut acc = 0usize;
        for ft in &sample {
            acc += set.first_match(ft).map(|(id, _)| id.index()).unwrap_or(0);
        }
        let linear = t.elapsed();
        let t = Instant::now(); // lint:allow(wall-clock)
        let mut acc2 = 0usize;
        for ft in &sample {
            acc2 += trie.classify(ft).map(|id| id.index()).unwrap_or(0);
        }
        let trie_time = t.elapsed();
        assert_eq!(acc, acc2, "classifiers must agree at n={n}");
        println!(
            "{:>9} {:>12?}/l {:>12?}/l",
            n,
            linear / sample.len() as u32,
            trie_time / sample.len() as u32
        );
    }
    println!("# expected shape: near-ideal hit rate; trie lookup cost stays flat");
    println!("# while the linear scan grows with the table.");
}

/// Synthetic single-field-heavy policies spread over 10.0.0.0/8 prefixes.
fn synthetic_policies(n: usize) -> PolicySet {
    let mut set = PolicySet::new();
    for i in 0..n {
        let src = Prefix::new(Ipv4Addr(0x0a000000 | ((i as u32 * 4096) & 0xFFFFFF)), 20);
        let d = TrafficDescriptor::new()
            .src_prefix(src)
            .dst_port(PortMatch::Exact((i % 1024) as u16));
        set.push(Policy::new(d, ActionList::chain([NetworkFunction::Ids])));
    }
    set
}
