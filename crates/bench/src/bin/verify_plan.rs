//! Static enforcement-plan verification smoke: builds the paper's campus
//! and Waxman evaluation worlds and runs the `sdm-verify` plan verifier
//! over both — once on the hot-potato plan straight out of the controller,
//! and once on the full load-balanced plan (LP steering weights plus
//! enforcement options) after a measurement workload.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin verify_plan
//!     [--seed N]      world seed (default 3)
//!     [--packets N]   measurement workload, in packets (default 200000)
//!
//! One JSON report per (topology, pass) is printed; a healthy world
//! produces `"errors": 0` everywhere. Exit status: 0 when every report is
//! error-free, 1 otherwise — ci.sh runs this as an offline gate.

use std::process::ExitCode;

use sdm_bench::{arg_value, ExperimentConfig, World};
use sdm_core::{
    verify_controller, verify_enforcement, EnforcementOptions, LbOptions, Strategy,
};
use sdm_util::json::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let packets: u64 = arg_value(&args, "--packets")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    let mut failed = false;
    for (name, cfg) in [
        ("campus", ExperimentConfig::campus(seed)),
        ("waxman", ExperimentConfig::waxman(seed)),
    ] {
        let world = World::build(&cfg);

        // Pass 1: the static hot-potato plan (no weights, no options).
        let static_report = verify_controller(&world.controller);

        // Pass 2: measure a workload, solve the load-balancing LP, and
        // verify the complete enforcement configuration the LB strategy
        // would run with.
        let flows = world.flows(packets, seed.wrapping_add(17));
        let hp = world.run_strategy(Strategy::HotPotato, None, &flows);
        let (weights, _lb_report) = world
            .controller
            .solve_load_balanced(&hp.measurements, LbOptions::default())
            .expect("load-balancing LP must solve on the evaluation worlds");
        let options = EnforcementOptions::default();
        let lb_report = verify_enforcement(&world.controller, Some(&weights), &options);

        failed |= static_report.has_errors() || lb_report.has_errors();
        let out = Json::obj([
            ("topology", Json::from(name)),
            ("static", static_report.to_json()),
            ("load_balanced", lb_report.to_json()),
        ]);
        println!("{}", out.to_string_pretty());
    }

    if failed {
        eprintln!("verify_plan: plan verification FAILED (see reports above)");
        ExitCode::from(1)
    } else {
        println!("verify_plan: all plans verified clean");
        ExitCode::SUCCESS
    }
}
