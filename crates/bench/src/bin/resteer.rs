//! The online re-steer scenario (§III.C): a fixed epoch schedule through
//! [`sdm_core::EpochLoop`] — measure one epoch's traffic, warm re-solve
//! the steering LP from the previous epoch's simplex basis, verify the
//! plan, swap the weights into the running data plane — with a middlebox
//! failure after epoch 2 and a restore after epoch 4.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin resteer
//!     [--epochs N]    epochs to run (default 6)
//!     [--packets N]   packets injected per epoch (default 200000)
//!     [--seed N]      world seed (default 3)
//!
//! Environment: `SDM_SHARDS` sets the shard count, `SDM_BATCH` the vector
//! batch size. The table on stdout is **byte-identical** for any
//! combination of the two — `ci.sh` diffs 1-shard/batch-1 and
//! 4-shard/batch-256 runs against the committed golden
//! `results/resteer_golden.txt`. λ is printed with full `{:?}` precision
//! so even mantissa-level drift breaks the diff.

use sdm_bench::{arg_value, ExperimentConfig, World};
use sdm_core::{EnforcementOptions, EpochLoop, LbOptions, MiddleboxId};
use sdm_util::par::shard_count;
use sdm_workload::to_flow_specs;

fn busiest(loads: &[u64]) -> MiddleboxId {
    MiddleboxId(
        loads
            .iter()
            .enumerate()
            .max_by_key(|&(_, l)| l)
            .map(|(i, _)| i as u32)
            .expect("non-empty deployment"),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let epochs: u64 = arg_value(&args, "--epochs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let packets: u64 = arg_value(&args, "--packets")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    let world = World::build(&ExperimentConfig::campus(seed));
    let mut ep = EpochLoop::new(
        &world.controller,
        shard_count(),
        EnforcementOptions::default(),
        LbOptions::default(),
    );

    println!("# Online re-steer control loop: measure -> warm re-solve -> verify -> re-steer");
    println!("# campus topology, {packets} packets/epoch, {epochs} epochs;");
    println!("# busiest middlebox fails after epoch 2, is restored after epoch 4");
    println!(
        "{:>5} {:>6} {:>12} {:>22} {:>7} {:>5} {:>9}",
        "epoch", "cells", "volume", "lambda", "pivots", "warm", "activated"
    );
    let mut victim = MiddleboxId(0);
    for e in 1..=epochs {
        let flows = world.flows(packets, seed.wrapping_add(100 + e));
        let specs = to_flow_specs(&flows, 512);
        let r = ep.run_epoch(&specs).expect("epoch must solve and verify");
        println!(
            "{:>5} {:>6} {:>12.0} {:>22} {:>7} {:>5} {:>9}",
            r.epoch,
            r.cells,
            r.volume,
            format!("{:?}", r.lambda),
            r.pivots,
            r.warm,
            r.activated
        );
        if e == 2 {
            victim = busiest(&ep.middlebox_loads());
            ep.fail_middlebox(victim);
            println!("# fail middlebox {}", victim.0);
        }
        if e == 4 {
            ep.restore_middlebox(victim);
            println!("# restore middlebox {}", victim.0);
        }
    }
    println!(
        "# delivered {} dropped_failed {}",
        ep.delivered(),
        ep.dropped_failed()
    );
    println!("# loads {:?}", ep.middlebox_loads());
}
