//! The benchmark regression gate: compares a fresh micro-benchmark result
//! file against the committed baseline and fails (exit code 1) when any
//! paired benchmark's median regressed beyond the threshold.
//!
//! The fresh file is produced by the bench harness itself, e.g.
//!
//! ```sh
//! SDM_BENCH_OUT=results/BENCH_pr4.json cargo bench --workspace --offline
//! cargo run --release --offline -p sdm-bench --bin bench_gate
//! ```
//!
//! which is exactly what `ci.sh` does.
//!
//! Besides pairwise regressions the gate checks the flow-sharding speedup
//! (`sharding/hp_10m_shards1` vs `.../hp_10m_shards4`): on a host with at
//! least 4 hardware threads the 4-shard run must be ≥2x faster; on
//! smaller hosts the ratio is only reported (threads cannot beat physics
//! on a 1-core box).
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin bench_gate
//!     [--baseline PATH]          default results/BENCH_baseline.json
//!     [--current PATH]           default results/BENCH_pr4.json
//!     [--max-regress PCT]        default 25 (fail on >25% median slowdown)
//!     [--min-shard-speedup X]    default 2.0 (enforced only with >=4 cores)
//!     [--write-baseline]         on success, copy the current file over
//!                                the baseline (adopt the new numbers)

use std::process::ExitCode;

use sdm_bench::arg_value;
use sdm_util::bench_diff::{diff, gate, group_speedup, median_for, unpaired_new};
use sdm_util::json::Json;
use sdm_util::par::hardware_threads;

fn load(path: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

/// Checks the sharding speedup; returns `false` when the check is
/// enforced and fails.
fn shard_speedup_check(current: &Json, min_speedup: f64) -> bool {
    let (Some(s1), Some(s4)) = (
        median_for(current, "sharding", "hp_10m_shards1"),
        median_for(current, "sharding", "hp_10m_shards4"),
    ) else {
        println!("# sharding speedup: benches not present in current run, skipped");
        return true;
    };
    let speedup = s1 / s4;
    let cores = hardware_threads();
    if cores >= 4 {
        println!(
            "# sharding speedup: {speedup:.2}x at 4 shards ({cores} cores, required >= {min_speedup:.2}x)"
        );
        if speedup < min_speedup {
            println!(
                "bench gate FAILED — 4-shard run is only {speedup:.2}x faster than 1 shard \
(required {min_speedup:.2}x on a {cores}-core host)"
            );
            return false;
        }
    } else {
        println!(
            "# sharding speedup: {speedup:.2}x at 4 shards — informational only \
(host has {cores} core(s); the >= {min_speedup:.2}x gate needs >= 4)"
        );
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = arg_value(&args, "--baseline")
        .unwrap_or_else(|| "results/BENCH_baseline.json".to_string());
    let current_path = arg_value(&args, "--current")
        .unwrap_or_else(|| "results/BENCH_pr4.json".to_string());
    let max_regress_pct: f64 = arg_value(&args, "--max-regress")
        .and_then(|s| s.parse().ok())
        .unwrap_or(25.0);
    let min_shard_speedup: f64 = arg_value(&args, "--min-shard-speedup")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let write_baseline = args.iter().any(|a| a == "--write-baseline");
    let fail_ratio = 1.0 + max_regress_pct / 100.0;

    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench_gate: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };

    let deltas = diff(&baseline, &current);
    if deltas.is_empty() {
        eprintln!("bench_gate: no benchmarks paired between the two files");
        return ExitCode::FAILURE;
    }

    println!("# bench gate: {current_path} vs {baseline_path}");
    println!("# fail threshold: >{max_regress_pct:.0}% median regression");
    for d in &deltas {
        println!("{}", d.format_line());
    }
    for (group, name) in unpaired_new(&baseline, &current) {
        println!("{group}/{name:<32} new (no baseline)");
    }

    let mut groups: Vec<&str> = deltas.iter().map(|d| d.group.as_str()).collect();
    groups.dedup();
    println!("\n# per-group geometric-mean speedup (baseline / new):");
    for g in groups {
        if let Some(s) = group_speedup(&deltas, g) {
            println!("{g:<24} {s:>6.2}x");
        }
    }

    let shards_ok = shard_speedup_check(&current, min_shard_speedup);

    let failures = gate(&deltas, fail_ratio);
    if failures.is_empty() && shards_ok {
        println!("\nbench gate PASSED ({} benchmarks compared)", deltas.len());
        if write_baseline {
            match std::fs::copy(&current_path, &baseline_path) {
                Ok(_) => println!("baseline updated: {current_path} -> {baseline_path}"),
                Err(e) => {
                    eprintln!("bench_gate: cannot write baseline {baseline_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        ExitCode::SUCCESS
    } else {
        if !failures.is_empty() {
            println!("\nbench gate FAILED — {} regression(s):", failures.len());
            for d in &failures {
                println!("  {}", d.format_line());
            }
        }
        ExitCode::FAILURE
    }
}
