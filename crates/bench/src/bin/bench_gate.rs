//! The benchmark regression gate: compares a fresh micro-benchmark result
//! file against the committed baseline and fails (exit code 1) when any
//! paired benchmark's median regressed beyond the threshold — unless the
//! absolute delta sits below the applicable noise floor (`--noise-floor`,
//! default 50 ns globally; repeat with `GROUP=NS` to set per-group
//! floors), where single-core timer jitter dwarfs the signal. The
//! `table_scale` group defaults to a 10 µs floor: its big-table numbers
//! move with the host's memory system, and its real contract is the
//! dedicated scaling check below, not pairwise nanosecond diffs.
//!
//! The fresh file is produced by the bench harness itself, e.g.
//!
//! ```sh
//! SDM_BENCH_OUT=results/BENCH_pr10.json cargo bench --workspace --offline
//! cargo run --release --offline -p sdm-bench --bin bench_gate
//! ```
//!
//! which is exactly what `ci.sh` does.
//!
//! Besides pairwise regressions the gate checks two speedup targets on
//! the current file alone:
//!
//! * the flow-sharding speedup (`sharding/hp_10m_shards1` vs
//!   `.../hp_10m_shards4`): the 4-shard run must be ≥2x faster;
//! * the vector-path speedup (`throughput/hp_1m_pktlevel_b1` vs
//!   `.../hp_1m_pktlevel_b256`, the packet-level regime where same-flow
//!   runs actually form): the batched run must be ≥2x faster. The
//!   aggregate-path pair is reported informationally, and pkt/s figures
//!   are printed for every throughput bench.
//!
//! Both are enforced only on hosts with at least 4 hardware threads and
//! reported informationally otherwise — a 1-core CI box cannot speed up
//! by threading, and its batching gains are noisy enough to flap a gate.
//!
//! A third check is hardware-independent: the `warm_start` group records
//! the simplex **pivot counts** of a warm-started epoch re-solve sweep
//! next to a cold one (see `benches/warm_start.rs`), and the gate fails
//! when warm-starting stopped saving pivots — an algorithmic property, so
//! it is enforced on every host.
//!
//! A fourth check covers policy-state scaling (`benches/table_scale.rs`,
//! also enforced on every host): the hot-working-set lookup at 1M entries
//! must stay within 1.5x of the 10k-entry cost (same keys probed, so the
//! ratio is structural, not a DRAM artifact), and the recorded
//! exhaustion-attack counters must show the negative cache holding its
//! capacity cap. Bytes-per-entry figures are printed alongside.
//!
//! `--write-baseline` refuses to overwrite a committed
//! `results/BENCH_*.json` comparison input unless `--force` is also
//! given: those files are the trajectory record future PRs diff against,
//! and clobbering one silently rewrites history.
//!
//! Run with `--help` for the flag and exit-code reference.

use std::process::ExitCode;

use sdm_bench::arg_value;
use sdm_util::bench_diff::{diff, gate, group_speedup, median_for, unpaired_new};
use sdm_util::json::Json;
use sdm_util::par::hardware_threads;

/// Packet volume of each `throughput/hp_10m_*` bench; keep in sync with
/// `PACKETS` in `benches/throughput.rs`.
const THROUGHPUT_PACKETS: f64 = 10_000_000.0;

/// Packet volume of each `throughput/hp_1m_pktlevel_*` bench; keep in
/// sync with `PACKETS_PKTLEVEL` in `benches/throughput.rs`.
const THROUGHPUT_PACKETS_PKTLEVEL: f64 = 1_000_000.0;

const HELP: &str = "\
bench_gate — compare fresh micro-benchmark results against the committed baseline

USAGE:
  cargo run --release -p sdm-bench --bin bench_gate [FLAGS]

FLAGS:
  --baseline PATH         baseline JSON file
                          (default: results/BENCH_baseline.json)
  --current PATH          fresh JSON file produced via SDM_BENCH_OUT
                          (default: results/BENCH_pr10.json)
  --max-regress PCT       fail when a paired benchmark's median regressed
                          by more than PCT percent (default: 25)
  --noise-floor [GROUP=]NS
                          ignore paired regressions whose absolute median
                          delta is at most NS nanoseconds — sub-jitter
                          changes on tiny microbenches flap rather than
                          measure. Bare NS sets the global floor (default
                          50); GROUP=NS sets a per-group floor and may be
                          repeated. Built-in per-group default:
                          table_scale=10000 (big-table medians track the
                          host memory system; the scaling contract is the
                          dedicated 1.5x check instead)
  --max-hot-ratio X       required table_scale lookup_hot_1m over
                          lookup_hot_10k median ratio — the policy-state
                          scaling contract, enforced on every host
                          (default: 1.5)
  --min-shard-speedup X   required sharding/hp_10m_shards1-over-shards4
                          median ratio; enforced only on hosts with >= 4
                          hardware threads (default: 2.0)
  --min-batch-speedup X   required throughput/hp_1m_pktlevel_b1-over-
                          hp_1m_pktlevel_b256 median ratio (packet-level
                          regime); enforced only on hosts with >= 4
                          hardware threads (default: 2.0)
  --write-baseline        on success, copy the current file over the
                          baseline (adopt the new numbers); refuses a
                          committed results/BENCH_*.json target unless
                          --force is also given
  --force                 allow --write-baseline to overwrite a committed
                          results/BENCH_*.json comparison input
  --help                  print this reference and exit

EXIT CODES:
  0  gate passed (and baseline updated, if --write-baseline)
  1  a benchmark regressed beyond --max-regress, a speedup target was
     missed on a >= 4-core host, the warm-start pivot check failed, the
     table-scale hot-lookup ratio or negative-cache cap check failed, an
     input file was missing/unparsable, no benchmarks paired between the
     files, --write-baseline targeted a committed results/BENCH_*.json
     without --force, or the baseline could not be written";

/// Whether `path` looks like a committed `results/BENCH_*.json`
/// comparison input (the perf-trajectory record): an *existing* file
/// named `BENCH_*.json` inside a `results/` directory. Freshly produced
/// scratch outputs elsewhere may be overwritten freely.
fn is_committed_baseline(path: &str) -> bool {
    let p = std::path::Path::new(path);
    let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
    let in_results = p
        .parent()
        .and_then(|d| d.file_name())
        .and_then(|n| n.to_str())
        == Some("results");
    in_results && name.starts_with("BENCH_") && name.ends_with(".json") && p.is_file()
}

fn load(path: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

/// Checks the sharding speedup; returns `false` when the check is
/// enforced and fails.
fn shard_speedup_check(current: &Json, min_speedup: f64) -> bool {
    let (Some(s1), Some(s4)) = (
        median_for(current, "sharding", "hp_10m_shards1"),
        median_for(current, "sharding", "hp_10m_shards4"),
    ) else {
        println!("# sharding speedup: benches not present in current run, skipped");
        return true;
    };
    let speedup = s1 / s4;
    let cores = hardware_threads();
    if cores >= 4 {
        println!(
            "# sharding speedup: {speedup:.2}x at 4 shards ({cores} cores, required >= {min_speedup:.2}x)"
        );
        if speedup < min_speedup {
            println!(
                "bench gate FAILED — 4-shard run is only {speedup:.2}x faster than 1 shard \
(required {min_speedup:.2}x on a {cores}-core host)"
            );
            return false;
        }
    } else {
        println!(
            "# sharding speedup: {speedup:.2}x at 4 shards — informational only \
(host has {cores} core(s); the >= {min_speedup:.2}x gate needs >= 4)"
        );
    }
    true
}

/// Checks the vector-path (batched) throughput speedup and prints pkt/s;
/// returns `false` when the check is enforced and fails.
///
/// Both regimes are reported; the *packet-level* pair carries the gate,
/// because aggregate specs collapse every flow into one event (run
/// length 1) and structurally cannot show the per-run amortisation the
/// vector path exists for.
fn batch_speedup_check(current: &Json, min_speedup: f64) -> bool {
    let (Some(p1), Some(p256)) = (
        median_for(current, "throughput", "hp_1m_pktlevel_b1"),
        median_for(current, "throughput", "hp_1m_pktlevel_b256"),
    ) else {
        println!("# batching speedup: benches not present in current run, skipped");
        return true;
    };
    for name in [
        "hp_10m_b1_shards1",
        "hp_10m_b256_shards1",
        "hp_10m_b1_shards4",
        "hp_10m_b256_shards4",
    ] {
        if let Some(ns) = median_for(current, "throughput", name) {
            println!(
                "# throughput/{name:<24} {:>12.0} pkt/s",
                THROUGHPUT_PACKETS / (ns / 1e9)
            );
        }
    }
    for (name, ns) in [("hp_1m_pktlevel_b1", p1), ("hp_1m_pktlevel_b256", p256)] {
        println!(
            "# throughput/{name:<24} {:>12.0} pkt/s",
            THROUGHPUT_PACKETS_PKTLEVEL / (ns / 1e9)
        );
    }
    if let (Some(a1), Some(a256)) = (
        median_for(current, "throughput", "hp_10m_b1_shards1"),
        median_for(current, "throughput", "hp_10m_b256_shards1"),
    ) {
        println!(
            "# batching speedup (aggregate): {:.2}x at batch 256 — informational \
(aggregate specs have run length 1)",
            a1 / a256
        );
    }
    let speedup = p1 / p256;
    let cores = hardware_threads();
    if cores >= 4 {
        println!(
            "# batching speedup (packet-level): {speedup:.2}x at batch 256 \
({cores} cores, required >= {min_speedup:.2}x)"
        );
        if speedup < min_speedup {
            println!(
                "bench gate FAILED — batched (256) packet-level run is only {speedup:.2}x \
faster than scalar (required {min_speedup:.2}x on a {cores}-core host)"
            );
            return false;
        }
    } else {
        println!(
            "# batching speedup (packet-level): {speedup:.2}x at batch 256 — informational only \
(host has {cores} core(s); the >= {min_speedup:.2}x gate needs >= 4)"
        );
    }
    true
}

/// Checks that warm-starting the epoch re-solve sweep saves simplex
/// pivots over cold solves (the `warm_start` group's recorded counters);
/// returns `false` when the benches are present and warm stopped winning.
/// Pivot counts are deterministic, so — unlike the timing-based speedup
/// checks — this is enforced regardless of core count.
fn warm_start_check(current: &Json) -> bool {
    let (Some(cold), Some(warm)) = (
        median_for(current, "warm_start", "pivots_cold"),
        median_for(current, "warm_start", "pivots_warm"),
    ) else {
        println!("# warm-start pivots: benches not present in current run, skipped");
        return true;
    };
    if let (Some(c_ns), Some(w_ns)) = (
        median_for(current, "warm_start", "epoch_sweep_cold"),
        median_for(current, "warm_start", "epoch_sweep_warm"),
    ) {
        println!(
            "# warm-start re-solve latency: {:.2}x faster than cold over the epoch sweep",
            c_ns / w_ns
        );
    }
    println!(
        "# warm-start pivots: {warm:.0} warm vs {cold:.0} cold over the epoch sweep \
({:.1}% saved)",
        (1.0 - warm / cold) * 100.0
    );
    if warm >= cold {
        println!(
            "bench gate FAILED — warm-started epoch sweep must spend fewer simplex pivots \
than cold re-solves ({warm:.0} >= {cold:.0})"
        );
        return false;
    }
    true
}

/// Noise-floor configuration: a global default plus per-group overrides
/// (`--noise-floor` is repeatable; bare `NS` sets the global floor,
/// `GROUP=NS` a per-group one). `table_scale` defaults to 10 µs — see the
/// module docs.
struct NoiseFloors {
    global_ns: f64,
    per_group: Vec<(String, f64)>,
}

impl NoiseFloors {
    fn parse(args: &[String]) -> Result<NoiseFloors, String> {
        let mut floors = NoiseFloors {
            global_ns: 50.0,
            per_group: vec![("table_scale".to_string(), 10_000.0)],
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a != "--noise-floor" {
                continue;
            }
            let v = it
                .next()
                .ok_or_else(|| "--noise-floor needs a value".to_string())?;
            match v.split_once('=') {
                Some((group, ns)) => {
                    let ns: f64 = ns
                        .parse()
                        .map_err(|_| format!("bad --noise-floor value {v}"))?;
                    // last flag wins for a repeated group
                    floors.per_group.retain(|(g, _)| g != group);
                    floors.per_group.push((group.to_string(), ns));
                }
                None => {
                    floors.global_ns = v
                        .parse()
                        .map_err(|_| format!("bad --noise-floor value {v}"))?;
                }
            }
        }
        Ok(floors)
    }

    fn for_group(&self, group: &str) -> f64 {
        self.per_group
            .iter()
            .find(|(g, _)| g == group)
            .map_or(self.global_ns, |(_, ns)| *ns)
    }
}

/// Checks the policy-state scaling contract on the `table_scale` group;
/// returns `false` when the benches are present and a check fails. The
/// hot-lookup ratio compares the *same* working set probed against 10k-
/// and 1M-entry tables, so it measures structural cost (probe lengths)
/// rather than DRAM reach and is enforced on every host. The recorded
/// exhaustion-attack counters are deterministic.
fn table_scale_check(current: &Json, max_hot_ratio: f64) -> bool {
    let (Some(hot_10k), Some(hot_1m)) = (
        median_for(current, "table_scale", "lookup_hot_10k"),
        median_for(current, "table_scale", "lookup_hot_1m"),
    ) else {
        println!("# table scale: benches not present in current run, skipped");
        return true;
    };
    let mut ok = true;
    for label in ["10k", "100k", "1m"] {
        if let Some(b) = median_for(current, "table_scale", &format!("bytes_per_entry_{label}")) {
            println!("# table_scale bytes/entry at {label:<4} {b:>8.1}");
        }
    }
    let ratio = hot_1m / hot_10k;
    println!(
        "# table_scale hot-lookup scaling: {ratio:.2}x from 10k to 1M entries \
(required <= {max_hot_ratio:.2}x, enforced on every host)"
    );
    if ratio > max_hot_ratio {
        println!(
            "bench gate FAILED — hot-working-set lookup at 1M entries costs {ratio:.2}x \
the 10k cost (required <= {max_hot_ratio:.2}x)"
        );
        ok = false;
    }
    if let (Some(len), Some(cap), Some(ev)) = (
        median_for(current, "table_scale", "negcache_len_attack"),
        median_for(current, "table_scale", "negcache_cap_attack"),
        median_for(current, "table_scale", "negcache_evictions_attack"),
    ) {
        println!(
            "# table_scale exhaustion attack: {len:.0} negative entries live of {cap:.0} cap \
({ev:.0} evicted)"
        );
        if len > cap {
            println!(
                "bench gate FAILED — negative cache exceeded its capacity cap under the \
exhaustion attack ({len:.0} > {cap:.0})"
            );
            ok = false;
        }
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return ExitCode::SUCCESS;
    }
    let baseline_path = arg_value(&args, "--baseline")
        .unwrap_or_else(|| "results/BENCH_baseline.json".to_string());
    let current_path = arg_value(&args, "--current")
        .unwrap_or_else(|| "results/BENCH_pr10.json".to_string());
    let max_regress_pct: f64 = arg_value(&args, "--max-regress")
        .and_then(|s| s.parse().ok())
        .unwrap_or(25.0);
    let min_shard_speedup: f64 = arg_value(&args, "--min-shard-speedup")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let min_batch_speedup: f64 = arg_value(&args, "--min-batch-speedup")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let max_hot_ratio: f64 = arg_value(&args, "--max-hot-ratio")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.5);
    let noise_floors = match NoiseFloors::parse(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let write_baseline = args.iter().any(|a| a == "--write-baseline");
    let force = args.iter().any(|a| a == "--force");
    let fail_ratio = 1.0 + max_regress_pct / 100.0;

    // Refuse up front, before any timing runs are compared: adopting new
    // numbers over a committed comparison input rewrites the trajectory
    // record and must be an explicit decision.
    if write_baseline && !force && is_committed_baseline(&baseline_path) {
        eprintln!(
            "bench_gate: refusing --write-baseline over committed baseline {baseline_path}; \
pass --force to overwrite it"
        );
        return ExitCode::FAILURE;
    }

    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench_gate: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };

    let deltas = diff(&baseline, &current);
    if deltas.is_empty() {
        eprintln!("bench_gate: no benchmarks paired between the two files");
        return ExitCode::FAILURE;
    }

    println!("# bench gate: {current_path} vs {baseline_path}");
    println!("# fail threshold: >{max_regress_pct:.0}% median regression");
    for d in &deltas {
        println!("{}", d.format_line());
    }
    for (group, name) in unpaired_new(&baseline, &current) {
        println!("{group}/{name:<32} new (no baseline)");
    }

    let mut groups: Vec<&str> = deltas.iter().map(|d| d.group.as_str()).collect();
    groups.dedup();
    println!("\n# per-group geometric-mean speedup (baseline / new):");
    for g in groups {
        if let Some(s) = group_speedup(&deltas, g) {
            println!("{g:<24} {s:>6.2}x");
        }
    }

    let shards_ok = shard_speedup_check(&current, min_shard_speedup);
    let batch_ok = batch_speedup_check(&current, min_batch_speedup);
    let warm_ok = warm_start_check(&current);
    let scale_ok = table_scale_check(&current, max_hot_ratio);

    let mut failures = gate(&deltas, fail_ratio);
    // Sub-noise-floor absolute deltas cannot be measured reliably on this
    // hardware: a 25% regression on a 70 ns microbench is ~18 ns — inside
    // timer jitter — and would flap the gate. The floor applies per group
    // so heavyweight groups can opt out of nanosecond pairing entirely.
    failures.retain(|d| d.new_ns - d.baseline_ns > noise_floors.for_group(&d.group));
    if failures.is_empty() && shards_ok && batch_ok && warm_ok && scale_ok {
        println!("\nbench gate PASSED ({} benchmarks compared)", deltas.len());
        if write_baseline {
            match std::fs::copy(&current_path, &baseline_path) {
                Ok(_) => println!("baseline updated: {current_path} -> {baseline_path}"),
                Err(e) => {
                    eprintln!("bench_gate: cannot write baseline {baseline_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        ExitCode::SUCCESS
    } else {
        if !failures.is_empty() {
            println!("\nbench gate FAILED — {} regression(s):", failures.len());
            for d in &failures {
                println!("  {}", d.format_line());
            }
        }
        ExitCode::FAILURE
    }
}
