//! The benchmark regression gate: compares a fresh micro-benchmark result
//! file against the committed baseline and fails (exit code 1) when any
//! paired benchmark's median regressed beyond the threshold.
//!
//! The fresh file is produced by the bench harness itself, e.g.
//!
//! ```sh
//! SDM_BENCH_OUT=results/BENCH_pr2.json cargo bench --workspace --offline
//! cargo run --release --offline -p sdm-bench --bin bench_gate
//! ```
//!
//! which is exactly what `ci.sh` does.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin bench_gate
//!     [--baseline PATH]     default results/BENCH_baseline.json
//!     [--current PATH]      default results/BENCH_pr2.json
//!     [--max-regress PCT]   default 25 (fail on >25% median slowdown)

use std::process::ExitCode;

use sdm_bench::arg_value;
use sdm_util::bench_diff::{diff, gate, group_speedup};
use sdm_util::json::Json;

fn load(path: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = arg_value(&args, "--baseline")
        .unwrap_or_else(|| "results/BENCH_baseline.json".to_string());
    let current_path = arg_value(&args, "--current")
        .unwrap_or_else(|| "results/BENCH_pr2.json".to_string());
    let max_regress_pct: f64 = arg_value(&args, "--max-regress")
        .and_then(|s| s.parse().ok())
        .unwrap_or(25.0);
    let fail_ratio = 1.0 + max_regress_pct / 100.0;

    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench_gate: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };

    let deltas = diff(&baseline, &current);
    if deltas.is_empty() {
        eprintln!("bench_gate: no benchmarks paired between the two files");
        return ExitCode::FAILURE;
    }

    println!("# bench gate: {current_path} vs {baseline_path}");
    println!("# fail threshold: >{max_regress_pct:.0}% median regression");
    for d in &deltas {
        println!("{}", d.format_line());
    }

    let mut groups: Vec<&str> = deltas.iter().map(|d| d.group.as_str()).collect();
    groups.dedup();
    println!("\n# per-group geometric-mean speedup (baseline / new):");
    for g in groups {
        if let Some(s) = group_speedup(&deltas, g) {
            println!("{g:<24} {s:>6.2}x");
        }
    }

    let failures = gate(&deltas, fail_ratio);
    if failures.is_empty() {
        println!("\nbench gate PASSED ({} benchmarks compared)", deltas.len());
        ExitCode::SUCCESS
    } else {
        println!("\nbench gate FAILED — {} regression(s):", failures.len());
        for d in &failures {
            println!("  {}", d.format_line());
        }
        ExitCode::FAILURE
    }
}
