//! Regenerates **Figure 5**: maximum load on any FW / IDS / WP / TM
//! middlebox versus total traffic volume on the Waxman topology (25 cores,
//! 400 edges), under HP / Rand / LB enforcement.
//!
//! Usage:
//!   cargo run --release -p sdm-bench --bin fig5_waxman
//!     [--volumes 1,2,...,10]   total packets, in millions (default 1..10)
//!     [--seed N]               world seed (default 3)
//!
//! Environment: `SDM_SHARDS` sets the flow-shard count of each run
//! (default: autodetected core count); output is identical for any value.

use sdm_bench::{arg_value, figure_header, figure_row, ExperimentConfig, World};
use sdm_util::par::{par_map, shard_count};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let volumes: Vec<u64> = arg_value(&args, "--volumes")
        .map(|s| {
            s.split(',')
                .filter_map(|v| v.trim().parse::<u64>().ok())
                .collect()
        })
        .unwrap_or_else(|| (1..=10).collect());
    let shards = shard_count();

    println!("# Figure 5 — Waxman topology: max middlebox load vs traffic volume");
    println!("# columns per type: hot-potato (HP), random (Rd), load-balanced (LB)");
    let world = World::build(&ExperimentConfig::waxman(seed));
    println!("{}", figure_header());
    // each volume is an independent experiment: sweep them on scoped
    // threads, and shard the flows of each run on top (SDM_SHARDS)
    let rows = par_map(&volumes, |_, &m| {
        let total = m * 1_000_000;
        let flows = world.flows(total, seed.wrapping_add(m));
        let c = world.compare_strategies_sharded(&flows, shards);
        figure_row(total, &c)
    });
    for row in rows {
        println!("{row}");
    }
    println!("# expected shape (paper): loads grow linearly; LB < Rand < HP for every type");
}
