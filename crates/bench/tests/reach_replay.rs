//! PR-10 static/dynamic agreement property tests: every `R0xx` witness
//! the reach checker emits must replay in the simulator with exactly the
//! predicted outcome — at every execution-mode corner (`SDM_SHARDS` 1/4
//! × `SDM_BATCH` 1/256) — and deployments whose assertions all hold must
//! produce an empty corpus that trivially replays clean.
//!
//! The corners are exercised in-process by setting the environment
//! variables the engine reads at construction; all replays happen inside
//! one test so the process-global variables are never raced.

use sdm_bench::reach_worlds::{hazard_pass, world_reach};
use sdm_bench::replay::replay_corpus;
use sdm_bench::ExperimentConfig;
use sdm_core::{EnforcementOptions, EpochLoop, LbOptions, MiddleboxId, Strategy};
use sdm_verify::reach::{check_assertions, parse_assertions, ReachCode};
use sdm_workload::to_flow_specs;

const CAMPUS_ASSERTS: &str = include_str!("../../../results/assertions_campus.txt");

#[test]
fn every_witness_replays_with_predicted_outcome_at_all_corners() {
    let assertions = parse_assertions(CAMPUS_ASSERTS).expect("campus assertions parse");
    let mut wr = world_reach(&ExperimentConfig::campus(1));
    let report = check_assertions(&wr.view, wr.world.controller.routes(), &assertions);
    assert!(
        !report.is_clean(),
        "the committed assertion file must contain refutable assertions"
    );
    let mut corpus = report.scenarios();
    assert!(report.has_code(ReachCode::IsolationBreach));
    assert!(report.has_code(ReachCode::WaypointBypass));

    // The epoch-hazard class: a middlebox fails while proxies still hold
    // pinned flows; the static tier must find the window...
    let (_failed, hazard_report) = hazard_pass(&mut wr);
    assert!(hazard_report.has_code(ReachCode::StalePinnedFlow));
    corpus.extend(hazard_report.scenarios());
    assert!(
        hazard_report.scenarios().iter().any(|s| s.code == "R005"),
        "the hazard pass must lower at least one stale-pin window to a scenario"
    );

    // ...and the simulator must confirm every witness, under the scalar
    // and vector engines and with sharding requested and not.
    for shards in ["1", "4"] {
        for batch in ["1", "256"] {
            std::env::set_var("SDM_SHARDS", shards);
            std::env::set_var("SDM_BATCH", batch);
            let (verdicts, all_agree) = replay_corpus(
                &wr.world.controller,
                Strategy::HotPotato,
                None,
                wr.options,
                &corpus,
            );
            assert_eq!(verdicts.len(), corpus.len());
            let disagreements: Vec<String> = verdicts
                .iter()
                .filter(|v| !v.agrees)
                .map(|v| format!("{}: {:?}", v.name, v.mismatches))
                .collect();
            assert!(
                all_agree,
                "simulator disagreed at SDM_SHARDS={shards} SDM_BATCH={batch}:\n{}",
                disagreements.join("\n")
            );
        }
    }
    std::env::remove_var("SDM_SHARDS");
    std::env::remove_var("SDM_BATCH");
}

#[test]
fn clean_deployment_produces_empty_corpus_and_replays_clean() {
    // Assertions the campus deployment satisfies: loop freedom, and
    // isolation from enterprise space no stub subnet backs (unroutable,
    // so the isolation holds vacuously).
    let assertions =
        parse_assertions("loop-free ttl 64\nisolate 10.0.0.0/20 -> 10.200.0.0/16\n")
            .expect("assertions parse");
    let wr = world_reach(&ExperimentConfig::campus(1));
    let report = check_assertions(&wr.view, wr.world.controller.routes(), &assertions);
    assert!(
        report.is_clean(),
        "unexpected findings: {:?}",
        report.findings
    );
    assert!(report.results.iter().all(|r| r.holds));
    let corpus = report.scenarios();
    assert!(corpus.is_empty());

    let (verdicts, all_agree) = replay_corpus(
        &wr.world.controller,
        Strategy::HotPotato,
        None,
        wr.options,
        &corpus,
    );
    assert!(all_agree && verdicts.is_empty());
}

#[test]
fn epoch_loop_exposes_stale_pin_hazard_to_the_checker() {
    // The live control loop: run an epoch (pins flows under the solved
    // weights), crash a middlebox, and ask the loop's own verification
    // hook; the mid-epoch hazard state must surface as R005.
    let world = sdm_bench::World::build(&ExperimentConfig::campus(1));
    let mut ep = EpochLoop::new(
        &world.controller,
        1,
        EnforcementOptions::default(),
        LbOptions::default(),
    );
    let flows = world.flows(50_000, 11);
    let specs = to_flow_specs(&flows, 512);
    ep.run_epoch(&specs).expect("epoch must solve");

    let clean = ep.verify_reach();
    assert!(
        !clean.has_code(ReachCode::StalePinnedFlow),
        "no stale-pin window before any failure"
    );

    for m in 0..world.deployment.len() as u32 {
        ep.fail_middlebox(MiddleboxId(m));
    }
    let report = ep.verify_reach();
    assert!(
        report.has_code(ReachCode::StalePinnedFlow),
        "all boxes failed mid-epoch: every pinned flow is stale"
    );

    ep.restore_middlebox(MiddleboxId(0));
    let partial = ep.verify_reach();
    assert!(partial.has_code(ReachCode::StalePinnedFlow));
}
