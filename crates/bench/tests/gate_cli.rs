//! CLI tests for `bench_gate`'s baseline-adoption safety: `--write-baseline`
//! must refuse to overwrite a committed `results/BENCH_*.json` comparison
//! input unless `--force` is given, while scratch targets elsewhere stay
//! freely writable.

use std::path::Path;
use std::process::Command;

/// A minimal valid bench-result file with one group/bench at `median` ns.
fn bench_json(median: f64) -> String {
    format!(
        "{{\"g\": {{\"b\": {{\"batch\": 1, \"samples\": 2, \"mean_ns\": {median}, \
\"median_ns\": {median}, \"p95_ns\": {median}, \"min_ns\": {median}}}}}}}\n"
    )
}

fn run_gate(baseline: &Path, current: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .arg("--baseline")
        .arg(baseline)
        .arg("--current")
        .arg(current)
        .args(extra)
        .output()
        .expect("bench_gate must spawn")
}

fn setup(tag: &str) -> (std::path::PathBuf, std::path::PathBuf, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("sdm-gate-cli-{tag}"));
    let results = dir.join("results");
    std::fs::create_dir_all(&results).unwrap();
    // committed-looking baseline: results/BENCH_*.json that already exists
    let baseline = results.join("BENCH_fake.json");
    std::fs::write(&baseline, bench_json(200.0)).unwrap();
    // fresh run, comfortably faster so the gate itself passes
    let current = dir.join("fresh.json");
    std::fs::write(&current, bench_json(150.0)).unwrap();
    (dir, baseline, current)
}

#[test]
fn write_baseline_refuses_committed_target_without_force() {
    let (dir, baseline, current) = setup("refuse");
    let out = run_gate(&baseline, &current, &["--write-baseline"]);
    assert!(
        !out.status.success(),
        "must refuse: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("refusing --write-baseline"),
        "stderr must explain the refusal, got: {err}"
    );
    assert_eq!(
        std::fs::read_to_string(&baseline).unwrap(),
        bench_json(200.0),
        "committed baseline must be untouched"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn write_baseline_with_force_overwrites_committed_target() {
    let (dir, baseline, current) = setup("force");
    let out = run_gate(&baseline, &current, &["--write-baseline", "--force"]);
    assert!(
        out.status.success(),
        "forced adoption must pass: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&baseline).unwrap(),
        bench_json(150.0),
        "--force must adopt the new numbers"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn write_baseline_to_scratch_path_needs_no_force() {
    let (dir, _, current) = setup("scratch");
    // a baseline outside results/ (or not BENCH_*.json) is scratch
    let scratch = dir.join("scratch_baseline.json");
    std::fs::write(&scratch, bench_json(200.0)).unwrap();
    let out = run_gate(&scratch, &current, &["--write-baseline"]);
    assert!(
        out.status.success(),
        "scratch adoption must pass without --force: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read_to_string(&scratch).unwrap(), bench_json(150.0));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn gate_without_write_baseline_never_writes() {
    let (dir, baseline, current) = setup("readonly");
    let out = run_gate(&baseline, &current, &[]);
    assert!(out.status.success());
    assert_eq!(
        std::fs::read_to_string(&baseline).unwrap(),
        bench_json(200.0),
        "plain gate run must not touch the baseline"
    );
    std::fs::remove_dir_all(dir).ok();
}
