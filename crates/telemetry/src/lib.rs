//! Deterministic observability substrate for the SDM reproduction.
//!
//! The workspace's dependability story is built on *byte-identical
//! replays*: the same deployment run at 1 or 4 flow-shards, or at batch
//! size 1 or 256, must produce the same figures. Telemetry has to obey
//! the same discipline or it is useless for diagnosing those runs — so
//! this crate provides
//!
//! * a **static metric registry** ([`REGISTRY`]): every family has a
//!   `&'static` name, a kind (counter / gauge / histogram), a small
//!   fixed label set, and an *invariance class* — whether its value is
//!   provably identical across `SDM_SHARDS` / `SDM_BATCH` corners
//!   (see [`FamilyDesc::invariant`]);
//! * a **lock-free per-shard collector** ([`ShardTelemetry`]) for the
//!   handful of families recorded on the data-plane hot path, using
//!   relaxed atomics behind a single `enabled` check so a disabled
//!   collector is one predictable branch;
//! * a plain-`u64` [`Snapshot`] that control-plane code fills by
//!   scraping existing counters, merged **in shard-index order** like
//!   every other fold in the workspace;
//! * two exporters — a deterministic JSON writer ([`Snapshot::to_json`])
//!   and Prometheus text exposition ([`Snapshot::to_prometheus`]) —
//!   which by default emit only the invariant families, so their output
//!   is a goldenable CI artifact.
//!
//! No timestamps appear anywhere in this crate: data-plane time is
//! sim-ticks owned by `sdm-netsim`, and wall-clock stays confined to the
//! lint-exempt bench harness (`sdm-lint` enforces this for
//! `sdm-telemetry` too).
//!
//! # Example
//!
//! ```
//! use sdm_telemetry::{family, Hop, ShardTelemetry, Snapshot};
//!
//! let tel = ShardTelemetry::new(true);
//! tel.steer_decision(Hop::Proxy);
//! tel.observe_run_length(17);
//!
//! let mut snap = Snapshot::new();
//! tel.export_into(&mut snap);
//! snap.add(family::PACKETS_DELIVERED, 1000);
//! let json = snap.to_json(false); // invariant families only
//! assert!(json.contains("sdm_steer_decisions_total"));
//! assert!(!json.contains("sdm_batch_run_length")); // non-invariant
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets per histogram: bucket `i` holds observations
/// `v` with `2^i <= v+ < 2^(i+1)` (bucket 0 also holds `v == 0`), so the
/// largest bucket covers everything from `2^31` up.
pub const HIST_BUCKETS: usize = 32;

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count (merged by summing).
    Counter,
    /// Point-in-time level — end-of-run table sizes and the like. Gauges
    /// merge by summing too: a sharded run's total entries is the sum of
    /// the shards' private tables.
    Gauge,
    /// Log2-bucketed distribution with count and sum.
    Histogram,
}

/// The label scheme of a family.
#[derive(Debug, Clone, Copy)]
pub enum Labels {
    /// No labels: exactly one cell.
    None,
    /// One label key with a small static value set: one cell per value,
    /// always present (zero-valued cells are kept so snapshots from
    /// different runs align).
    Fixed(&'static str, &'static [&'static str]),
    /// One label key indexed by a dense runtime id (e.g. middlebox
    /// index). Cells are appended in index order by the scraper.
    Dense(&'static str),
}

/// A metric family: the registry entry that gives a metric its name,
/// meaning and invariance class.
#[derive(Debug)]
pub struct FamilyDesc {
    /// Exposition name (Prometheus conventions: `_total` for counters).
    pub name: &'static str,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// One-line meaning, exported as the Prometheus `# HELP` text.
    pub help: &'static str,
    /// `true` iff the family's value is provably byte-identical across
    /// `SDM_SHARDS` and `SDM_BATCH` corners (flow-partitioned additive
    /// counts). Non-invariant families — anything counting *engine
    /// mechanics* such as batch coalescing runs, per-shard queue depths
    /// or pinned-decision replays — are excluded from golden exports.
    pub invariant: bool,
    /// Label scheme.
    pub labels: Labels,
}

/// `device=` label values for the per-table families.
pub const DEVICE_KINDS: &[&str] = &["proxy", "ingress", "mbox"];
/// `hop=` label values for the steering families.
pub const STEER_HOPS: &[&str] = &["proxy", "middlebox"];
/// `mode=` label values for the LP-solve family.
pub const LP_MODES: &[&str] = &["cold", "warm"];

/// Registry indices: `family::FLOW_HITS` etc. index [`REGISTRY`] and are
/// the handles all recording/scraping code uses.
pub mod family {
    /// `sdm_flow_table_hits_total`
    pub const FLOW_HITS: usize = 0;
    /// `sdm_flow_table_misses_total`
    pub const FLOW_MISSES: usize = 1;
    /// `sdm_flow_table_negative_hits_total`
    pub const FLOW_NEGATIVE_HITS: usize = 2;
    /// `sdm_flow_table_expired_total`
    pub const FLOW_EXPIRED: usize = 3;
    /// `sdm_flow_table_sweeps_total`
    pub const FLOW_SWEEPS: usize = 4;
    /// `sdm_flow_entries`
    pub const FLOW_ENTRIES: usize = 5;
    /// `sdm_label_entries`
    pub const LABEL_ENTRIES: usize = 6;
    /// `sdm_label_switched_total`
    pub const LABEL_SWITCHED: usize = 7;
    /// `sdm_label_misses_total`
    pub const LABEL_MISSES: usize = 8;
    /// `sdm_steer_decisions_total`
    pub const STEER_DECISIONS: usize = 9;
    /// `sdm_steer_pinned_total`
    pub const STEER_PINNED: usize = 10;
    /// `sdm_queue_occupancy`
    pub const QUEUE_OCCUPANCY: usize = 11;
    /// `sdm_batch_run_length`
    pub const BATCH_RUN_LENGTH: usize = 12;
    /// `sdm_mbox_load_packets_total`
    pub const MBOX_LOAD: usize = 13;
    /// `sdm_mbox_drops_total`
    pub const MBOX_DROPS: usize = 14;
    /// `sdm_packets_delivered_total`
    pub const PACKETS_DELIVERED: usize = 15;
    /// `sdm_link_hops_total`
    pub const LINK_HOPS: usize = 16;
    /// `sdm_packets_dropped_ttl_total`
    pub const DROPPED_TTL: usize = 17;
    /// `sdm_trace_dropped_total`
    pub const TRACE_DROPPED: usize = 18;
    /// `sdm_lp_solves_total`
    pub const LP_SOLVES: usize = 19;
    /// `sdm_lp_pivots_total`
    pub const LP_PIVOTS: usize = 20;
    /// `sdm_epoch_rejections_total`
    pub const EPOCH_REJECTIONS: usize = 21;
    /// `sdm_epoch_activations_total`
    pub const EPOCH_ACTIVATIONS: usize = 22;
}

/// The full metric registry, in export order. `family::*` constants
/// index this array; the DESIGN.md §10 table is generated from it.
pub const REGISTRY: &[FamilyDesc] = &[
    FamilyDesc {
        name: "sdm_flow_table_hits_total",
        kind: MetricKind::Counter,
        help: "Flow-cache lookups that found a live entry, by device kind",
        invariant: true,
        labels: Labels::Fixed("device", DEVICE_KINDS),
    },
    FamilyDesc {
        name: "sdm_flow_table_misses_total",
        kind: MetricKind::Counter,
        help: "Flow-cache lookups that found no live entry, by device kind",
        invariant: true,
        labels: Labels::Fixed("device", DEVICE_KINDS),
    },
    FamilyDesc {
        name: "sdm_flow_table_negative_hits_total",
        kind: MetricKind::Counter,
        help: "Flow-cache hits on negative (no-policy) entries, by device kind",
        invariant: true,
        labels: Labels::Fixed("device", DEVICE_KINDS),
    },
    FamilyDesc {
        name: "sdm_flow_table_expired_total",
        kind: MetricKind::Counter,
        help: "Flow-cache entries evicted after their soft-state TTL, by device kind",
        invariant: true,
        labels: Labels::Fixed("device", DEVICE_KINDS),
    },
    FamilyDesc {
        name: "sdm_flow_table_sweeps_total",
        kind: MetricKind::Counter,
        help: "Amortized expiry sweep passes over the flow cache, by device kind",
        invariant: false,
        labels: Labels::Fixed("device", DEVICE_KINDS),
    },
    FamilyDesc {
        name: "sdm_flow_entries",
        kind: MetricKind::Gauge,
        help: "Live flow-cache entries at snapshot time, by device kind",
        invariant: true,
        labels: Labels::Fixed("device", DEVICE_KINDS),
    },
    FamilyDesc {
        name: "sdm_label_entries",
        kind: MetricKind::Gauge,
        help: "Live middlebox label-table entries at snapshot time",
        invariant: true,
        labels: Labels::None,
    },
    FamilyDesc {
        name: "sdm_label_switched_total",
        kind: MetricKind::Counter,
        help: "Packets forwarded via the SIII.E label-switching fast path",
        invariant: true,
        labels: Labels::None,
    },
    FamilyDesc {
        name: "sdm_label_misses_total",
        kind: MetricKind::Counter,
        help: "Labelled packets whose label had no live table entry",
        invariant: true,
        labels: Labels::None,
    },
    FamilyDesc {
        name: "sdm_steer_decisions_total",
        kind: MetricKind::Counter,
        help: "Fresh next-middlebox selections (one per flow per chain hop)",
        invariant: true,
        labels: Labels::Fixed("hop", STEER_HOPS),
    },
    FamilyDesc {
        name: "sdm_steer_pinned_total",
        kind: MetricKind::Counter,
        help: "Steering lookups answered by a pinned per-flow decision \
               (batch run-mates replay a cached pin without reaching this \
               counter, so the value depends on batching)",
        invariant: false,
        labels: Labels::Fixed("hop", STEER_HOPS),
    },
    FamilyDesc {
        name: "sdm_queue_occupancy",
        kind: MetricKind::Histogram,
        help: "Calendar-queue events pending when a tick's batch is drained \
               (vector path only; depends on shard/batch configuration)",
        invariant: false,
        labels: Labels::None,
    },
    FamilyDesc {
        name: "sdm_batch_run_length",
        kind: MetricKind::Histogram,
        help: "Length of same-device receive runs coalesced by the vector \
               path (depends on shard/batch configuration)",
        invariant: false,
        labels: Labels::None,
    },
    FamilyDesc {
        name: "sdm_mbox_load_packets_total",
        kind: MetricKind::Counter,
        help: "Packets that received middlebox service, by middlebox index",
        invariant: true,
        labels: Labels::Dense("mbox"),
    },
    FamilyDesc {
        name: "sdm_mbox_drops_total",
        kind: MetricKind::Counter,
        help: "Packets blackholed at a failed middlebox, by middlebox index",
        invariant: true,
        labels: Labels::Dense("mbox"),
    },
    FamilyDesc {
        name: "sdm_packets_delivered_total",
        kind: MetricKind::Counter,
        help: "Packets delivered to their destination stub",
        invariant: true,
        labels: Labels::None,
    },
    FamilyDesc {
        name: "sdm_link_hops_total",
        kind: MetricKind::Counter,
        help: "Router-to-router link traversals (the paper's path-stretch base)",
        invariant: true,
        labels: Labels::None,
    },
    FamilyDesc {
        name: "sdm_packets_dropped_ttl_total",
        kind: MetricKind::Counter,
        help: "Packets dropped on TTL exhaustion",
        invariant: true,
        labels: Labels::None,
    },
    FamilyDesc {
        name: "sdm_trace_dropped_total",
        kind: MetricKind::Counter,
        help: "Trace events discarded past trace_limit (per-shard trace \
               buffers make this shard-dependent)",
        invariant: false,
        labels: Labels::None,
    },
    FamilyDesc {
        name: "sdm_lp_solves_total",
        kind: MetricKind::Counter,
        help: "Load-balancing LP solves by mode: cold from scratch, warm \
               from a reinstalled basis (a stalled dual repair falls back \
               to — and counts as — cold)",
        invariant: true,
        labels: Labels::Fixed("mode", LP_MODES),
    },
    FamilyDesc {
        name: "sdm_lp_pivots_total",
        kind: MetricKind::Counter,
        help: "Simplex pivots across all LP solves (warm solves count \
               their dual-repair pivots here)",
        invariant: true,
        labels: Labels::None,
    },
    FamilyDesc {
        name: "sdm_epoch_rejections_total",
        kind: MetricKind::Counter,
        help: "Epoch re-steers rejected by the static enforcement-plan verifier",
        invariant: true,
        labels: Labels::None,
    },
    FamilyDesc {
        name: "sdm_epoch_activations_total",
        kind: MetricKind::Counter,
        help: "Epoch re-steers that passed the verifier gate and activated",
        invariant: true,
        labels: Labels::None,
    },
];

/// Whether `SDM_TELEMETRY` asks for telemetry (any non-empty value other
/// than `0`).
pub fn env_enabled() -> bool {
    std::env::var("SDM_TELEMETRY").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The log2 bucket index of an observation.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((63 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

// ---------------------------------------------------------------------------
// Hot-path collector
// ---------------------------------------------------------------------------

/// A chain hop where a steering decision can be made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// The stub's policy proxy (first hop of a chain).
    Proxy = 0,
    /// A middlebox forwarding to the next function in the chain.
    Middlebox = 1,
}

/// A lock-free log2 histogram recorded with relaxed atomics.
#[derive(Debug)]
pub struct AtomicHist {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl AtomicHist {
    fn new() -> AtomicHist {
        AtomicHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A plain-integer copy of the current state.
    pub fn load(&self) -> HistData {
        HistData {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// The per-shard hot-path collector. One lives behind an `Arc` per
/// simulator/shard; data-plane code records through `&self` with relaxed
/// atomics, so no hot-path lock is ever taken. When constructed disabled
/// every record method is a single branch — the zero-perturbation
/// guarantee CI checks by byte-diffing figure outputs with
/// `SDM_TELEMETRY` on and off.
#[derive(Debug)]
pub struct ShardTelemetry {
    enabled: bool,
    steer_decisions: [AtomicU64; 2],
    steer_pinned: [AtomicU64; 2],
    queue_occupancy: AtomicHist,
    batch_run_length: AtomicHist,
}

impl ShardTelemetry {
    /// A new collector; a disabled one never records anything.
    pub fn new(enabled: bool) -> ShardTelemetry {
        ShardTelemetry {
            enabled,
            steer_decisions: [AtomicU64::new(0), AtomicU64::new(0)],
            steer_pinned: [AtomicU64::new(0), AtomicU64::new(0)],
            queue_occupancy: AtomicHist::new(),
            batch_run_length: AtomicHist::new(),
        }
    }

    /// Whether this collector records at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// A fresh next-middlebox selection for a flow at `hop`.
    #[inline]
    pub fn steer_decision(&self, hop: Hop) {
        if self.enabled {
            self.steer_decisions[hop as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A steering lookup answered by an existing per-flow pin at `hop`.
    #[inline]
    pub fn steer_pin_replay(&self, hop: Hop) {
        if self.enabled {
            self.steer_pinned[hop as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Calendar-queue events pending as a tick batch starts draining.
    #[inline]
    pub fn observe_queue_occupancy(&self, v: u64) {
        if self.enabled {
            self.queue_occupancy.observe(v);
        }
    }

    /// Length of one coalesced same-device receive run.
    #[inline]
    pub fn observe_run_length(&self, v: u64) {
        if self.enabled {
            self.batch_run_length.observe(v);
        }
    }

    /// Copies this collector's families into `snap` (added to whatever
    /// is already there, so shards can export into one snapshot in
    /// shard-index order).
    pub fn export_into(&self, snap: &mut Snapshot) {
        for (i, c) in self.steer_decisions.iter().enumerate() {
            snap.add_labeled(family::STEER_DECISIONS, i, c.load(Ordering::Relaxed));
        }
        for (i, c) in self.steer_pinned.iter().enumerate() {
            snap.add_labeled(family::STEER_PINNED, i, c.load(Ordering::Relaxed));
        }
        snap.add_hist(family::QUEUE_OCCUPANCY, &self.queue_occupancy.load());
        snap.add_hist(family::BATCH_RUN_LENGTH, &self.batch_run_length.load());
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Plain-integer histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistData {
    /// Per-bucket observation counts (`buckets[i]` covers `[2^i, 2^(i+1))`,
    /// bucket 0 additionally covers zero).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Default for HistData {
    fn default() -> HistData {
        HistData { buckets: [0; HIST_BUCKETS], count: 0, sum: 0 }
    }
}

/// One cell's value.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CellValue {
    Scalar(u64),
    // boxed: a histogram cell is ~35x a scalar cell, and scalars dominate
    Hist(Box<HistData>),
}

/// One (label value, value) cell of a family.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cell {
    /// The label *value* (the key lives in the family descriptor);
    /// empty for unlabeled families.
    label: String,
    value: CellValue,
}

/// An immutable-registry, plain-integer snapshot of every family. Built
/// deterministically: fixed-label cells are pre-created (zero-valued) in
/// declaration order, dense cells appended in index order by the
/// scraper, and merges fold pairwise — so two snapshots of equivalent
/// runs are `==` and export byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    families: Vec<Vec<Cell>>,
}

impl Default for Snapshot {
    fn default() -> Snapshot {
        Snapshot::new()
    }
}

impl Snapshot {
    /// An all-zero snapshot with every fixed-label cell pre-created.
    pub fn new() -> Snapshot {
        let families = REGISTRY
            .iter()
            .map(|f| match (f.kind, f.labels) {
                (MetricKind::Histogram, _) => vec![Cell {
                    label: String::new(),
                    value: CellValue::Hist(Box::default()),
                }],
                (_, Labels::None) => vec![Cell {
                    label: String::new(),
                    value: CellValue::Scalar(0),
                }],
                (_, Labels::Fixed(_, values)) => values
                    .iter()
                    .map(|v| Cell { label: (*v).to_string(), value: CellValue::Scalar(0) })
                    .collect(),
                (_, Labels::Dense(_)) => Vec::new(),
            })
            .collect();
        Snapshot { families }
    }

    /// Adds `v` to the single cell of an unlabeled counter/gauge family.
    pub fn add(&mut self, fam: usize, v: u64) {
        self.add_labeled(fam, 0, v);
    }

    /// Adds `v` to the `label_idx`-th fixed-label cell of `fam`.
    pub fn add_labeled(&mut self, fam: usize, label_idx: usize, v: u64) {
        match &mut self.families[fam][label_idx].value {
            CellValue::Scalar(s) => *s += v,
            CellValue::Hist(_) => unreachable!("add_labeled on histogram family"),
        }
    }

    /// Adds `v` to the dense cell `index` of `fam`, creating zero cells
    /// up to `index` as needed (the cell's label value is `index`
    /// rendered in decimal).
    pub fn add_dense(&mut self, fam: usize, index: usize, v: u64) {
        let cells = &mut self.families[fam];
        while cells.len() <= index {
            cells.push(Cell { label: cells.len().to_string(), value: CellValue::Scalar(0) });
        }
        match &mut cells[index].value {
            CellValue::Scalar(s) => *s += v,
            CellValue::Hist(_) => unreachable!("add_dense on histogram family"),
        }
    }

    /// Merges a histogram into the (single) cell of histogram family
    /// `fam`, bucket-wise.
    pub fn add_hist(&mut self, fam: usize, h: &HistData) {
        match &mut self.families[fam][0].value {
            CellValue::Hist(dst) => {
                for (d, s) in dst.buckets.iter_mut().zip(h.buckets.iter()) {
                    *d += s;
                }
                dst.count += h.count;
                dst.sum += h.sum;
            }
            CellValue::Scalar(_) => unreachable!("add_hist on scalar family"),
        }
    }

    /// The current value of the `label_idx`-th cell of a scalar family
    /// (dense families: the cell may not exist yet — missing reads 0).
    pub fn value(&self, fam: usize, label_idx: usize) -> u64 {
        match self.families[fam].get(label_idx).map(|c| &c.value) {
            Some(CellValue::Scalar(s)) => *s,
            Some(CellValue::Hist(h)) => h.count,
            None => 0,
        }
    }

    /// Folds `other` into `self` — counters, gauges and buckets all add.
    /// Callers fold in shard-index order, matching the workspace's merge
    /// discipline (sums commute, but the discipline keeps every fold
    /// site audit-identical).
    pub fn merge(&mut self, other: &Snapshot) {
        for (fam, cells) in other.families.iter().enumerate() {
            for (i, cell) in cells.iter().enumerate() {
                match &cell.value {
                    CellValue::Scalar(v) => {
                        if matches!(REGISTRY[fam].labels, Labels::Dense(_)) {
                            self.add_dense(fam, i, *v);
                        } else {
                            self.add_labeled(fam, i, *v);
                        }
                    }
                    CellValue::Hist(h) => self.add_hist(fam, h),
                }
            }
        }
    }

    fn exported(&self, full: bool) -> impl Iterator<Item = (&'static FamilyDesc, &Vec<Cell>)> {
        REGISTRY
            .iter()
            .zip(self.families.iter())
            .filter(move |(f, _)| full || f.invariant)
    }

    /// Deterministic JSON export. `full = false` (the goldenable mode)
    /// emits only invariant families; `full = true` emits everything.
    pub fn to_json(&self, full: bool) -> String {
        let mut out = String::from("{\n");
        let mut first_fam = true;
        for (f, cells) in self.exported(full) {
            if !first_fam {
                out.push_str(",\n");
            }
            first_fam = false;
            let kind = match f.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            let _ = write!(out, "  \"{}\": {{\"kind\": \"{kind}\"", f.name);
            match f.kind {
                MetricKind::Histogram => {
                    let h = match &cells[0].value {
                        CellValue::Hist(h) => h,
                        CellValue::Scalar(_) => unreachable!(),
                    };
                    let _ = write!(out, ", \"count\": {}, \"sum\": {}, \"buckets\": {{", h.count, h.sum);
                    let mut first = true;
                    for (i, b) in h.buckets.iter().enumerate() {
                        if *b != 0 {
                            if !first {
                                out.push_str(", ");
                            }
                            first = false;
                            let _ = write!(out, "\"{}\": {b}", 1u64 << i);
                        }
                    }
                    out.push_str("}}");
                }
                _ => {
                    out.push_str(", \"cells\": {");
                    let key = match f.labels {
                        Labels::Fixed(k, _) | Labels::Dense(k) => k,
                        Labels::None => "",
                    };
                    let mut first = true;
                    for cell in cells {
                        if !first {
                            out.push_str(", ");
                        }
                        first = false;
                        let v = match &cell.value {
                            CellValue::Scalar(v) => *v,
                            CellValue::Hist(_) => unreachable!(),
                        };
                        if key.is_empty() {
                            let _ = write!(out, "\"\": {v}");
                        } else {
                            let _ = write!(out, "\"{key}={}\": {v}", cell.label);
                        }
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// Prometheus text exposition (version 0.0.4): `# HELP`/`# TYPE`
    /// lines, cumulative `_bucket{le=...}` series for histograms.
    pub fn to_prometheus(&self, full: bool) -> String {
        let mut out = String::new();
        for (f, cells) in self.exported(full) {
            let kind = match f.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            let help: String = f.help.split_whitespace().collect::<Vec<_>>().join(" ");
            let _ = writeln!(out, "# HELP {} {}", f.name, help);
            let _ = writeln!(out, "# TYPE {} {kind}", f.name);
            match f.kind {
                MetricKind::Histogram => {
                    let h = match &cells[0].value {
                        CellValue::Hist(h) => h,
                        CellValue::Scalar(_) => unreachable!(),
                    };
                    let mut cum = 0u64;
                    for (i, b) in h.buckets.iter().enumerate() {
                        cum += b;
                        // upper bound of bucket i is 2^(i+1)-1; skip
                        // trailing empty buckets to keep exports tight
                        if *b != 0 || i == 0 {
                            let le = (1u128 << (i + 1)) - 1;
                            let _ = writeln!(out, "{}_bucket{{le=\"{le}\"}} {cum}", f.name);
                        }
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", f.name, h.count);
                    let _ = writeln!(out, "{}_sum {}", f.name, h.sum);
                    let _ = writeln!(out, "{}_count {}", f.name, h.count);
                }
                _ => {
                    let key = match f.labels {
                        Labels::Fixed(k, _) | Labels::Dense(k) => k,
                        Labels::None => "",
                    };
                    for cell in cells {
                        let v = match &cell.value {
                            CellValue::Scalar(v) => *v,
                            CellValue::Hist(_) => unreachable!(),
                        };
                        if key.is_empty() {
                            let _ = writeln!(out, "{} {v}", f.name);
                        } else {
                            let _ = writeln!(out, "{}{{{key}=\"{}\"}} {v}", f.name, cell.label);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_indices_match_declaration_order() {
        assert_eq!(REGISTRY[family::FLOW_HITS].name, "sdm_flow_table_hits_total");
        assert_eq!(REGISTRY[family::STEER_PINNED].name, "sdm_steer_pinned_total");
        assert_eq!(REGISTRY[family::EPOCH_ACTIVATIONS].name, "sdm_epoch_activations_total");
        assert_eq!(REGISTRY.len(), family::EPOCH_ACTIVATIONS + 1);
        // names are unique and follow prometheus conventions
        let mut names: Vec<_> = REGISTRY.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len());
        for f in REGISTRY {
            if f.kind == MetricKind::Counter {
                assert!(f.name.ends_with("_total"), "{} missing _total", f.name);
            }
        }
    }

    #[test]
    fn log2_buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let tel = ShardTelemetry::new(false);
        tel.steer_decision(Hop::Proxy);
        tel.steer_pin_replay(Hop::Middlebox);
        tel.observe_queue_occupancy(100);
        tel.observe_run_length(5);
        let mut snap = Snapshot::new();
        tel.export_into(&mut snap);
        assert_eq!(snap, Snapshot::new());
    }

    #[test]
    fn shard_folds_equal_single_collector() {
        // Recording 10+7 decisions split over two "shards" and folding in
        // shard order equals one collector seeing all 17.
        let a = ShardTelemetry::new(true);
        let b = ShardTelemetry::new(true);
        let one = ShardTelemetry::new(true);
        for _ in 0..10 {
            a.steer_decision(Hop::Proxy);
            one.steer_decision(Hop::Proxy);
        }
        for _ in 0..7 {
            b.steer_decision(Hop::Proxy);
            b.observe_run_length(3);
            one.steer_decision(Hop::Proxy);
            one.observe_run_length(3);
        }
        let mut folded = Snapshot::new();
        a.export_into(&mut folded);
        b.export_into(&mut folded);
        let mut single = Snapshot::new();
        one.export_into(&mut single);
        assert_eq!(folded, single);
        assert_eq!(folded.to_json(true), single.to_json(true));
        assert_eq!(folded.value(family::STEER_DECISIONS, Hop::Proxy as usize), 17);
    }

    #[test]
    fn merge_adds_every_cell_kind() {
        let mut a = Snapshot::new();
        a.add(family::PACKETS_DELIVERED, 5);
        a.add_labeled(family::FLOW_HITS, 1, 3);
        a.add_dense(family::MBOX_LOAD, 2, 40);
        a.add_hist(family::QUEUE_OCCUPANCY, &HistData { buckets: { let mut b = [0; HIST_BUCKETS]; b[3] = 2; b }, count: 2, sum: 20 });
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.value(family::PACKETS_DELIVERED, 0), 10);
        assert_eq!(b.value(family::FLOW_HITS, 1), 6);
        assert_eq!(b.value(family::MBOX_LOAD, 2), 80);
        assert_eq!(b.value(family::MBOX_LOAD, 1), 0);
        assert_eq!(b.value(family::MBOX_LOAD, 9), 0); // missing dense cell reads 0
    }

    #[test]
    fn json_export_is_deterministic_and_filters_invariance() {
        let mut snap = Snapshot::new();
        snap.add_labeled(family::STEER_PINNED, 0, 9);
        snap.add(family::PACKETS_DELIVERED, 123);
        let golden = snap.to_json(false);
        assert!(golden.contains("\"sdm_packets_delivered_total\""));
        assert!(golden.contains("123"));
        assert!(!golden.contains("sdm_steer_pinned_total"));
        assert!(!golden.contains("sdm_queue_occupancy"));
        let f = snap.to_json(true);
        assert!(f.contains("\"sdm_steer_pinned_total\": {\"kind\": \"counter\", \"cells\": {\"hop=proxy\": 9, \"hop=middlebox\": 0}}"));
        // byte-for-byte stable across identical content
        assert_eq!(golden, snap.clone().to_json(false));
    }

    #[test]
    fn prometheus_export_has_cumulative_buckets() {
        let mut snap = Snapshot::new();
        let h = AtomicHist::new();
        h.observe(0);
        h.observe(1);
        h.observe(5);
        snap.add_hist(family::QUEUE_OCCUPANCY, &h.load());
        let text = snap.to_prometheus(true);
        assert!(text.contains("# TYPE sdm_queue_occupancy histogram"));
        assert!(text.contains("sdm_queue_occupancy_bucket{le=\"1\"} 2"));
        assert!(text.contains("sdm_queue_occupancy_bucket{le=\"7\"} 3"));
        assert!(text.contains("sdm_queue_occupancy_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("sdm_queue_occupancy_sum 6"));
        assert!(text.contains("sdm_queue_occupancy_count 3"));
        // counters carry HELP/TYPE and label sets
        assert!(text.contains("# TYPE sdm_steer_decisions_total counter"));
        assert!(text.contains("sdm_steer_decisions_total{hop=\"proxy\"} 0"));
    }
}
