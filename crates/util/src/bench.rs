//! A micro-benchmark timing harness replacing `criterion`.
//!
//! Each benchmark auto-calibrates a batch size until one batch takes at
//! least a minimum wall time, warms up, then records N timed samples and
//! reports per-iteration mean / median / p95 / min. `Runner::finish`
//! merges the group's results into a JSON file (default
//! `results/BENCH_baseline.json`, override with `SDM_BENCH_OUT`), which is
//! the committed perf-trajectory baseline future PRs compare against.
//!
//! Environment knobs (all optional):
//!
//! * `SDM_BENCH_OUT` — output JSON path;
//! * `SDM_BENCH_SAMPLES` — timed samples per benchmark (default 20);
//! * `SDM_BENCH_MIN_SAMPLE_MS` — minimum batch wall time (default 5 ms).

use std::path::PathBuf;
use std::time::Instant;

use crate::json::Json;

/// Statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (unique within its group).
    pub name: String,
    /// Iterations per timed sample.
    pub batch: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Mean ns/iteration over samples.
    pub mean_ns: f64,
    /// Median ns/iteration.
    pub median_ns: f64,
    /// 95th-percentile ns/iteration.
    pub p95_ns: f64,
    /// Fastest sample's ns/iteration.
    pub min_ns: f64,
}

impl BenchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("batch", Json::from(self.batch)),
            ("samples", Json::from(self.samples)),
            ("mean_ns", Json::Num(round2(self.mean_ns))),
            ("median_ns", Json::Num(round2(self.median_ns))),
            ("p95_ns", Json::Num(round2(self.p95_ns))),
            ("min_ns", Json::Num(round2(self.min_ns))),
        ])
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks; mirrors criterion's `benchmark_group`.
pub struct Runner {
    group: String,
    results: Vec<BenchResult>,
    samples: usize,
    min_sample_ns: u128,
}

impl Runner {
    /// A new group. Reads the `SDM_BENCH_*` environment knobs.
    pub fn new(group: &str) -> Runner {
        let samples = std::env::var("SDM_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        let min_ms: u64 = std::env::var("SDM_BENCH_MIN_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5);
        eprintln!("## bench group `{group}`");
        Runner {
            group: group.to_string(),
            results: Vec::new(),
            samples: samples.max(2),
            min_sample_ns: (min_ms as u128) * 1_000_000,
        }
    }

    /// Times `f`, printing one line and recording the result.
    ///
    /// Calibration doubles the batch size until one batch reaches the
    /// minimum sample time (the calibration runs double as warmup), then
    /// `samples` batches are timed.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &BenchResult {
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed().as_nanos();
            if elapsed >= self.min_sample_ns || batch >= (1 << 24) {
                break;
            }
            // jump straight towards the target when far away
            let factor = self
                .min_sample_ns
                .checked_div(elapsed)
                .map_or(16, |f| (f + 1).clamp(2, 16) as u64);
            batch = batch.saturating_mul(factor);
        }

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let median = per_iter[per_iter.len() / 2];
        let p95 = per_iter[((per_iter.len() as f64 * 0.95) as usize).min(per_iter.len() - 1)];
        let min = per_iter[0];
        let result = BenchResult {
            name: name.to_string(),
            batch,
            samples: per_iter.len(),
            mean_ns: mean,
            median_ns: median,
            p95_ns: p95,
            min_ns: min,
        };
        eprintln!(
            "{:<40} median {:>12}  p95 {:>12}  (batch {batch}, {} samples)",
            format!("{}/{}", self.group, name),
            human(median),
            human(p95),
            per_iter.len()
        );
        self.results.push(result);
        self.results.last().unwrap()
    }

    /// Records a directly measured scalar — an algorithmic counter such
    /// as simplex pivot counts — as a result named `name`, so non-timing
    /// metrics ride the same JSON merge and gate machinery as timings.
    /// Every statistic of the result is set to `value`.
    pub fn record(&mut self, name: &str, value: f64) -> &BenchResult {
        let result = BenchResult {
            name: name.to_string(),
            batch: 1,
            samples: 1,
            mean_ns: value,
            median_ns: value,
            p95_ns: value,
            min_ns: value,
        };
        eprintln!(
            "{:<40} value  {value:>12.0}  (recorded counter)",
            format!("{}/{}", self.group, name)
        );
        self.results.push(result);
        self.results.last().unwrap()
    }

    /// The results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Merges this group's results into the baseline JSON file and prints
    /// its path. Call exactly once, last.
    pub fn finish(self) {
        let path = out_path();
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        // read-merge-write so sequentially run bench binaries accumulate
        let mut root = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .unwrap_or(Json::Obj(Vec::new()));
        let group_obj = Json::Obj(
            self.results
                .iter()
                .map(|r| (r.name.clone(), r.to_json()))
                .collect(),
        );
        match &mut root {
            Json::Obj(pairs) => {
                if let Some(slot) = pairs.iter_mut().find(|(k, _)| *k == self.group) {
                    slot.1 = group_obj;
                } else {
                    pairs.push((self.group.clone(), group_obj));
                }
            }
            other => *other = Json::Obj(vec![(self.group.clone(), group_obj)]),
        }
        match std::fs::write(&path, root.to_string_pretty() + "\n") {
            Ok(()) => eprintln!("wrote {} result(s) to {}", self.results.len(), path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

fn out_path() -> PathBuf {
    if let Ok(p) = std::env::var("SDM_BENCH_OUT") {
        let p = PathBuf::from(p);
        // `cargo bench` runs each bench binary with the *package*
        // directory as cwd; anchor relative overrides at the workspace
        // root so every binary accumulates into the same file.
        return if p.is_absolute() {
            p
        } else {
            workspace_root().join(p)
        };
    }
    workspace_root().join("results").join("BENCH_baseline.json")
}

/// Outermost ancestor of the current directory containing a `Cargo.toml`.
/// `cargo bench` runs each bench binary with the *package* directory as
/// cwd, but the committed baseline belongs at the workspace root.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut root = cwd.clone();
    for dir in cwd.ancestors() {
        if dir.join("Cargo.toml").is_file() {
            root = dir.to_path_buf();
        }
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_sane_stats() {
        // isolate the output file so the test never touches the real baseline
        let dir = std::env::temp_dir().join("sdm-util-bench-test");
        let file = dir.join("out.json");
        std::env::set_var("SDM_BENCH_OUT", &file);
        std::env::set_var("SDM_BENCH_SAMPLES", "5");
        std::env::set_var("SDM_BENCH_MIN_SAMPLE_MS", "1");

        let mut r = Runner::new("selftest");
        let res = r.bench("sum", || (0..1000u64).sum::<u64>()).clone();
        assert!(res.median_ns > 0.0);
        assert!(res.min_ns <= res.median_ns && res.median_ns <= res.p95_ns);
        assert!(res.batch >= 1);
        r.finish();

        let text = std::fs::read_to_string(&file).unwrap();
        let v = Json::parse(&text).unwrap();
        assert!(v.get("selftest").unwrap().get("sum").unwrap().get("median_ns").is_some());
        let _ = std::fs::remove_file(&file);
        std::env::remove_var("SDM_BENCH_OUT");
        std::env::remove_var("SDM_BENCH_SAMPLES");
        std::env::remove_var("SDM_BENCH_MIN_SAMPLE_MS");
    }
}
