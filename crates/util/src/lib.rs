//! Hermetic in-tree utilities for the SDM workspace.
//!
//! This crate exists so the whole reproduction builds with **zero network
//! access and zero third-party crates** (`cargo build --release --offline`).
//! It replaces, module by module, what the workspace previously pulled from
//! crates.io:
//!
//! | module | replaces | provides |
//! |---|---|---|
//! | [`rng`] | `rand` | seeded SplitMix64/Xoshiro256** PRNG, `gen_range`, shuffle, sampling |
//! | [`prop`] | `proptest` | seeded case generation, shrinking by halving/truncation, failure-seed reporting |
//! | [`mod@bench`] | `criterion` | warmup + timed samples, median/p95, JSON emission (`BENCH_baseline.json`) |
//! | [`json`] | `serde` | a tiny JSON value type, writer and recursive-descent parser |
//! | [`par`] | `crossbeam` | scoped-thread ordered parallel map |
//! | [`sync`] | `parking_lot` | `std::sync::Mutex` wrapper with a non-poisoning `lock()` |
//! | [`fxhash`] | `rustc-hash` | deterministic multiply-rotate hasher for hot, trusted-key tables |
//! | [`bench_diff`] | — | baseline-vs-new bench comparison powering the CI regression gate |
//!
//! Everything is deterministic per fixed seed, `#![forbid(unsafe_code)]`,
//! and uses the standard library only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod bench_diff;
pub mod fxhash;
pub mod json;
pub mod par;
pub mod prop;
pub mod rng;
pub mod sync;

pub use fxhash::{FxHashMap, FxHashSet};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use rng::{SliceRandom, StdRng};
