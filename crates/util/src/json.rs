//! A tiny JSON value type with a writer and a recursive-descent parser,
//! replacing `serde` for the workspace's config/result serialization.
//!
//! Objects preserve insertion order (they are association lists, not
//! maps), so emitted files are stable and diff-friendly.
//!
//! ```
//! use sdm_util::json::Json;
//! let v = Json::parse(r#"{"rows": [1, 2.5], "name": "fw"}"#).unwrap();
//! assert_eq!(v.get("name").and_then(Json::as_str), Some("fw"));
//! assert_eq!(v.get("rows").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
//! let text = v.to_string();
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`] or a [`FromJson`] conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset in the input (0 for conversion errors).
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A conversion (non-positional) error.
    pub fn msg(m: impl Into<String>) -> Self {
        JsonError { msg: m.into(), at: 0 }
    }
}

/// Types that can serialize themselves to a [`Json`] value.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

/// Types that can deserialize themselves from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parses the value; `Err` on shape/type mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// An object builder from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that errors with the key name, for [`FromJson`] impls.
    pub fn req(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::msg(format!("missing key `{key}`")))
    }

    /// The number, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as an exact usize, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The string, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if any.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object pairs, if any.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Compact serialization (same as `format!("{self}")`).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Shared serializer behind [`fmt::Display`] (compact) and
    /// [`Json::to_string_pretty`].
    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * depth),
                " ".repeat(w * (depth + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (a single value with optional surrounding
    /// whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            b: input.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    /// Compact serialization; `.to_string()` callers go through here.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // surrogate pairs unsupported; map to U+FFFD
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // advance over one UTF-8 scalar
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.i += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError {
                msg: format!("invalid number `{text}`"),
                at: start,
            })
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u16> for Json {
    fn from(v: u16) -> Json {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj([
            ("name", Json::from("fw0")),
            ("loads", Json::Arr(vec![Json::from(1u64), Json::from(2.5)])),
            ("failed", Json::from(false)),
            ("note", Json::Null),
            ("nested", Json::obj([("k", Json::from("v\"esc\\aped\n"))])),
        ]);
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v, "via {text}");
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , -2.5e2 , \"x\\u0041y\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-250.0));
        assert_eq!(arr[2].as_str(), Some("xAy"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "tru", "\"unterminated", "{\"a\" 1}", "1 2"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::from(5u64).to_string(), "5");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }
}
