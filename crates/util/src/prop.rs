//! A minimal property-testing harness replacing `proptest`.
//!
//! A property test is (1) a *generator* — any `Fn(&mut StdRng) -> T` —
//! and (2) a *property* over the generated value returning
//! `Result<(), String>`. The harness runs a configurable number of cases,
//! each from an independently derived case seed; on failure it shrinks the
//! input (halving numbers, truncating collections, component-wise for
//! tuples) and panics with the failing case seed, the shrunk input and the
//! original input, so a failure is reproducible from the report alone.
//!
//! ```
//! use sdm_util::prop::{check, Config};
//! check("sum commutes", &Config::with_cases(64),
//!     |rng| (rng.gen_range(0..100u32), rng.gen_range(0..100u32)),
//!     |&(a, b)| {
//!         sdm_util::prop_assert_eq!(a + b, b + a);
//!         Ok(())
//!     });
//! ```
//!
//! The assertion macros ([`prop_assert!`](crate::prop_assert),
//! [`prop_assert_eq!`](crate::prop_assert_eq)) early-return an `Err` with
//! file/line context, mirroring their `proptest` namesakes.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{mix_seed, StdRng};

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; case `i` runs from `mix_seed(seed, i)`.
    pub seed: u64,
    /// Upper bound on accepted shrink steps.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("SDM_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let seed = std::env::var("SDM_PROP_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5D11_F00D);
        Config {
            cases,
            seed,
            max_shrink_steps: 2048,
        }
    }
}

impl Config {
    /// A config running `cases` cases (seed and shrink budget default;
    /// `SDM_PROP_CASES` still raises, but never lowers, the count so CI
    /// can crank thoroughness up without touching code).
    pub fn with_cases(cases: u32) -> Self {
        let d = Config::default();
        Config {
            cases: cases.max(if std::env::var("SDM_PROP_CASES").is_ok() {
                d.cases
            } else {
                0
            }),
            ..d
        }
    }
}

/// Values the harness knows how to shrink. Candidates must be "smaller"
/// (the harness bounds total accepted steps, so approximate monotonicity
/// is enough).
pub trait Shrink: Sized {
    /// Candidate smaller values, most aggressive first.
    fn shrink_candidates(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self > 0 {
                    out.push(self / 2);
                    out.push(self - 1);
                }
                out.dedup();
                out
            }
        }
    )*};
}

impl_shrink_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_shrink_sint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                if *self == 0 {
                    Vec::new()
                } else {
                    let mut out = vec![self / 2];
                    out.push(self - self.signum());
                    out.dedup();
                    out
                }
            }
        }
    )*};
}

impl_shrink_sint!(i8, i16, i32, i64, isize);

impl Shrink for f64 {
    fn shrink_candidates(&self) -> Vec<Self> {
        if self.abs() < 1e-9 || !self.is_finite() {
            Vec::new()
        } else {
            vec![0.0, self / 2.0]
        }
    }
}

impl Shrink for bool {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<T: Shrink + Clone> Shrink for Option<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(v.shrink_candidates().into_iter().map(Some));
                out
            }
        }
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.len() > 1 {
            out.push(self[..self.len() / 2].to_vec()); // truncate to half
            out.push(self[..self.len() - 1].to_vec()); // drop last
        }
        // element-wise: first shrink candidate of each of the first 16
        for (i, v) in self.iter().enumerate().take(16) {
            if let Some(s) = v.shrink_candidates().into_iter().next() {
                let mut copy = self.clone();
                copy[i] = s;
                out.push(copy);
            }
        }
        out
    }
}

impl<T: Shrink + Clone, const N: usize> Shrink for [T; N] {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for i in 0..N {
            for s in self[i].shrink_candidates() {
                let mut copy = self.clone();
                copy[i] = s;
                out.push(copy);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for s in self.$idx.shrink_candidates() {
                        let mut copy = self.clone();
                        copy.$idx = s;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )+};
}

impl_shrink_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Runs `prop` over `cfg.cases` generated inputs.
///
/// On failure the input is shrunk — a candidate is accepted only if the
/// property still returns `Err` on it (candidate panics are treated as
/// "not accepted", so out-of-domain shrinks cannot hijack the report) —
/// and the harness panics with the case seed and both the shrunk and the
/// original input.
///
/// # Panics
///
/// Panics (test failure) when the property fails on any case.
pub fn check<T, G, P>(name: &str, cfg: &Config, gen: G, prop: P)
where
    T: Clone + Debug + Shrink,
    G: Fn(&mut StdRng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let case_seed = mix_seed(cfg.seed, case as u64);
        let mut rng = StdRng::seed_from_u64(case_seed);
        let value = gen(&mut rng);
        if let Err(msg) = prop(&value) {
            let (shrunk, steps, final_msg) = shrink(&value, msg, &prop, cfg.max_shrink_steps);
            panic!(
                "property `{name}` failed at case {case}/{} (case seed {case_seed}, base seed {}):\n  \
                 {final_msg}\n  \
                 shrunk input (after {steps} shrink steps): {shrunk:?}\n  \
                 original input: {value:?}\n  \
                 rerun with SDM_PROP_SEED={} to reproduce",
                cfg.cases, cfg.seed, cfg.seed
            );
        }
    }
}

fn shrink<T, P>(value: &T, msg: String, prop: &P, budget: u32) -> (T, u32, String)
where
    T: Clone + Debug + Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut current = value.clone();
    let mut current_msg = msg;
    let mut steps = 0;
    'outer: while steps < budget {
        for cand in current.shrink_candidates() {
            // A panicking candidate (e.g. violating a generator-domain
            // assert) is rejected, not treated as a failure.
            let outcome = catch_unwind(AssertUnwindSafe(|| prop(&cand)));
            if let Ok(Err(m)) = outcome {
                current = cand;
                current_msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break; // no candidate still fails: fully shrunk
    }
    (current, steps, current_msg)
}

/// Early-returns `Err(..)` from a property closure when the condition is
/// false; drop-in for proptest's macro of the same name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "{} ({}:{})",
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Early-returns `Err(..)` when the two expressions differ; drop-in for
/// proptest's macro of the same name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}: left {:?} != right {:?} ({}:{})",
                format!($($fmt)+),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        // interior mutability via Cell keeps the property Fn
        let counter = std::cell::Cell::new(0u32);
        check(
            "count",
            &Config {
                cases: 64,
                seed: 1,
                max_shrink_steps: 10,
            },
            |rng| rng.gen_range(0..100u32),
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        seen += counter.get();
        assert_eq!(seen, 64);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let outcome = catch_unwind(|| {
            check(
                "gt-100 fails",
                &Config {
                    cases: 256,
                    seed: 3,
                    max_shrink_steps: 2048,
                },
                |rng| rng.gen_range(0..10_000u64),
                |&v| {
                    crate::prop_assert!(v < 100, "value {v} too large");
                    Ok(())
                },
            )
        });
        let err = outcome.expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic message is a String");
        assert!(msg.contains("case seed"), "missing seed report: {msg}");
        // shrinking by halving/decrement must reach the boundary exactly
        assert!(
            msg.contains("shrunk input (after") && msg.contains(": 100"),
            "missing/imperfect shrunk case: {msg}"
        );
    }

    #[test]
    fn vec_shrinking_truncates() {
        let v = vec![10u32, 20, 30, 40];
        let cands = v.shrink_candidates();
        assert!(cands.contains(&vec![10, 20]));
        assert!(cands.contains(&vec![10, 20, 30]));
    }
}
