//! Seeded pseudo-random number generation: SplitMix64 for seeding and
//! stream splitting, Xoshiro256** as the core generator.
//!
//! The surface mirrors the subset of `rand` the workspace uses — seeded
//! construction, `gen_range` over integer and float ranges, shuffling and
//! sampling — so the topology, deployment and workload generators remain
//! deterministic per fixed seed. The sequences differ from `rand`'s
//! `StdRng` (a different algorithm), but every generator in this workspace
//! only promises *self*-consistency for a seed, which this preserves.

use std::ops::{Range, RangeInclusive};

/// One SplitMix64 step; also used to derive per-case seeds elsewhere.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a base seed with a stream index into an independent seed.
#[inline]
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut s = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// A seeded Xoshiro256** generator.
///
/// The name matches `rand::rngs::StdRng` so call sites read identically;
/// the construction (`seed_from_u64`) and the `gen_range` surface are
/// drop-in for the seeded uses in this workspace.
///
/// # Example
///
/// ```
/// use sdm_util::rng::StdRng;
/// let mut a = StdRng::seed_from_u64(7);
/// let mut b = StdRng::seed_from_u64(7);
/// assert_eq!(a.gen_range(0..100u32), b.gen_range(0..100u32));
/// ```
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seeds the generator from a single `u64` via SplitMix64 (the
    /// canonical Xoshiro seeding procedure).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// The next raw 64-bit output (Xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` (unbiased via rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Largest multiple of n that fits in u64; values at or above it
        // are rejected so the modulo is unbiased.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform sample from a range, e.g. `rng.gen_range(0..10usize)`,
    /// `rng.gen_range(0..=i)`, `rng.gen_range(0.0..100.0)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A range that can be sampled uniformly; implemented for the integer and
/// float range types the workspace generators use.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // guard against rounding up to the exclusive bound
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Shuffling and sampling on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut StdRng);
    /// One uniformly chosen element, `None` on an empty slice.
    fn choose(&self, rng: &mut StdRng) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose(&self, rng: &mut StdRng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_fixed_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let sa: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(sa, sb);
        let mut c = StdRng::seed_from_u64(43);
        let sc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=5usize);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            // expect 10_000 per bucket; allow ±5%
            assert!((9_500..10_500).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut w: Vec<usize> = (0..50).collect();
        let mut rng2 = StdRng::seed_from_u64(5);
        w.shuffle(&mut rng2);
        assert_eq!(v, w);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_500..26_500).contains(&hits), "hits {hits}");
    }
}
