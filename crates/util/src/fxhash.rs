//! A fast, deterministic, non-cryptographic hasher for hot lookup tables.
//!
//! The standard library's default `RandomState` (SipHash-1-3) is designed
//! to resist hash-flooding from untrusted input; the simulator's per-hop
//! tables (address → device, link endpoints → link id, flow → cache entry)
//! are keyed by trusted, internally generated values, so they can use a
//! multiply-rotate hash that is several times cheaper per lookup. The
//! algorithm is the classic "Fx" hash used by the Rust compiler's interner:
//! fold each input word into the state with `(state rotl 5) ^ word`, then
//! multiply by a large odd constant.
//!
//! Determinism note: unlike `RandomState`, this hasher has no per-process
//! seed, so *iteration order* of an `FxHashMap` is stable for a fixed key
//! set across runs. Code that iterates a map and feeds the order into
//! results should still sort (or use `BTreeMap`) — stable iteration order
//! is an implementation detail, not a contract.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Golden-ratio multiplier (2^64 / φ), the same constant rustc uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold 8 bytes at a time; the tail is zero-padded. Length is mixed
        // in so that prefixes hash differently from padded whole words.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.add_to_hash(u64::from_le_bytes(w));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(w));
        }
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.get(&3), None);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn deterministic_across_instances() {
        fn h(x: u64) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        }
        assert_eq!(h(123), h(123));
        assert_ne!(h(123), h(124));
    }

    #[test]
    fn byte_slices_distinguish_prefixes() {
        fn h(b: &[u8]) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        }
        assert_ne!(h(b"abc"), h(b"abc\0"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefg"));
        assert_eq!(h(b"abcdefgh"), h(b"abcdefgh"));
    }

    #[test]
    fn spreads_sequential_keys() {
        // 10k sequential u32 keys into 64 buckets: no bucket should be
        // grossly overloaded (a degenerate hash would collapse them).
        let mut bins = [0u32; 64];
        for i in 0..10_000u32 {
            let mut hasher = FxHasher::default();
            hasher.write_u32(i);
            bins[(hasher.finish() % 64) as usize] += 1;
        }
        for (i, &b) in bins.iter().enumerate() {
            assert!((40..320).contains(&b), "bin {i} has {b}");
        }
    }
}
