//! Scoped-thread parallel map, replacing the `crossbeam` dependency for
//! experiment sweeps and the flow-sharded data plane. Built on
//! `std::thread::scope`, so borrowed inputs need no `'static` bound and no
//! unsafe code.

use std::num::NonZeroUsize;
use std::thread;

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
}

/// Detected hardware parallelism (`available_parallelism`, 1 on failure).
pub fn hardware_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of worker threads a sweep should use: `available_parallelism`
/// capped by the item count. `SDM_THREADS` (or the older `SDM_PAR_THREADS`)
/// overrides the autodetected count, so CI can force sequential runs.
pub fn thread_count(items: usize) -> usize {
    let hw = env_usize("SDM_THREADS")
        .or_else(|| env_usize("SDM_PAR_THREADS"))
        .unwrap_or_else(hardware_threads);
    hw.clamp(1, items.max(1))
}

/// Number of flow shards the sharded data plane should use: `SDM_SHARDS`
/// when set, otherwise `available_parallelism` capped at 8 (beyond that the
/// per-shard engine clones cost more memory than the extra threads return).
/// Always at least 1.
pub fn shard_count() -> usize {
    env_usize("SDM_SHARDS").unwrap_or_else(|| hardware_threads().min(8))
}

/// Applies `f` to every item on a scoped thread pool and returns the
/// results **in input order**. `f` receives `(index, &item)`.
///
/// Items are dealt round-robin across workers, which balances sweeps whose
/// cost grows monotonically with the index (e.g. traffic volumes).
///
/// # Example
///
/// ```
/// let squares = sdm_util::par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// # Panics
///
/// Propagates the first joined worker's panic with its original payload.
/// The scope joins every worker before unwinding past it, so a panicking
/// worker never deadlocks or detaches the others.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(thread_count(items.len()), items, f)
}

/// [`par_map`] with an explicit worker count (ignoring the environment and
/// hardware autodetection). `workers` is clamped to `1..=items.len()`;
/// with one worker the map runs sequentially on the caller's thread.
pub fn par_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut indexed: Vec<(usize, R)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, t)| (i, f(i, t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                // Re-raise with the original payload so callers can match
                // on the worker's message; `scope` still joins the
                // remaining workers before this unwind escapes it.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn preserves_order_and_values() {
        let input: Vec<u64> = (0..100).collect();
        let out = par_map(&input, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn actually_runs_concurrently_when_allowed() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        let items: Vec<u32> = (0..8).collect();
        par_map(&items, |_, _| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        // with >= 2 hardware threads at least two items overlap
        if thread_count(items.len()) >= 2 {
            assert!(peak.load(Ordering::SeqCst) >= 2);
        }
    }

    #[test]
    fn results_stay_index_ordered_despite_completion_order() {
        // Later items finish *first* (earlier items sleep longer), so any
        // completion-order collection would reverse the output. The sharded
        // merge relies on index order, not completion order.
        let items: Vec<u64> = (0..16).collect();
        let out = par_map_with(4, &items, |i, &x| {
            std::thread::sleep(std::time::Duration::from_millis(
                (items.len() - i) as u64 * 2,
            ));
            x * 10
        });
        assert_eq!(out, (0..16).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_payload_without_deadlock() {
        let items: Vec<u32> = (0..8).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(4, &items, |i, &x| {
                if i == 5 {
                    panic!("shard 5 exploded");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("shard 5 exploded"), "payload lost: {msg:?}");
    }

    #[test]
    fn worker_panic_in_sequential_path_also_propagates() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(1, &[1u32, 2], |_, _| -> u32 { panic!("sequential boom") })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn explicit_worker_count_is_clamped() {
        let items: Vec<u32> = (0..3).collect();
        assert_eq!(par_map_with(0, &items, |_, &x| x), vec![0, 1, 2]);
        assert_eq!(par_map_with(64, &items, |_, &x| x), vec![0, 1, 2]);
    }

    #[test]
    fn shard_count_is_positive() {
        assert!(shard_count() >= 1);
    }
}
