//! Scoped-thread parallel map, replacing the `crossbeam` dependency for
//! experiment sweeps. Built on `std::thread::scope`, so borrowed inputs
//! need no `'static` bound and no unsafe code.

use std::num::NonZeroUsize;
use std::thread;

/// Number of worker threads a sweep should use: `available_parallelism`
/// capped by the item count (and `SDM_PAR_THREADS` when set, so CI can
/// force sequential runs).
pub fn thread_count(items: usize) -> usize {
    let hw = std::env::var("SDM_PAR_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    hw.clamp(1, items.max(1))
}

/// Applies `f` to every item on a scoped thread pool and returns the
/// results **in input order**. `f` receives `(index, &item)`.
///
/// Items are dealt round-robin across workers, which balances sweeps whose
/// cost grows monotonically with the index (e.g. traffic volumes).
///
/// # Example
///
/// ```
/// let squares = sdm_util::par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// # Panics
///
/// Propagates the first panic of any worker.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = thread_count(items.len());
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut indexed: Vec<(usize, R)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, t)| (i, f(i, t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let input: Vec<u64> = (0..100).collect();
        let out = par_map(&input, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn actually_runs_concurrently_when_allowed() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        let items: Vec<u32> = (0..8).collect();
        par_map(&items, |_, _| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        // with >= 2 hardware threads at least two items overlap
        if thread_count(items.len()) >= 2 {
            assert!(peak.load(Ordering::SeqCst) >= 2);
        }
    }
}
