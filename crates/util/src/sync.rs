//! Synchronization primitives over `std::sync`, replacing `parking_lot`.
//!
//! The only behavioural difference callers relied on was `parking_lot`'s
//! non-poisoning `lock()` returning the guard directly; this wrapper keeps
//! that call shape over `std::sync::Mutex` (a poisoned lock — a panic
//! while held — just hands the data back, which is what every call site
//! here wants: the shared state is plain counters and tables).

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s ergonomic `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn poisoned_lock_still_returns_data() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
