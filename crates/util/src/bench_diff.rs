//! Comparison of two micro-benchmark result files (the perf-trajectory
//! regression gate).
//!
//! Both files use the shape [`crate::bench::Runner::finish`] writes:
//! `{ "<group>": { "<bench>": { "median_ns": …, … }, … }, … }`. The diff
//! pairs benchmarks present in *both* files by `(group, name)` and reports
//! the ratio `new_median / baseline_median` — above 1.0 is a slowdown,
//! below is a speedup. [`gate`] turns the deltas into a pass/fail verdict
//! against a regression threshold (e.g. 1.25 = fail on >25% slowdown).

use crate::json::Json;

/// One benchmark's baseline-vs-new comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Baseline median, ns per iteration.
    pub baseline_ns: f64,
    /// New median, ns per iteration.
    pub new_ns: f64,
}

impl BenchDelta {
    /// `new / baseline`: above 1.0 is a regression, below a speedup.
    pub fn ratio(&self) -> f64 {
        if self.baseline_ns <= 0.0 {
            1.0
        } else {
            self.new_ns / self.baseline_ns
        }
    }

    /// One human-readable comparison line.
    pub fn format_line(&self) -> String {
        let r = self.ratio();
        let verdict = if r > 1.0 {
            format!("{:.2}x slower", r)
        } else {
            format!("{:.2}x faster", 1.0 / r.max(1e-12))
        };
        format!(
            "{:<50} {:>14.0} ns -> {:>14.0} ns  ({verdict})",
            format!("{}/{}", self.group, self.name),
            self.baseline_ns,
            self.new_ns,
        )
    }
}

/// Pairs the benchmarks of two result documents by `(group, name)`,
/// in the baseline's order. Benchmarks present in only one file are
/// ignored (new benches have no baseline to regress against).
pub fn diff(baseline: &Json, new: &Json) -> Vec<BenchDelta> {
    let mut out = Vec::new();
    let Json::Obj(groups) = baseline else {
        return out;
    };
    for (group, benches) in groups {
        let Json::Obj(benches) = benches else {
            continue;
        };
        for (name, stats) in benches {
            let Some(base_med) = median_of(stats) else {
                continue;
            };
            let Some(new_med) = new
                .get(group)
                .and_then(|g| g.get(name))
                .and_then(median_of)
            else {
                continue;
            };
            out.push(BenchDelta {
                group: group.clone(),
                name: name.clone(),
                baseline_ns: base_med,
                new_ns: new_med,
            });
        }
    }
    out
}

fn median_of(stats: &Json) -> Option<f64> {
    match stats.get("median_ns") {
        Some(Json::Num(n)) => Some(*n),
        _ => None,
    }
}

/// Benchmarks present in `new` but absent from `baseline` (fresh benches
/// with no baseline to regress against), as `(group, name)` pairs in the
/// new document's order. [`diff`] skips them silently; gates should report
/// them as "new (no baseline)" rather than leaving them invisible.
pub fn unpaired_new(baseline: &Json, new: &Json) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let Json::Obj(groups) = new else {
        return out;
    };
    for (group, benches) in groups {
        let Json::Obj(benches) = benches else {
            continue;
        };
        for (name, stats) in benches {
            if median_of(stats).is_none() {
                continue;
            }
            let paired = baseline
                .get(group)
                .and_then(|g| g.get(name))
                .and_then(median_of)
                .is_some();
            if !paired {
                out.push((group.clone(), name.clone()));
            }
        }
    }
    out
}

/// The `median_ns` of one benchmark in a result document, if present.
pub fn median_for(doc: &Json, group: &str, name: &str) -> Option<f64> {
    doc.get(group).and_then(|g| g.get(name)).and_then(median_of)
}

/// Applies the regression gate: every delta whose ratio exceeds
/// `fail_ratio` (e.g. 1.25 for "fail on >25% slowdown") is a failure.
/// Returns the offending deltas; an empty vector means the gate passes.
pub fn gate(deltas: &[BenchDelta], fail_ratio: f64) -> Vec<BenchDelta> {
    deltas
        .iter()
        .filter(|d| d.ratio() > fail_ratio)
        .cloned()
        .collect()
}

/// Geometric-mean speedup (`baseline / new`) across the deltas of one
/// group; `None` if the group has no paired benchmarks. This is the
/// per-group headline number (robust to one bench dominating).
pub fn group_speedup(deltas: &[BenchDelta], group: &str) -> Option<f64> {
    let ratios: Vec<f64> = deltas
        .iter()
        .filter(|d| d.group == group && d.new_ns > 0.0)
        .map(|d| d.baseline_ns / d.new_ns)
        .collect();
    if ratios.is_empty() {
        return None;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
    Some((log_sum / ratios.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: &[(&str, &str, f64)]) -> Json {
        let mut groups: Vec<(String, Json)> = Vec::new();
        for &(g, n, med) in entries {
            let stats = Json::obj([("median_ns", Json::Num(med))]);
            match groups.iter_mut().find(|(k, _)| k == g) {
                Some((_, Json::Obj(benches))) => benches.push((n.to_string(), stats)),
                _ => groups.push((g.to_string(), Json::Obj(vec![(n.to_string(), stats)]))),
            }
        }
        Json::Obj(groups)
    }

    #[test]
    fn pairs_by_group_and_name() {
        let base = doc(&[("sim", "a", 100.0), ("sim", "b", 200.0), ("lp", "x", 50.0)]);
        let new = doc(&[("sim", "a", 50.0), ("lp", "x", 75.0), ("lp", "only_new", 1.0)]);
        let d = diff(&base, &new);
        assert_eq!(d.len(), 2); // sim/b and lp/only_new unpaired
        assert_eq!(d[0].name, "a");
        assert!((d[0].ratio() - 0.5).abs() < 1e-12);
        assert!((d[1].ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn gate_flags_only_regressions_beyond_threshold() {
        let base = doc(&[("g", "fast", 100.0), ("g", "ok", 100.0), ("g", "slow", 100.0)]);
        let new = doc(&[("g", "fast", 10.0), ("g", "ok", 120.0), ("g", "slow", 130.0)]);
        let d = diff(&base, &new);
        let failures = gate(&d, 1.25);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].name, "slow");
        assert!(gate(&d, 1.5).is_empty());
    }

    #[test]
    fn group_speedup_is_geometric_mean() {
        let base = doc(&[("g", "a", 400.0), ("g", "b", 100.0), ("h", "c", 10.0)]);
        let new = doc(&[("g", "a", 100.0), ("g", "b", 100.0), ("h", "c", 20.0)]);
        let d = diff(&base, &new);
        // speedups 4.0 and 1.0 -> geomean 2.0
        let s = group_speedup(&d, "g").unwrap();
        assert!((s - 2.0).abs() < 1e-9, "{s}");
        assert!((group_speedup(&d, "h").unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(group_speedup(&d, "missing"), None);
    }

    #[test]
    fn malformed_documents_yield_empty_diff() {
        assert!(diff(&Json::Num(1.0), &Json::Obj(vec![])).is_empty());
        let base = doc(&[("g", "a", 100.0)]);
        assert!(diff(&base, &Json::Null).is_empty());
    }

    #[test]
    fn unpaired_new_lists_only_fresh_benches() {
        let base = doc(&[("sim", "a", 100.0), ("sim", "b", 200.0)]);
        let new = doc(&[("sim", "a", 50.0), ("sim", "c", 1.0), ("sharding", "s4", 2.0)]);
        let fresh = unpaired_new(&base, &new);
        assert_eq!(
            fresh,
            vec![
                ("sim".to_string(), "c".to_string()),
                ("sharding".to_string(), "s4".to_string())
            ]
        );
        // benches missing from `new` are not "new"
        assert!(unpaired_new(&new, &base)
            .iter()
            .all(|(_, n)| n == "b"));
        assert!(unpaired_new(&base, &Json::Null).is_empty());
    }

    #[test]
    fn median_for_reads_one_bench() {
        let d = doc(&[("g", "a", 123.0)]);
        assert_eq!(median_for(&d, "g", "a"), Some(123.0));
        assert_eq!(median_for(&d, "g", "missing"), None);
        assert_eq!(median_for(&d, "missing", "a"), None);
    }

    #[test]
    fn zero_baseline_does_not_divide_by_zero() {
        let d = BenchDelta {
            group: "g".into(),
            name: "n".into(),
            baseline_ns: 0.0,
            new_ns: 10.0,
        };
        assert_eq!(d.ratio(), 1.0);
        assert!(d.format_line().contains("g/n"));
    }
}
