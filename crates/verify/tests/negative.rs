//! One negative-path test per verifier error code (V001–V015): each test
//! builds the minimal healthy plan, breaks exactly one invariant, and
//! asserts the verifier rejects it with the expected code — and nothing
//! unrelated. A final test pins the JSON report format byte-for-byte
//! against a golden fixture.

use sdm_netsim::{Ipv4Addr, Prefix};
use sdm_policy::NetworkFunction::{self, *};
use sdm_verify::{
    verify_plan, CandidateSet, ChainView, ErrorCode, MboxView, OptionsView, PlanView, Point,
    Severity, VerifyReport, WeightColumn, WeightsView,
};

/// The same minimal healthy world the unit tests use: 2 FWs + 1 IDS, one
/// FW→IDS policy, two /20 stubs, one gateway, full candidate sets.
fn healthy() -> PlanView {
    let subnet = |i: u32| Prefix::new(Ipv4Addr::from_octets([10, 0, (16 * i) as u8, 0]), 20);
    let addr = |i: u32| Ipv4Addr::from_octets([172, 16, 0, 1 + i as u8]);
    let mbox = |fns: Vec<NetworkFunction>, router: usize, i: u32| MboxView {
        functions: fns,
        router,
        capacity: 1.0,
        available: true,
        addr: addr(i),
    };
    let mut candidates = Vec::new();
    for p in 0..2u32 {
        candidates.push(CandidateSet {
            point: Point::Proxy(p),
            function: Firewall,
            members: vec![0, 1],
        });
        candidates.push(CandidateSet {
            point: Point::Proxy(p),
            function: Ids,
            members: vec![2],
        });
    }
    candidates.push(CandidateSet {
        point: Point::Gateway(0),
        function: Firewall,
        members: vec![1, 0],
    });
    candidates.push(CandidateSet {
        point: Point::Gateway(0),
        function: Ids,
        members: vec![2],
    });
    for m in 0..2u32 {
        candidates.push(CandidateSet {
            point: Point::Middlebox(m),
            function: Ids,
            members: vec![2],
        });
    }
    candidates.push(CandidateSet {
        point: Point::Middlebox(2),
        function: Firewall,
        members: vec![0, 1],
    });
    PlanView {
        node_count: 10,
        stub_subnets: vec![subnet(0), subnet(1)],
        gateway_count: 1,
        middleboxes: vec![
            mbox(vec![Firewall], 0, 0),
            mbox(vec![Firewall], 1, 1),
            mbox(vec![Ids], 2, 2),
        ],
        policies: vec![ChainView {
            policy: 0,
            chain: vec![Firewall, Ids],
        }],
        k: vec![(Firewall, 2), (Ids, 1)],
        candidates,
        weights: None,
        options: Some(OptionsView {
            flow_ttl: 1_000,
            label_ttl: 1_000,
            mtu: 1500,
        }),
    }
}

/// Asserts the report contains `code` and that every *error* in it carries
/// that code (the broken invariant must not cascade into unrelated codes).
fn assert_only(report: &VerifyReport, code: ErrorCode) {
    assert!(report.has_code(code), "expected {code:?}: {report}");
    for e in report.errors() {
        assert_eq!(e.code, code, "unexpected extra error: {report}");
    }
}

#[test]
fn v001_chain_repeats_function() {
    let mut view = healthy();
    view.policies.push(ChainView {
        policy: 1,
        chain: vec![Firewall, Ids, Firewall],
    });
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::ChainRepeatsFunction);
    assert!(report.has_errors());
}

#[test]
fn v002_function_unimplemented() {
    let mut view = healthy();
    view.policies.push(ChainView {
        policy: 1,
        chain: vec![WebProxy], // no WP middlebox anywhere
    });
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::FunctionUnimplemented);
    assert!(report.has_errors());
}

#[test]
fn v002_counts_a_failed_middlebox_as_missing() {
    let mut view = healthy();
    view.middleboxes[2].available = false; // the only IDS is down
    let report = verify_plan(&view);
    assert!(
        report.has_code(ErrorCode::FunctionUnimplemented),
        "{report}"
    );
}

#[test]
fn v003_unreachable_function_at_a_steer_point() {
    let mut view = healthy();
    // The gateway loses its IDS candidate set; IDS is still implemented.
    view.candidates
        .retain(|c| !(c.point == Point::Gateway(0) && c.function == Ids));
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::UnreachableFunction);
    let subjects: Vec<_> = report.errors().map(|e| e.subject.clone()).collect();
    assert!(subjects.iter().any(|s| s == "gw(0)"), "{report}");
}

#[test]
fn v003_chain_continuation_needs_a_next_stage_candidate() {
    let mut view = healthy();
    // FW box m0 serves stage Firewall but can no longer reach stage Ids.
    view.candidates
        .retain(|c| !(c.point == Point::Middlebox(0) && c.function == Ids));
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::UnreachableFunction);
    assert!(
        report.errors().any(|e| e.subject == "mbox(m0)"),
        "{report}"
    );
}

#[test]
fn v004_candidate_shortfall_is_a_warning() {
    let mut view = healthy();
    view.k = vec![(Firewall, 5), (Ids, 1)]; // only 2 FWs exist
    let report = verify_plan(&view);
    assert!(report.has_code(ErrorCode::CandidateShortfall), "{report}");
    assert!(!report.has_errors(), "shortfall must not be fatal: {report}");
    assert_eq!(ErrorCode::CandidateShortfall.severity(), Severity::Warning);
}

#[test]
fn v005_steering_loop_between_non_implementing_boxes() {
    let mut view = healthy();
    // The two FW boxes tunnel IDS-bound traffic to each other forever.
    for c in &mut view.candidates {
        if c.function == Ids {
            match c.point {
                Point::Middlebox(0) => c.members = vec![1],
                Point::Middlebox(1) => c.members = vec![0],
                _ => {}
            }
        }
    }
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::SteeringLoop);
    assert!(report.has_errors());
}

fn with_weights(mut view: PlanView, lambda: f64, columns: Vec<WeightColumn>) -> PlanView {
    view.weights = Some(WeightsView { lambda, columns });
    view
}

#[test]
fn v006_negative_weight() {
    let view = with_weights(
        healthy(),
        10.0,
        vec![WeightColumn {
            point: Point::Proxy(0),
            policy: 0,
            next_index: 0,
            weights: vec![(0, -5.0), (1, 10.0)],
        }],
    );
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::NegativeWeight);
}

#[test]
fn v007_all_zero_first_hop_column() {
    let view = with_weights(
        healthy(),
        1.0,
        vec![WeightColumn {
            point: Point::Proxy(0),
            policy: 0,
            next_index: 0,
            weights: vec![(0, 0.0), (1, 0.0)],
        }],
    );
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::ZeroWeightColumn);
}

#[test]
fn v007_all_zero_middlebox_transition_column_is_fine() {
    // An LP optimum that routes no traffic through a box still installs
    // its (all-zero) transition column — the hot-potato fallback covers
    // stray flows, so this must NOT be rejected.
    let view = with_weights(
        healthy(),
        10.0,
        vec![WeightColumn {
            point: Point::Middlebox(0),
            policy: 0,
            next_index: 1,
            weights: vec![(2, 0.0)],
        }],
    );
    let report = verify_plan(&view);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn v008_non_finite_weight_breaks_normalization() {
    let view = with_weights(
        healthy(),
        10.0,
        vec![WeightColumn {
            point: Point::Proxy(0),
            policy: 0,
            next_index: 0,
            weights: vec![(0, f64::INFINITY), (1, 1.0)],
        }],
    );
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::WeightSumMismatch);
}

#[test]
fn v009_weight_outside_candidate_set() {
    // m2 (the IDS) is not in Proxy(0)'s Firewall candidate set.
    let view = with_weights(
        healthy(),
        10.0,
        vec![WeightColumn {
            point: Point::Proxy(0),
            policy: 0,
            next_index: 0,
            weights: vec![(2, 5.0)],
        }],
    );
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::WeightOutsideCandidates);
}

#[test]
fn v009_weight_for_nonexistent_chain_stage() {
    let view = with_weights(
        healthy(),
        10.0,
        vec![WeightColumn {
            point: Point::Proxy(0),
            policy: 0,
            next_index: 7, // the chain has stages 0 and 1
            weights: vec![(0, 5.0)],
        }],
    );
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::WeightOutsideCandidates);
}

#[test]
fn v010_projected_load_exceeds_lambda_capacity() {
    let view = with_weights(
        healthy(),
        1.0, // λ·C(m0) = 1.0, but 100 packets are steered into m0
        vec![WeightColumn {
            point: Point::Proxy(0),
            policy: 0,
            next_index: 0,
            weights: vec![(0, 100.0)],
        }],
    );
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::CapacityExceeded);
    assert!(report.errors().any(|e| e.subject == "mbox(m0)"), "{report}");
}

#[test]
fn v010_non_positive_lambda_with_routed_traffic() {
    let view = with_weights(
        healthy(),
        0.0,
        vec![WeightColumn {
            point: Point::Proxy(0),
            policy: 0,
            next_index: 0,
            weights: vec![(0, 5.0), (1, 5.0)],
        }],
    );
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::CapacityExceeded);
    assert!(report.errors().any(|e| e.subject == "lambda"), "{report}");
}

#[test]
fn v011_zero_ttl() {
    let mut view = healthy();
    view.options = Some(OptionsView {
        flow_ttl: 0,
        label_ttl: 0,
        mtu: 1500,
    });
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::ZeroTtl);
    assert_eq!(report.errors().count(), 2, "{report}"); // flow + label
}

#[test]
fn v012_label_ttl_exceeds_flow_ttl() {
    let mut view = healthy();
    view.options = Some(OptionsView {
        flow_ttl: 10,
        label_ttl: 20,
        mtu: 1500,
    });
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::LabelTtlExceedsFlowTtl);
}

#[test]
fn v013_duplicate_middlebox_address() {
    let mut view = healthy();
    view.middleboxes[1].addr = view.middleboxes[0].addr;
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::AddressCollision);
}

#[test]
fn v013_overlapping_stub_subnets() {
    let mut view = healthy();
    view.stub_subnets[1] = view.stub_subnets[0];
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::AddressCollision);
}

#[test]
fn v013_middlebox_address_inside_a_stub_subnet() {
    let mut view = healthy();
    view.middleboxes[0].addr = Ipv4Addr::from_octets([10, 0, 0, 5]);
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::AddressCollision);
}

#[test]
fn v014_mtu_too_small_for_encapsulation() {
    let mut view = healthy();
    view.options = Some(OptionsView {
        flow_ttl: 1_000,
        label_ttl: 1_000,
        mtu: 40, // two IP headers leave no payload byte
    });
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::MtuTooSmall);
}

#[test]
fn v015_dangling_router_attachment() {
    let mut view = healthy();
    view.middleboxes[2].router = 99; // node_count is 10
    let report = verify_plan(&view);
    assert_only(&report, ErrorCode::DanglingAttachment);
}

/// The JSON report format is a wire format (ci.sh and external tooling
/// parse it): pin a multi-diagnostic report byte-for-byte.
#[test]
fn golden_json_report() {
    let mut view = healthy();
    view.options = Some(OptionsView {
        flow_ttl: 0,
        label_ttl: 0,
        mtu: 10,
    });
    view.policies.push(ChainView {
        policy: 1,
        chain: vec![Firewall, Ids, Firewall],
    });
    view.k = vec![(Firewall, 5), (Ids, 1)];
    let report = verify_plan(&view);
    let rendered = report.to_json().to_string_pretty();
    if std::env::var_os("SDM_REGEN_GOLDEN").is_some() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_report.json"),
            format!("{rendered}\n"),
        )
        .expect("write golden fixture");
    }
    let golden = include_str!("fixtures/golden_report.json");
    assert_eq!(
        rendered,
        golden.trim_end_matches('\n'),
        "JSON report drifted from tests/fixtures/golden_report.json"
    );
}
