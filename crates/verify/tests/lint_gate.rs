//! End-to-end tests of the `sdm-lint` gate: the library scan and the
//! compiled binary must reject the seeded-violation fixture workspace
//! (`tests/fixtures/bad_workspace`) with every rule firing, and the binary
//! must pass the real workspace clean — exactly what ci.sh relies on.

use std::path::{Path, PathBuf};
use std::process::Command;

use sdm_verify::{lint_workspace, LintConfig};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_workspace")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn fixture_trips_every_rule() {
    let violations =
        lint_workspace(&LintConfig::new(fixture_root())).expect("fixture scan succeeds");
    let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    for rule in [
        sdm_verify::lint::RULE_DEFAULT_HASHER,
        sdm_verify::lint::RULE_WALL_CLOCK,
        sdm_verify::lint::RULE_HOT_PATH_PANIC,
        sdm_verify::lint::RULE_UNSAFE_CODE,
        sdm_verify::lint::RULE_PER_FLOW_MAP,
        sdm_verify::lint::RULE_SET_ORDER,
    ] {
        assert!(
            rules.contains(&rule),
            "fixture must trip {rule}: {violations:?}"
        );
    }
    // The missing #![forbid(unsafe_code)] attribute is reported at line 0
    // of lib.rs, distinct from the `unsafe` block inside the function.
    assert!(
        violations
            .iter()
            .any(|v| v.rule == sdm_verify::lint::RULE_UNSAFE_CODE && v.line == 0),
        "missing crate attribute must be reported: {violations:?}"
    );
}

/// The telemetry crate is covered by the gate: a collector that touches
/// the host clock or a randomly seeded map must be rejected (PR-8 —
/// `sdm-telemetry` joined [`sdm_verify::lint::DATA_PLANE_CRATES`]).
#[test]
fn telemetry_fixture_trips_wall_clock_and_hasher() {
    let violations =
        lint_workspace(&LintConfig::new(fixture_root())).expect("fixture scan succeeds");
    let telemetry: Vec<_> = violations
        .iter()
        .filter(|v| v.file.contains("crates/telemetry/"))
        .collect();
    assert!(
        telemetry
            .iter()
            .any(|v| v.rule == sdm_verify::lint::RULE_WALL_CLOCK),
        "Instant::now in the telemetry fixture must trip wall-clock: {telemetry:?}"
    );
    assert!(
        telemetry
            .iter()
            .any(|v| v.rule == sdm_verify::lint::RULE_DEFAULT_HASHER),
        "HashMap in the telemetry fixture must trip default-hasher: {telemetry:?}"
    );
}

/// The verify crate itself is covered by the gate (PR-10 — the reach
/// tier joined [`sdm_verify::lint::DIAGNOSTIC_CRATES`]): both `HashSet`
/// and `FxHashSet` in a diagnostic path must be rejected, since report
/// order must come from the documented sort, not hasher accidents.
#[test]
fn verify_fixture_trips_set_iteration_order() {
    let violations =
        lint_workspace(&LintConfig::new(fixture_root())).expect("fixture scan succeeds");
    let verify: Vec<_> = violations
        .iter()
        .filter(|v| v.file.contains("crates/verify/"))
        .collect();
    assert!(
        verify
            .iter()
            .any(|v| v.rule == sdm_verify::lint::RULE_SET_ORDER),
        "hash sets in the verify fixture must trip set-iteration-order: {verify:?}"
    );
}

#[test]
fn binary_exits_nonzero_on_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_sdm-lint"))
        .arg("--root")
        .arg(fixture_root())
        .output()
        .expect("run sdm-lint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("default-hasher"), "{stdout}");
    assert!(stdout.contains("crates/core/src/shard.rs"), "{stdout}");
}

#[test]
fn binary_passes_the_real_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_sdm-lint"))
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run sdm-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "the workspace must lint clean:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn binary_reports_usage_error_on_bad_root() {
    let out = Command::new(env!("CARGO_BIN_EXE_sdm-lint"))
        .arg("--root")
        .arg(fixture_root().join("does-not-exist"))
        .output()
        .expect("run sdm-lint");
    assert_eq!(out.status.code(), Some(2), "I/O errors must exit 2");
}
