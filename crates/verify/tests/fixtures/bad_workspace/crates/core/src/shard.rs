// Hot-path file (suffix core/src/shard.rs) for the sdm-lint gate test.

pub fn pick(v: &[u32]) -> u32 {
    *v.first().unwrap() // rule: hot-path-panic
}
