// Deliberately broken fixture for the sdm-lint gate test. Every construct
// below violates a rule; the file is never compiled. It also lacks the
// mandatory crate-level forbid attribute (rule: unsafe-code).

use std::collections::HashMap;

pub fn broken() -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new(); // rule: default-hasher
    m.insert(1, 2);
    let _t = std::time::Instant::now(); // rule: wall-clock
    let p: *const u32 = &0;
    unsafe { *p as usize } // rule: unsafe-code (token)
}

pub struct PerFlow {
    pub entries: FxHashMap<FiveTuple, u64>, // rule: per-flow-map
}
