// Deliberately broken telemetry fixture: a metrics collector that
// timestamps with the host clock and buckets into a randomly seeded map.
// Proves the lint rules cover the telemetry crate — real telemetry must
// be sim-tick based and deterministic. Never compiled.
#![forbid(unsafe_code)]

use std::collections::HashMap;

pub fn observe(buckets: &mut HashMap<u64, u64>) {
    // rule: default-hasher (HashMap above), rule: wall-clock (below)
    let t = std::time::Instant::now().elapsed().as_nanos() as u64;
    *buckets.entry(t % 32).or_insert(0) += 1;
}
