// Deliberately broken verify-crate fixture: a diagnostic pass that
// accumulates findings in a hash set, so the emitted report's order is
// an accident of insertion history instead of the documented sort.
// Proves the set-iteration-order rule covers the diagnostic crates.
// Never compiled.
#![forbid(unsafe_code)]

use std::collections::HashSet;

pub fn collect_findings(seen: &mut HashSet<String>) -> Vec<String> {
    // rule: set-iteration-order (HashSet above and FxHashSet below)
    let extra: FxHashSet<String> = FxHashSet::default();
    seen.iter().chain(extra.iter()).cloned().collect()
}
