//! `sdm-lint` — the workspace source-lint gate (Pass 2 of `sdm-verify`).
//!
//! Scans every `crates/*/src` tree (plus the umbrella crate) for
//! violations of the determinism and robustness conventions documented in
//! [`sdm_verify::lint`], and exits non-zero when any are found so `ci.sh`
//! can gate on it.
//!
//! ```text
//! sdm-lint [--root <workspace-dir>]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` I/O or usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use sdm_verify::lint::{lint_workspace, LintConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match parse_root(&args) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("sdm-lint: {msg}");
            eprintln!("usage: sdm-lint [--root <workspace-dir>]");
            return ExitCode::from(2);
        }
    };

    // A root with nothing to scan must not pass as "clean" — a typoed
    // --root would otherwise silently disable the gate.
    if !root.join("crates").is_dir() {
        eprintln!(
            "sdm-lint: {} has no crates/ directory — not a workspace root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let violations = match lint_workspace(&LintConfig::new(&root)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("sdm-lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if violations.is_empty() {
        println!("sdm-lint: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("sdm-lint: {} violation(s)", violations.len());
        ExitCode::from(1)
    }
}

/// `--root <dir>` if given; otherwise walk up from the current directory
/// to the nearest ancestor containing a `crates/` directory.
fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    if let Some(i) = args.iter().position(|a| a == "--root") {
        return args
            .get(i + 1)
            .map(PathBuf::from)
            .ok_or_else(|| "--root needs a value".to_string());
    }
    if let Some(unknown) = args.first() {
        return Err(format!("unknown argument `{unknown}`"));
    }
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no workspace root found (looked for crates/ + Cargo.toml); \
pass --root"
                .to_string());
        }
    }
}
