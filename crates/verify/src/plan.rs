//! Pass 1 — the static enforcement-plan verifier.
//!
//! Given a neutral view of a deployment (topology size, addressing,
//! middleboxes, policy chains, candidate sets, LP steering weights and the
//! runtime options), [`verify_plan`] proves the invariants dependable
//! enforcement rests on *before* any packet is injected. A misconfigured
//! plan — a function with no reachable middlebox, an all-zero steering
//! column, a label-space collision — is rejected with a structured
//! diagnostic instead of silently blackholing or misrouting traffic at
//! simulation time.
//!
//! The input is plain data ([`PlanView`]) rather than `sdm-core` types so
//! the verifier sits *below* the controller in the crate graph: `sdm-core`
//! adapts its `Controller`, `Assignments` and `SteeringWeights` into a
//! `PlanView` and fail-fasts on a fatal report at construction time.

use std::collections::BTreeSet;
use std::fmt;

use sdm_netsim::{Ipv4Addr, Prefix};
use sdm_policy::NetworkFunction;
use sdm_util::json::Json;

use crate::reach::{walk_route, RouteView, Walk};

/// Minimum MTU an IP-over-IP steering hop can work with: an outer header,
/// an inner header, and at least one payload byte.
pub const MIN_STEERABLE_MTU: u32 = 2 * sdm_netsim::IP_HEADER_LEN + 1;

/// Relative tolerance for floating-point comparisons (weight-column
/// normalization and LP load-versus-capacity checks).
pub const EPSILON: f64 = 1e-6;

/// Every misconfiguration class the verifier can reject, with a stable
/// machine-readable code (`V0xx`). The codes are part of the JSON report
/// format; add new classes at the end and never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorCode {
    /// A policy's action list names the same function twice; the data
    /// plane resolves a middlebox's chain position by its function, which
    /// is ambiguous under repetition.
    ChainRepeatsFunction,
    /// A function required by some policy has no available (non-failed)
    /// implementing middlebox anywhere — the paper's `M^e` is empty.
    FunctionUnimplemented,
    /// A proxy, gateway or middlebox steer point has an empty candidate
    /// set for a function it must steer towards: the hot-potato nearest
    /// map `m_x^e` is not total and traffic would blackhole.
    UnreachableFunction,
    /// Fewer available middleboxes offer a function than the configured
    /// candidate-set size `k` (`k > |M^e|`). Enforcement still works with
    /// the smaller set, so this is a warning, not a fatal error.
    CandidateShortfall,
    /// The per-policy steering graph has a cycle: following candidate
    /// sets from box to box can revisit a middlebox without ever reaching
    /// one that implements the required function — an IP-over-IP tunnel
    /// loop.
    SteeringLoop,
    /// A steering weight column contains a negative entry.
    NegativeWeight,
    /// A steering weight column is all-zero: the LP routed no traffic to
    /// any candidate, so flows matching the key have no valid next hop.
    /// (PR-2 regression tie: the data-plane fallback must never be asked
    /// to pick from an all-zero column.)
    ZeroWeightColumn,
    /// A steering weight column does not normalize to a probability
    /// distribution (non-finite entries, or the normalized sum is off 1
    /// by more than [`EPSILON`]).
    WeightSumMismatch,
    /// A steering weight column names a middlebox outside the candidate
    /// set `M_x^e` for its key — the LP solution and the installed
    /// candidate sets disagree.
    WeightOutsideCandidates,
    /// The LP solution overloads a middlebox: its projected volume
    /// exceeds `λ · C(x)` beyond tolerance, or λ itself is non-finite or
    /// non-positive while traffic is routed.
    CapacityExceeded,
    /// A soft-state TTL (flow cache or label table) is zero: every packet
    /// would miss and re-resolve, and label switching could never
    /// establish.
    ZeroTtl,
    /// The label-table TTL exceeds the flow-cache TTL: a stale
    /// `⟨src|l, a⟩` binding at a middlebox can outlive the proxy's flow
    /// entry, so a reallocated label collides with the dead flow's path
    /// (§III.E label-space collision).
    LabelTtlExceedsFlowTtl,
    /// Two stub subnets overlap, or a middlebox device address collides
    /// with another device or falls inside a stub subnet. The `src|l`
    /// label space is collision-free only while addresses are unique.
    AddressCollision,
    /// The MTU is too small to carry one IP-over-IP-encapsulated payload
    /// byte ([`MIN_STEERABLE_MTU`]); every steered packet would be
    /// unforwardable.
    MtuTooSmall,
    /// A middlebox attaches to a router that does not exist in the
    /// topology.
    DanglingAttachment,
}

/// Severity of a diagnostic, derived from its [`ErrorCode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Enforcement is broken; fail-fast hooks reject the plan.
    Error,
    /// Enforcement degrades but works; reported, never fatal.
    Warning,
}

impl ErrorCode {
    /// The stable wire code (`V0xx`).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::ChainRepeatsFunction => "V001",
            ErrorCode::FunctionUnimplemented => "V002",
            ErrorCode::UnreachableFunction => "V003",
            ErrorCode::CandidateShortfall => "V004",
            ErrorCode::SteeringLoop => "V005",
            ErrorCode::NegativeWeight => "V006",
            ErrorCode::ZeroWeightColumn => "V007",
            ErrorCode::WeightSumMismatch => "V008",
            ErrorCode::WeightOutsideCandidates => "V009",
            ErrorCode::CapacityExceeded => "V010",
            ErrorCode::ZeroTtl => "V011",
            ErrorCode::LabelTtlExceedsFlowTtl => "V012",
            ErrorCode::AddressCollision => "V013",
            ErrorCode::MtuTooSmall => "V014",
            ErrorCode::DanglingAttachment => "V015",
        }
    }

    /// Human-readable name matching the enum variant.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::ChainRepeatsFunction => "chain-repeats-function",
            ErrorCode::FunctionUnimplemented => "function-unimplemented",
            ErrorCode::UnreachableFunction => "unreachable-function",
            ErrorCode::CandidateShortfall => "candidate-shortfall",
            ErrorCode::SteeringLoop => "steering-loop",
            ErrorCode::NegativeWeight => "negative-weight",
            ErrorCode::ZeroWeightColumn => "zero-weight-column",
            ErrorCode::WeightSumMismatch => "weight-sum-mismatch",
            ErrorCode::WeightOutsideCandidates => "weight-outside-candidates",
            ErrorCode::CapacityExceeded => "capacity-exceeded",
            ErrorCode::ZeroTtl => "zero-ttl",
            ErrorCode::LabelTtlExceedsFlowTtl => "label-ttl-exceeds-flow-ttl",
            ErrorCode::AddressCollision => "address-collision",
            ErrorCode::MtuTooSmall => "mtu-too-small",
            ErrorCode::DanglingAttachment => "dangling-attachment",
        }
    }

    /// The severity class of this code.
    pub fn severity(self) -> Severity {
        match self {
            ErrorCode::CandidateShortfall => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.as_str(), self.name())
    }
}

/// One structured diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The misconfiguration class.
    pub code: ErrorCode,
    /// What the diagnostic is about (a policy, steer point, middlebox,
    /// function or address), rendered compactly.
    pub subject: String,
    /// Human-readable explanation with the offending values.
    pub detail: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.code, self.subject, self.detail)
    }
}

/// The verifier's result: all diagnostics, sorted deterministically by
/// (code, subject, detail) so reports are byte-stable across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    diagnostics: Vec<VerifyError>,
}

impl VerifyReport {
    /// All diagnostics (errors and warnings), sorted.
    pub fn diagnostics(&self) -> &[VerifyError] {
        &self.diagnostics
    }

    /// Only the fatal diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &VerifyError> + '_ {
        self.diagnostics
            .iter()
            .filter(|d| d.code.severity() == Severity::Error)
    }

    /// Only the advisory diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &VerifyError> + '_ {
        self.diagnostics
            .iter()
            .filter(|d| d.code.severity() == Severity::Warning)
    }

    /// True if any fatal diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// True if no diagnostics at all were produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if a diagnostic with this code is present.
    pub fn has_code(&self, code: ErrorCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The JSON report: counts plus every diagnostic, in sorted order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("verifier", Json::from("sdm-verify")),
            ("errors", Json::from(self.errors().count())),
            ("warnings", Json::from(self.warnings().count())),
            (
                "diagnostics",
                Json::Arr(
                    self.diagnostics
                        .iter()
                        .map(|d| {
                            Json::obj([
                                ("code", Json::from(d.code.as_str())),
                                ("name", Json::from(d.code.name())),
                                (
                                    "severity",
                                    Json::from(match d.code.severity() {
                                        Severity::Error => "error",
                                        Severity::Warning => "warning",
                                    }),
                                ),
                                ("subject", Json::from(d.subject.as_str())),
                                ("detail", Json::from(d.detail.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "plan verifies: no diagnostics");
        }
        writeln!(
            f,
            "plan rejected: {} error(s), {} warning(s)",
            self.errors().count(),
            self.warnings().count()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// A place that makes steering decisions, in the neutral view: mirrors
/// `sdm-core`'s `SteerPoint` without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Point {
    /// The policy proxy of stub network `s`.
    Proxy(u32),
    /// The ingress proxy at gateway index `g`.
    Gateway(u32),
    /// Middlebox `m`.
    Middlebox(u32),
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Point::Proxy(s) => write!(f, "proxy(s{s})"),
            Point::Gateway(g) => write!(f, "gw({g})"),
            Point::Middlebox(m) => write!(f, "mbox(m{m})"),
        }
    }
}

/// One middlebox in the neutral view.
#[derive(Debug, Clone)]
pub struct MboxView {
    /// Functions the box implements.
    pub functions: Vec<NetworkFunction>,
    /// Index of the router it attaches to.
    pub router: usize,
    /// Processing capacity `C(x)`.
    pub capacity: f64,
    /// False when the box is marked failed (excluded from `M^e`).
    pub available: bool,
    /// The box's device address.
    pub addr: Ipv4Addr,
}

impl MboxView {
    fn implements(&self, f: NetworkFunction) -> bool {
        self.functions.contains(&f)
    }
}

/// One policy's enforcement chain.
#[derive(Debug, Clone)]
pub struct ChainView {
    /// The policy id.
    pub policy: u32,
    /// The ordered function chain (empty = plain permit).
    pub chain: Vec<NetworkFunction>,
}

/// One installed candidate set `M_x^e`.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// The deciding steer point `x`.
    pub point: Point,
    /// The function `e` being steered towards.
    pub function: NetworkFunction,
    /// Candidate middlebox indices, closest first.
    pub members: Vec<u32>,
}

/// One LP steering-weight column `t(x, ·)` for a key.
#[derive(Debug, Clone)]
pub struct WeightColumn {
    /// The deciding steer point.
    pub point: Point,
    /// The governing policy.
    pub policy: u32,
    /// Index of the next function in the policy's chain.
    pub next_index: u16,
    /// `(middlebox, volume)` pairs.
    pub weights: Vec<(u32, f64)>,
}

/// The LP solution in the neutral view.
#[derive(Debug, Clone, Default)]
pub struct WeightsView {
    /// The optimal maximum load factor λ.
    pub lambda: f64,
    /// Every installed column (aggregate and per-commodity alike).
    pub columns: Vec<WeightColumn>,
}

/// Runtime options relevant to static verification.
#[derive(Debug, Clone, Copy)]
pub struct OptionsView {
    /// Flow-cache TTL in ticks.
    pub flow_ttl: u64,
    /// Label-table TTL in ticks.
    pub label_ttl: u64,
    /// Uniform link MTU in bytes.
    pub mtu: u32,
}

/// The complete neutral input to [`verify_plan`].
#[derive(Debug, Clone, Default)]
pub struct PlanView {
    /// Number of nodes in the topology (router indices are `< node_count`).
    pub node_count: usize,
    /// One subnet per stub network / policy proxy.
    pub stub_subnets: Vec<Prefix>,
    /// Number of gateway ingress proxies.
    pub gateway_count: usize,
    /// The middlebox deployment.
    pub middleboxes: Vec<MboxView>,
    /// Every policy's function chain.
    pub policies: Vec<ChainView>,
    /// The effective candidate-set size `k` per function.
    pub k: Vec<(NetworkFunction, usize)>,
    /// Every installed candidate set.
    pub candidates: Vec<CandidateSet>,
    /// The LP solution, when load-balanced steering is configured.
    pub weights: Option<WeightsView>,
    /// Runtime options, when an enforcement run is being verified.
    pub options: Option<OptionsView>,
}

impl Default for OptionsView {
    fn default() -> Self {
        OptionsView {
            flow_ttl: 1,
            label_ttl: 1,
            mtu: 1500,
        }
    }
}

impl PlanView {
    /// Functions referenced by at least one policy chain, deduplicated in
    /// first-use order.
    fn used_functions(&self) -> Vec<NetworkFunction> {
        let mut out: Vec<NetworkFunction> = Vec::new();
        for p in &self.policies {
            for &f in &p.chain {
                if !out.contains(&f) {
                    out.push(f);
                }
            }
        }
        out
    }

    /// The candidate set installed for `(point, function)`, if any.
    fn candidates_for(&self, point: Point, f: NetworkFunction) -> Option<&CandidateSet> {
        self.candidates
            .iter()
            .find(|c| c.point == point && c.function == f)
    }

    /// Available middleboxes implementing `f`.
    fn available_offering(&self, f: NetworkFunction) -> Vec<u32> {
        self.middleboxes
            .iter()
            .enumerate()
            .filter(|(_, m)| m.available && m.implements(f))
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// Runs every check over the view and returns the sorted report.
///
/// Steering-loop detection (V005) only sees the *declared* tunnel edges
/// here; when a routing next-hop view is available, prefer
/// [`verify_plan_routed`], which additionally walks the routed
/// realization of every steering edge and so catches routing-induced
/// loops this plan-only view cannot.
pub fn verify_plan(view: &PlanView) -> VerifyReport {
    verify_with(view, None)
}

/// Like [`verify_plan`], but `routes` — the same next-hop view the reach
/// checker ([`crate::reach::check_assertions`]) consumes — lets the V005
/// pass also walk the routed path realizing each steering edge, so
/// plan-level and reach-level loop detection can never disagree.
pub fn verify_plan_routed(view: &PlanView, routes: &dyn RouteView) -> VerifyReport {
    verify_with(view, Some(routes))
}

fn verify_with(view: &PlanView, routes: Option<&dyn RouteView>) -> VerifyReport {
    let mut diags: Vec<VerifyError> = Vec::new();
    check_chains(view, &mut diags);
    check_function_coverage(view, &mut diags);
    check_candidate_totality(view, &mut diags);
    check_steering_graph(view, routes, &mut diags);
    check_weights(view, &mut diags);
    check_addressing(view, &mut diags);
    check_attachments(view, &mut diags);
    check_options(view, &mut diags);
    diags.sort_by(|a, b| {
        (a.code, &a.subject, &a.detail).cmp(&(b.code, &b.subject, &b.detail))
    });
    diags.dedup();
    VerifyReport { diagnostics: diags }
}

fn check_chains(view: &PlanView, diags: &mut Vec<VerifyError>) {
    for p in &view.policies {
        for (i, f) in p.chain.iter().enumerate() {
            if p.chain[i + 1..].contains(f) {
                diags.push(VerifyError {
                    code: ErrorCode::ChainRepeatsFunction,
                    subject: format!("policy(p{})", p.policy),
                    detail: format!(
                        "action list repeats function {f}; the data plane cannot \
disambiguate repeated functions — split the policy"
                    ),
                });
            }
        }
    }
}

fn check_function_coverage(view: &PlanView, diags: &mut Vec<VerifyError>) {
    for f in view.used_functions() {
        let offer = view.available_offering(f);
        if offer.is_empty() {
            let users: Vec<String> = view
                .policies
                .iter()
                .filter(|p| p.chain.contains(&f))
                .map(|p| format!("p{}", p.policy))
                .collect();
            diags.push(VerifyError {
                code: ErrorCode::FunctionUnimplemented,
                subject: format!("function({f})"),
                detail: format!(
                    "no available middlebox implements {f}, required by {}",
                    users.join(", ")
                ),
            });
            continue;
        }
        if let Some(&(_, k)) = view.k.iter().find(|&&(kf, _)| kf == f) {
            if k > offer.len() {
                diags.push(VerifyError {
                    code: ErrorCode::CandidateShortfall,
                    subject: format!("function({f})"),
                    detail: format!(
                        "k = {k} exceeds the {} available middleboxes offering {f}",
                        offer.len()
                    ),
                });
            }
        }
    }
}

/// The hot-potato nearest map must be total: every proxy and gateway needs
/// a candidate for every first-chain function, and every middlebox that
/// hands a packet onward to the next chain function needs one too.
fn check_candidate_totality(view: &PlanView, diags: &mut Vec<VerifyError>) {
    let used = view.used_functions();
    // A function with no implementation at all is already reported by
    // check_function_coverage; an empty per-point set would only repeat it.
    let covered: Vec<NetworkFunction> = used
        .iter()
        .copied()
        .filter(|&f| !view.available_offering(f).is_empty())
        .collect();

    let mut points: Vec<Point> = Vec::new();
    points.extend((0..view.stub_subnets.len() as u32).map(Point::Proxy));
    points.extend((0..view.gateway_count as u32).map(Point::Gateway));
    for point in points {
        for &f in &covered {
            let empty = view
                .candidates_for(point, f)
                .is_none_or(|c| c.members.is_empty());
            if empty {
                diags.push(VerifyError {
                    code: ErrorCode::UnreachableFunction,
                    subject: format!("{point}"),
                    detail: format!(
                        "no candidate middlebox for function {f}: the hot-potato \
map m_x^e is not total and matching flows would blackhole"
                    ),
                });
            }
        }
    }

    // Chain continuation: a box serving stage i must reach stage i+1.
    for p in &view.policies {
        for pair in p.chain.windows(2) {
            let (cur, next) = (pair[0], pair[1]);
            if view.available_offering(next).is_empty() {
                continue; // already FunctionUnimplemented
            }
            for m in view.available_offering(cur) {
                let mb = &view.middleboxes[m as usize];
                if mb.implements(next) {
                    continue; // applied locally, no steering decision
                }
                let empty = view
                    .candidates_for(Point::Middlebox(m), next)
                    .is_none_or(|c| c.members.is_empty());
                if empty {
                    diags.push(VerifyError {
                        code: ErrorCode::UnreachableFunction,
                        subject: format!("mbox(m{m})"),
                        detail: format!(
                            "serves {cur} for policy p{} but has no candidate for \
the next function {next}",
                            p.policy
                        ),
                    });
                }
            }
        }
    }
}

/// Detects IP-over-IP steering loops: following candidate sets for a
/// function from box to box must terminate at a box that implements it.
/// A cycle among non-implementing boxes would tunnel a packet forever.
///
/// When `routes` is given, additionally checks the *routed realization*
/// of every steering edge: the tunnel from box `m` to candidate `s` is
/// carried hop by hop by the underlying routers, and a forwarding
/// micro-loop between their attachment routers loops the tunnel even
/// when the candidate graph itself is acyclic.
fn check_steering_graph(
    view: &PlanView,
    routes: Option<&dyn RouteView>,
    diags: &mut Vec<VerifyError>,
) {
    for f in view.used_functions() {
        // Successors of box m when steering towards f (only meaningful
        // while m does not implement f itself).
        let succ = |m: u32| -> &[u32] {
            view.candidates_for(Point::Middlebox(m), f)
                .map(|c| c.members.as_slice())
                .unwrap_or(&[])
        };
        let n = view.middleboxes.len();
        // 0 = unvisited, 1 = on stack, 2 = done
        let mut state = vec![0u8; n];
        let mut reported = vec![false; n];
        for start in 0..n as u32 {
            if state[start as usize] != 0 {
                continue;
            }
            // Iterative DFS with an explicit stack of (node, next-child).
            let mut stack: Vec<(u32, usize)> = vec![(start, 0)];
            state[start as usize] = 1;
            while let Some(&mut (node, ref mut child)) = stack.last_mut() {
                if view.middleboxes[node as usize].implements(f) {
                    // Terminal: the packet is processed here.
                    state[node as usize] = 2;
                    stack.pop();
                    continue;
                }
                let successors = succ(node);
                if *child < successors.len() {
                    let next = successors[*child];
                    *child += 1;
                    match state[next as usize] {
                        0 => {
                            state[next as usize] = 1;
                            stack.push((next, 0));
                        }
                        1 if !reported[next as usize] => {
                            reported[next as usize] = true;
                            diags.push(VerifyError {
                                code: ErrorCode::SteeringLoop,
                                subject: format!("function({f})"),
                                detail: format!(
                                    "candidate sets for {f} cycle through \
m{next} without reaching an implementing middlebox — an IP-over-IP tunnel loop"
                                ),
                            });
                        }
                        _ => {}
                    }
                } else {
                    state[node as usize] = 2;
                    stack.pop();
                }
            }
        }
    }

    let Some(routes) = routes else { return };
    let budget = view.node_count.max(2);
    let mut walked: BTreeSet<(u32, u32)> = BTreeSet::new();
    for f in view.used_functions() {
        for m in 0..view.middleboxes.len() as u32 {
            if view.middleboxes[m as usize].implements(f) {
                continue;
            }
            let Some(c) = view.candidates_for(Point::Middlebox(m), f) else {
                continue;
            };
            for &s in &c.members {
                let Some(sb) = view.middleboxes.get(s as usize) else {
                    continue; // dangling member: reported elsewhere
                };
                let from = view.middleboxes[m as usize].router as u32;
                let to = sb.router as u32;
                if from == to || !walked.insert((from, to)) {
                    continue;
                }
                if let Walk::Looped(path) = walk_route(routes, from, to, budget) {
                    diags.push(VerifyError {
                        code: ErrorCode::SteeringLoop,
                        subject: format!("tunnel(m{m}->m{s})"),
                        detail: format!(
                            "routing loops the steering tunnel from n{from} to \
n{to} ({}); the declared edge never arrives",
                            path.iter()
                                .map(|n| format!("n{n}"))
                                .collect::<Vec<_>>()
                                .join("->")
                        ),
                    });
                }
            }
        }
    }
}

fn check_weights(view: &PlanView, diags: &mut Vec<VerifyError>) {
    let Some(w) = &view.weights else { return };

    let routed: f64 = w
        .columns
        .iter()
        .flat_map(|c| c.weights.iter())
        .map(|&(_, v)| if v.is_finite() { v.max(0.0) } else { 0.0 })
        .sum();
    if routed > 0.0 && !(w.lambda.is_finite() && w.lambda > 0.0) {
        diags.push(VerifyError {
            code: ErrorCode::CapacityExceeded,
            subject: "lambda".to_string(),
            detail: format!(
                "load factor λ = {} is not a positive finite number while \
traffic is routed",
                w.lambda
            ),
        });
    }

    let mut load = vec![0.0f64; view.middleboxes.len()];
    for col in &w.columns {
        let subject = format!(
            "{} policy(p{}) stage({})",
            col.point, col.policy, col.next_index
        );
        let mut total = 0.0f64;
        for &(m, v) in &col.weights {
            if v < -EPSILON {
                diags.push(VerifyError {
                    code: ErrorCode::NegativeWeight,
                    subject: subject.clone(),
                    detail: format!("weight for m{m} is negative ({v})"),
                });
            }
            if v.is_finite() {
                total += v.max(0.0);
            } else {
                total = f64::NAN;
                break;
            }
        }
        if total == 0.0 {
            // An all-zero *middlebox* transition column is legitimate LP
            // output: a box the optimum routes no traffic through still has
            // its (all-zero) transition variables installed, and the data
            // plane's hot-potato fallback covers stray flows. At a proxy or
            // gateway the column is the first hop of measured traffic —
            // flow conservation forces it nonzero, so all-zero means the
            // solution is broken and matching flows have no next hop.
            if matches!(col.point, Point::Proxy(_) | Point::Gateway(_)) {
                diags.push(VerifyError {
                    code: ErrorCode::ZeroWeightColumn,
                    subject: subject.clone(),
                    detail: "every candidate weight is zero at a first-hop \
decision point; flows matching this key have no valid next hop".to_string(),
                });
            }
        } else {
            // Normalized column must be a probability distribution.
            let norm: f64 = col
                .weights
                .iter()
                .map(|&(_, v)| v.max(0.0) / total)
                .sum();
            // NaN-safe: a non-finite deviation must also be rejected.
            let deviation = (norm - 1.0).abs();
            if deviation.is_nan() || deviation > EPSILON {
                diags.push(VerifyError {
                    code: ErrorCode::WeightSumMismatch,
                    subject: subject.clone(),
                    detail: format!(
                        "column does not normalize to 1 (sum = {norm}); weights \
contain non-finite entries or are inconsistent"
                    ),
                });
            }
        }

        // Every weighted box must be a candidate for the key's function.
        let function = view
            .policies
            .iter()
            .find(|p| p.policy == col.policy)
            .and_then(|p| p.chain.get(col.next_index as usize).copied());
        match function {
            None => diags.push(VerifyError {
                code: ErrorCode::WeightOutsideCandidates,
                subject: subject.clone(),
                detail: format!(
                    "policy p{} has no chain stage {}; the column targets a \
non-existent steering decision",
                    col.policy, col.next_index
                ),
            }),
            Some(f) => {
                let members: &[u32] = view
                    .candidates_for(col.point, f)
                    .map(|c| c.members.as_slice())
                    .unwrap_or(&[]);
                for &(m, v) in &col.weights {
                    if v.is_finite() && v > 0.0 && !members.contains(&m) {
                        diags.push(VerifyError {
                            code: ErrorCode::WeightOutsideCandidates,
                            subject: subject.clone(),
                            detail: format!(
                                "weight routes volume to m{m}, which is not in \
the candidate set M_x^e for {f}"
                            ),
                        });
                    }
                }
            }
        }

        for &(m, v) in &col.weights {
            if let Some(slot) = load.get_mut(m as usize) {
                if v.is_finite() {
                    *slot += v.max(0.0);
                }
            }
        }
    }

    if w.lambda.is_finite() && w.lambda > 0.0 {
        for (i, mbox) in view.middleboxes.iter().enumerate() {
            let bound = w.lambda * mbox.capacity;
            if load[i] > bound * (1.0 + EPSILON) + EPSILON {
                diags.push(VerifyError {
                    code: ErrorCode::CapacityExceeded,
                    subject: format!("mbox(m{i})"),
                    detail: format!(
                        "projected volume {} exceeds λ·C(x) = {} · {} = {bound}",
                        load[i], w.lambda, mbox.capacity
                    ),
                });
            }
        }
    }
}

fn check_addressing(view: &PlanView, diags: &mut Vec<VerifyError>) {
    for i in 0..view.stub_subnets.len() {
        for j in i + 1..view.stub_subnets.len() {
            let (a, b) = (view.stub_subnets[i], view.stub_subnets[j]);
            if a.overlaps(b) {
                diags.push(VerifyError {
                    code: ErrorCode::AddressCollision,
                    subject: format!("subnet({a})"),
                    detail: format!(
                        "stub subnets s{i} ({a}) and s{j} ({b}) overlap; source \
addresses — and with them the src|l label space — are ambiguous"
                    ),
                });
            }
        }
    }
    for (i, m) in view.middleboxes.iter().enumerate() {
        for (j, other) in view.middleboxes.iter().enumerate().skip(i + 1) {
            if m.addr == other.addr {
                diags.push(VerifyError {
                    code: ErrorCode::AddressCollision,
                    subject: format!("addr({})", m.addr),
                    detail: format!(
                        "middleboxes m{i} and m{j} share device address {}; \
steering towards one can deliver to the other",
                        m.addr
                    ),
                });
            }
        }
        for (s, subnet) in view.stub_subnets.iter().enumerate() {
            if subnet.contains(m.addr) {
                diags.push(VerifyError {
                    code: ErrorCode::AddressCollision,
                    subject: format!("addr({})", m.addr),
                    detail: format!(
                        "middlebox m{i}'s device address {} lies inside stub \
subnet s{s} ({subnet}); it aliases a host and corrupts the src|l label space",
                        m.addr
                    ),
                });
            }
        }
    }
}

fn check_attachments(view: &PlanView, diags: &mut Vec<VerifyError>) {
    for (i, m) in view.middleboxes.iter().enumerate() {
        if m.router >= view.node_count {
            diags.push(VerifyError {
                code: ErrorCode::DanglingAttachment,
                subject: format!("mbox(m{i})"),
                detail: format!(
                    "attaches to router n{} but the topology has only {} nodes",
                    m.router, view.node_count
                ),
            });
        }
    }
}

fn check_options(view: &PlanView, diags: &mut Vec<VerifyError>) {
    let Some(o) = view.options else { return };
    if o.flow_ttl == 0 {
        diags.push(VerifyError {
            code: ErrorCode::ZeroTtl,
            subject: "flow_ttl".to_string(),
            detail: "flow-cache TTL must be positive; zero expires every entry \
immediately".to_string(),
        });
    }
    if o.label_ttl == 0 {
        diags.push(VerifyError {
            code: ErrorCode::ZeroTtl,
            subject: "label_ttl".to_string(),
            detail: "label-table TTL must be positive; zero makes §III.E label \
switching unable to establish".to_string(),
        });
    }
    if o.flow_ttl > 0 && o.label_ttl > o.flow_ttl {
        diags.push(VerifyError {
            code: ErrorCode::LabelTtlExceedsFlowTtl,
            subject: "label_ttl".to_string(),
            detail: format!(
                "label-table TTL ({}) exceeds flow-cache TTL ({}): a stale \
⟨src|l, a⟩ binding can outlive the proxy's flow entry, so a reallocated label \
collides with the dead flow's path",
                o.label_ttl, o.flow_ttl
            ),
        });
    }
    if o.mtu < MIN_STEERABLE_MTU {
        diags.push(VerifyError {
            code: ErrorCode::MtuTooSmall,
            subject: "mtu".to_string(),
            detail: format!(
                "MTU {} cannot carry an IP-over-IP-encapsulated payload byte \
(minimum {MIN_STEERABLE_MTU})",
                o.mtu
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_policy::NetworkFunction::*;

    /// A minimal healthy view: 2 FWs + 1 IDS, one FW→IDS policy, two
    /// stubs, one gateway, full candidate sets.
    pub(crate) fn healthy() -> PlanView {
        let subnet = |i: u32| {
            Prefix::new(Ipv4Addr::from_octets([10, 0, (16 * i) as u8, 0]), 20)
        };
        let addr = |i: u32| Ipv4Addr::from_octets([172, 16, 0, 1 + i as u8]);
        let mbox = |fns: Vec<NetworkFunction>, router: usize, i: u32| MboxView {
            functions: fns,
            router,
            capacity: 1.0,
            available: true,
            addr: addr(i),
        };
        let mut candidates = Vec::new();
        for p in 0..2u32 {
            candidates.push(CandidateSet {
                point: Point::Proxy(p),
                function: Firewall,
                members: vec![0, 1],
            });
            candidates.push(CandidateSet {
                point: Point::Proxy(p),
                function: Ids,
                members: vec![2],
            });
        }
        candidates.push(CandidateSet {
            point: Point::Gateway(0),
            function: Firewall,
            members: vec![1, 0],
        });
        candidates.push(CandidateSet {
            point: Point::Gateway(0),
            function: Ids,
            members: vec![2],
        });
        for m in 0..2u32 {
            candidates.push(CandidateSet {
                point: Point::Middlebox(m),
                function: Ids,
                members: vec![2],
            });
        }
        candidates.push(CandidateSet {
            point: Point::Middlebox(2),
            function: Firewall,
            members: vec![0, 1],
        });
        PlanView {
            node_count: 10,
            stub_subnets: vec![subnet(0), subnet(1)],
            gateway_count: 1,
            middleboxes: vec![
                mbox(vec![Firewall], 0, 0),
                mbox(vec![Firewall], 1, 1),
                mbox(vec![Ids], 2, 2),
            ],
            policies: vec![ChainView {
                policy: 0,
                chain: vec![Firewall, Ids],
            }],
            k: vec![(Firewall, 2), (Ids, 1)],
            candidates,
            weights: None,
            options: Some(OptionsView {
                flow_ttl: 1_000,
                label_ttl: 1_000,
                mtu: 1500,
            }),
        }
    }

    #[test]
    fn healthy_plan_is_clean() {
        let report = verify_plan(&healthy());
        assert!(report.is_clean(), "{report}");
        assert!(!report.has_errors());
        assert_eq!(
            report.to_json().get("errors").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn report_is_sorted_and_displayable() {
        let mut view = healthy();
        view.options = Some(OptionsView {
            flow_ttl: 0,
            label_ttl: 0,
            mtu: 10,
        });
        view.policies.push(ChainView {
            policy: 1,
            chain: vec![Firewall, Ids, Firewall],
        });
        let report = verify_plan(&view);
        assert!(report.has_errors());
        let codes: Vec<_> = report.diagnostics().iter().map(|d| d.code).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted, "diagnostics must be code-sorted");
        let text = format!("{report}");
        assert!(text.contains("V001"));
        assert!(text.contains("V011"));
        assert!(text.contains("V014"));
    }

    #[test]
    fn error_codes_are_unique_and_stable() {
        let all = [
            ErrorCode::ChainRepeatsFunction,
            ErrorCode::FunctionUnimplemented,
            ErrorCode::UnreachableFunction,
            ErrorCode::CandidateShortfall,
            ErrorCode::SteeringLoop,
            ErrorCode::NegativeWeight,
            ErrorCode::ZeroWeightColumn,
            ErrorCode::WeightSumMismatch,
            ErrorCode::WeightOutsideCandidates,
            ErrorCode::CapacityExceeded,
            ErrorCode::ZeroTtl,
            ErrorCode::LabelTtlExceedsFlowTtl,
            ErrorCode::AddressCollision,
            ErrorCode::MtuTooSmall,
            ErrorCode::DanglingAttachment,
        ];
        let mut wire: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        wire.sort();
        wire.dedup();
        assert_eq!(wire.len(), all.len(), "codes must be unique");
        assert_eq!(ErrorCode::ChainRepeatsFunction.as_str(), "V001");
        assert_eq!(ErrorCode::DanglingAttachment.as_str(), "V015");
    }

    /// A next-hop table where every route works except the ones named in
    /// `oscillate`, which ping-pong between the two endpoints' first hops.
    struct LoopyRoutes {
        nodes: u32,
        /// Walks towards these destinations oscillate between the first
        /// two nodes instead of progressing.
        bad_dsts: Vec<u32>,
    }

    impl RouteView for LoopyRoutes {
        fn next_hop(&self, from: u32, dst: u32) -> Option<u32> {
            if from == dst || dst >= self.nodes {
                return None;
            }
            if self.bad_dsts.contains(&dst) {
                // n1 <-> n2 ping-pong, never reaching dst.
                return Some(if from == 1 { 2 } else { 1 });
            }
            Some(dst) // direct single-hop delivery otherwise
        }
        fn dist(&self, from: u32, dst: u32) -> Option<u32> {
            if from == dst {
                Some(0)
            } else {
                Some(1)
            }
        }
    }

    /// Regression (PR 10 satellite): a routing-induced loop on the path
    /// realizing a declared steering edge is invisible to the plan-only
    /// V005 pass but must be caught once the checker consumes the same
    /// next-hop view as the reach tier.
    #[test]
    fn routed_loop_invisible_to_plan_view_is_caught_by_verify_plan_routed() {
        let view = healthy();
        // healthy(): m2 (IDS @ n2) declares FW candidates m0 (n0), m1 (n1),
        // so the tunnel m2 -> m0 rides the routed path n2 -> n0. Poison
        // every route towards n0: walks ping-pong n1 <-> n2 forever.
        let routes = LoopyRoutes {
            nodes: 3,
            bad_dsts: vec![0],
        };
        assert!(
            verify_plan(&view).is_clean(),
            "the plan-only view cannot see the routed loop"
        );
        let routed = verify_plan_routed(&view, &routes);
        assert!(routed.has_code(ErrorCode::SteeringLoop), "{routed}");
        let diag = routed
            .diagnostics()
            .iter()
            .find(|d| d.code == ErrorCode::SteeringLoop)
            .unwrap();
        assert!(diag.subject.starts_with("tunnel("), "{}", diag.subject);

        // With healthy routing the routed pass agrees with the plan view.
        let ok = LoopyRoutes {
            nodes: 3,
            bad_dsts: vec![],
        };
        assert!(verify_plan_routed(&view, &ok).is_clean());
    }
}
