//! Pass 2 — symbolic reachability over the steering graph.
//!
//! [`verify_plan`](crate::verify_plan) proves *structural* invariants; this
//! module answers the question operators actually ask: *can any packet from
//! subnet A reach subnet B without traversing a firewall?* It compiles a
//! deployment — steering graph, routing next hops, policy table, LP weight
//! support — into symbolic transfer functions over **flow classes**
//! (five-tuple predicate sets: address prefixes × port intervals × a
//! protocol bitmask), then checks operator-declared assertions by
//! propagating whole classes through the enforcement path. Work scales
//! with the number of flow classes (tens) rather than flows (millions):
//! no packet is ever enumerated.
//!
//! Three assertion forms are supported (see [`Assertion`]): isolation
//! (`A ⇏ B`), waypointing (`A → B only via FW`) and TTL-bounded loop
//! freedom. Violations are reported as `R0xx` diagnostics
//! ([`ReachCode`]), each carrying the violating flow class, the
//! hop-by-hop path, and — whenever the ingress lies inside a stub — a
//! [`ReplayScenario`] that reproduces the verdict in the simulator.
//!
//! Beyond the converged plan, the checker models the **hazard states**
//! the structural passes cannot see (see [`HazardView`]): a pinned
//! `pinned_next` flow-cache entry outliving a `fail_middlebox` (the stale
//! window between failure and the next epoch's re-steer), and label-table
//! TTL skew. Hazard findings lower into replay scripts that fail the box
//! mid-scenario, so the static verdict is confirmed by the data plane.
//!
//! Everything here is deterministic by construction: ordered containers
//! only (`BTreeSet`, sorted `Vec`s — enforced by `sdm-lint`'s
//! `set-iteration-order` rule), findings sorted and deduplicated exactly
//! like the `V0xx` report.

use std::collections::BTreeSet;
use std::fmt;

use sdm_netsim::{FiveTuple, Ipv4Addr, Prefix};
use sdm_policy::{NetworkFunction, TrafficDescriptor};
use sdm_util::json::Json;

use crate::plan::{CandidateSet, PlanView, Point, WeightsView};
use crate::witness::{protocol_from_number, ReplayScenario, ReplayStep, StepExpect, WitnessFlow};

/// The full inclusive port interval (the `*` port match).
const FULL_PORT_RANGE: (u16, u16) = (0, u16::MAX);

// ---------------------------------------------------------------------------
// Routing next-hop view
// ---------------------------------------------------------------------------

/// A checker-consumable view of routing: the per-hop forwarding function
/// every router applies. Both the dense all-pairs tables
/// ([`sdm_topology::RoutingTables`]) and the on-demand per-destination
/// rows ([`sdm_topology::DestRoutes`]) implement it, so the same checker
/// runs byte-exact on the campus topology and memory-proportional on the
/// ~21k-node hierarchical one.
pub trait RouteView {
    /// The node `from` forwards to when routing towards `dst`, or `None`
    /// when `dst` is unreachable (or equals `from`).
    fn next_hop(&self, from: u32, dst: u32) -> Option<u32>;
    /// Shortest-path cost, `None` when unreachable.
    fn dist(&self, from: u32, dst: u32) -> Option<u32>;
}

impl RouteView for sdm_topology::RoutingTables {
    fn next_hop(&self, from: u32, dst: u32) -> Option<u32> {
        sdm_topology::RoutingTables::next_hop(
            self,
            sdm_topology::NodeId::from_index(from as usize),
            sdm_topology::NodeId::from_index(dst as usize),
        )
        .map(|n| n.index() as u32)
    }
    fn dist(&self, from: u32, dst: u32) -> Option<u32> {
        sdm_topology::RoutingTables::dist(
            self,
            sdm_topology::NodeId::from_index(from as usize),
            sdm_topology::NodeId::from_index(dst as usize),
        )
    }
}

impl RouteView for sdm_topology::DestRoutes<'_> {
    fn next_hop(&self, from: u32, dst: u32) -> Option<u32> {
        sdm_topology::DestRoutes::next_hop(
            self,
            sdm_topology::NodeId::from_index(from as usize),
            sdm_topology::NodeId::from_index(dst as usize),
        )
        .map(|n| n.index() as u32)
    }
    fn dist(&self, from: u32, dst: u32) -> Option<u32> {
        sdm_topology::DestRoutes::dist(
            self,
            sdm_topology::NodeId::from_index(from as usize),
            sdm_topology::NodeId::from_index(dst as usize),
        )
    }
}

/// Result of following next hops from one router to another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Walk {
    /// Arrived; the nodes visited, endpoints inclusive.
    Arrived(Vec<u32>),
    /// A node was revisited before arrival — a forwarding micro-loop.
    /// Carries the walk up to and including the repeated node.
    Looped(Vec<u32>),
    /// Some hop had no route towards the destination.
    Unreachable,
}

/// Follows `routes` hop by hop from `from` to `to`, bounded by `budget`
/// hops. This is the **single** next-hop traversal shared by the plan
/// verifier's steering-loop pass (V005) and the reach checker, so the two
/// tiers can never disagree about what the routed path is.
pub fn walk_route(routes: &dyn RouteView, from: u32, to: u32, budget: usize) -> Walk {
    let mut path = vec![from];
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    seen.insert(from);
    let mut at = from;
    while at != to {
        let Some(next) = routes.next_hop(at, to) else {
            return Walk::Unreachable;
        };
        path.push(next);
        if !seen.insert(next) {
            return Walk::Looped(path);
        }
        if path.len() > budget {
            return Walk::Looped(path);
        }
        at = next;
    }
    Walk::Arrived(path)
}

// ---------------------------------------------------------------------------
// Flow classes: the symbolic packet domain
// ---------------------------------------------------------------------------

/// A set of IANA protocol numbers as a 256-bit mask. Closed under the
/// boolean operations the class algebra needs; never enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProtoSet([u64; 4]);

impl ProtoSet {
    /// Every protocol.
    pub const ANY: ProtoSet = ProtoSet([u64::MAX; 4]);

    /// The empty set.
    pub const EMPTY: ProtoSet = ProtoSet([0; 4]);

    /// The singleton set `{n}`.
    pub fn single(n: u8) -> ProtoSet {
        let mut words = [0u64; 4];
        words[(n >> 6) as usize] = 1u64 << (n & 63);
        ProtoSet(words)
    }

    /// True if `n` is in the set.
    pub fn contains(self, n: u8) -> bool {
        self.0[(n >> 6) as usize] >> (n & 63) & 1 == 1
    }

    /// Set intersection.
    pub fn intersect(self, other: ProtoSet) -> ProtoSet {
        ProtoSet([
            self.0[0] & other.0[0],
            self.0[1] & other.0[1],
            self.0[2] & other.0[2],
            self.0[3] & other.0[3],
        ])
    }

    /// Set difference `self \ other`.
    pub fn subtract(self, other: ProtoSet) -> ProtoSet {
        ProtoSet([
            self.0[0] & !other.0[0],
            self.0[1] & !other.0[1],
            self.0[2] & !other.0[2],
            self.0[3] & !other.0[3],
        ])
    }

    /// True if no protocol is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == [0; 4]
    }

    /// A representative member, preferring TCP for natural witnesses.
    pub fn representative(self) -> Option<u8> {
        if self.contains(6) {
            return Some(6);
        }
        for (w, word) in self.0.iter().enumerate() {
            if *word != 0 {
                return Some((w as u8) << 6 | word.trailing_zeros() as u8);
            }
        }
        None
    }
}

impl fmt::Display for ProtoSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ProtoSet::ANY {
            return f.write_str("*");
        }
        if self.is_empty() {
            return f.write_str("none");
        }
        match self.representative() {
            Some(n) if ProtoSet::single(n) == *self => match n {
                6 => f.write_str("tcp"),
                17 => f.write_str("udp"),
                other => write!(f, "proto{other}"),
            },
            _ => f.write_str("set"),
        }
    }
}

/// A symbolic set of five-tuples: the product of source/destination
/// prefixes, inclusive port intervals and a protocol set. The checker's
/// unit of work — classes are intersected, subtracted and steered, never
/// enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowClass {
    /// Source address prefix.
    pub src: Prefix,
    /// Destination address prefix.
    pub dst: Prefix,
    /// Inclusive source-port interval.
    pub src_ports: (u16, u16),
    /// Inclusive destination-port interval.
    pub dst_ports: (u16, u16),
    /// Allowed protocols.
    pub protos: ProtoSet,
}

impl FlowClass {
    /// The universe: every five-tuple.
    pub fn any() -> FlowClass {
        FlowClass {
            src: Prefix::ANY,
            dst: Prefix::ANY,
            src_ports: FULL_PORT_RANGE,
            dst_ports: FULL_PORT_RANGE,
            protos: ProtoSet::ANY,
        }
    }

    /// All traffic from `src` to `dst`, any ports, any protocol.
    pub fn between(src: Prefix, dst: Prefix) -> FlowClass {
        FlowClass {
            src,
            dst,
            ..FlowClass::any()
        }
    }

    /// The class matched by a policy descriptor. `PortMatch`/`ProtoMatch`
    /// embed exactly into intervals and protocol sets, so this is lossless.
    pub fn from_descriptor(d: &TrafficDescriptor) -> FlowClass {
        FlowClass {
            src: d.src,
            dst: d.dst,
            src_ports: port_interval(d.src_port),
            dst_ports: port_interval(d.dst_port),
            protos: proto_set(d.proto),
        }
    }

    /// The intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &FlowClass) -> Option<FlowClass> {
        let src = prefix_intersect(self.src, other.src)?;
        let dst = prefix_intersect(self.dst, other.dst)?;
        let src_ports = interval_intersect(self.src_ports, other.src_ports)?;
        let dst_ports = interval_intersect(self.dst_ports, other.dst_ports)?;
        let protos = self.protos.intersect(other.protos);
        if protos.is_empty() {
            return None;
        }
        Some(FlowClass {
            src,
            dst,
            src_ports,
            dst_ports,
            protos,
        })
    }

    /// The set difference `self \ other` as a disjoint union of classes
    /// (the standard difference-of-products decomposition: peel one field
    /// at a time, keeping the remainder wildcarded on later fields). The
    /// result has at most `2·32 + 2·2 + 1` pieces and is sorted, so
    /// downstream reports are deterministic.
    pub fn subtract(&self, other: &FlowClass) -> Vec<FlowClass> {
        let Some(_) = self.intersect(other) else {
            return vec![*self];
        };
        let mut out: Vec<FlowClass> = Vec::new();
        // Field 1: src addresses outside other.src.
        for p in prefix_subtract(self.src, other.src) {
            out.push(FlowClass { src: p, ..*self });
        }
        let src = match prefix_intersect(self.src, other.src) {
            Some(p) => p,
            None => {
                out.sort();
                return out;
            }
        };
        // Field 2: dst addresses outside other.dst (src already narrowed).
        for p in prefix_subtract(self.dst, other.dst) {
            out.push(FlowClass { src, dst: p, ..*self });
        }
        let Some(dst) = prefix_intersect(self.dst, other.dst) else {
            out.sort();
            return out;
        };
        // Field 3: source ports.
        for iv in interval_subtract(self.src_ports, other.src_ports) {
            out.push(FlowClass {
                src,
                dst,
                src_ports: iv,
                ..*self
            });
        }
        let Some(src_ports) = interval_intersect(self.src_ports, other.src_ports) else {
            out.sort();
            return out;
        };
        // Field 4: destination ports.
        for iv in interval_subtract(self.dst_ports, other.dst_ports) {
            out.push(FlowClass {
                src,
                dst,
                src_ports,
                dst_ports: iv,
                ..*self
            });
        }
        let Some(dst_ports) = interval_intersect(self.dst_ports, other.dst_ports) else {
            out.sort();
            return out;
        };
        // Field 5: protocols.
        let protos = self.protos.subtract(other.protos);
        if !protos.is_empty() {
            out.push(FlowClass {
                src,
                dst,
                src_ports,
                dst_ports,
                protos,
            });
        }
        out.sort();
        out
    }

    /// A concrete member of the class, used to seed witnesses. The source
    /// and destination pick the first *host* address of their prefixes
    /// (network base + 1, matching the simulator's host numbering) so a
    /// class aligned to a stub subnet yields an injectable flow.
    pub fn representative(&self) -> FiveTuple {
        FiveTuple {
            src: representative_addr(self.src),
            dst: representative_addr(self.dst),
            src_port: self.src_ports.0,
            dst_port: self.dst_ports.0,
            proto: protocol_from_number(self.protos.representative().unwrap_or(6)),
        }
    }
}

impl fmt::Display for FlowClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show_prefix = |p: Prefix| {
            if p.is_any() {
                "*".to_string()
            } else {
                p.to_string()
            }
        };
        write!(
            f,
            "[src={} dst={} sport={} dport={} proto={}]",
            show_prefix(self.src),
            show_prefix(self.dst),
            show_interval(self.src_ports),
            show_interval(self.dst_ports),
            self.protos
        )
    }
}

fn show_interval(iv: (u16, u16)) -> String {
    if iv == FULL_PORT_RANGE {
        "*".to_string()
    } else if iv.0 == iv.1 {
        format!("{}", iv.0)
    } else {
        format!("{}-{}", iv.0, iv.1)
    }
}

fn representative_addr(p: Prefix) -> Ipv4Addr {
    if p.len() >= 31 {
        p.addr()
    } else {
        Ipv4Addr(p.addr().0 + 1)
    }
}

fn port_interval(m: sdm_policy::PortMatch) -> (u16, u16) {
    match m {
        sdm_policy::PortMatch::Any => FULL_PORT_RANGE,
        sdm_policy::PortMatch::Exact(p) => (p, p),
        sdm_policy::PortMatch::Range(lo, hi) => (lo, hi),
    }
}

fn proto_set(m: sdm_policy::ProtoMatch) -> ProtoSet {
    match m {
        sdm_policy::ProtoMatch::Any => ProtoSet::ANY,
        sdm_policy::ProtoMatch::Is(p) => ProtoSet::single(p.number()),
    }
}

fn prefix_intersect(a: Prefix, b: Prefix) -> Option<Prefix> {
    if !a.overlaps(b) {
        return None;
    }
    Some(if a.len() >= b.len() { a } else { b })
}

/// `a \ b` as a disjoint set of prefixes: empty when `a ⊆ b`, `{a}` when
/// disjoint, otherwise the sibling prefixes peeled off while descending
/// from `a` to `b`.
fn prefix_subtract(a: Prefix, b: Prefix) -> Vec<Prefix> {
    if !a.overlaps(b) {
        return vec![a];
    }
    if a.is_subset_of(b) {
        return Vec::new();
    }
    // b is a strict subset of a: peel siblings.
    let mut out = Vec::new();
    let mut cur = a;
    while cur.len() < b.len() {
        let child_len = cur.len() + 1;
        let bit = 1u32 << (32 - child_len as u32);
        let low = Prefix::new(cur.addr(), child_len);
        let high = Prefix::new(Ipv4Addr(cur.addr().0 | bit), child_len);
        if b.addr().0 & bit == 0 {
            out.push(high);
            cur = low;
        } else {
            out.push(low);
            cur = high;
        }
    }
    out.sort_by_key(|p| (p.addr().0, p.len()));
    out
}

fn interval_intersect(a: (u16, u16), b: (u16, u16)) -> Option<(u16, u16)> {
    let lo = a.0.max(b.0);
    let hi = a.1.min(b.1);
    if lo <= hi {
        Some((lo, hi))
    } else {
        None
    }
}

fn interval_subtract(a: (u16, u16), b: (u16, u16)) -> Vec<(u16, u16)> {
    if b.1 < a.0 || b.0 > a.1 {
        return vec![a];
    }
    let mut out = Vec::new();
    if b.0 > a.0 {
        out.push((a.0, b.0 - 1));
    }
    if b.1 < a.1 {
        out.push((b.1 + 1, a.1));
    }
    out
}

// ---------------------------------------------------------------------------
// Assertions
// ---------------------------------------------------------------------------

/// An operator-declared safety assertion over the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assertion {
    /// `A ⇏ B`: no packet sourced in `src` may be delivered to `dst`.
    Isolated {
        /// Source address space.
        src: Prefix,
        /// Destination address space.
        dst: Prefix,
    },
    /// `A → B only via f`: every delivered packet from `src` to `dst`
    /// must traverse a middlebox implementing `via`.
    Waypoint {
        /// Source address space.
        src: Prefix,
        /// Destination address space.
        dst: Prefix,
        /// The function that must be on the path.
        via: NetworkFunction,
    },
    /// Every enforcement path terminates within `ttl` router hops —
    /// TTL-bounded loop freedom.
    LoopFree {
        /// The hop budget (the IP TTL the operator configures).
        ttl: u32,
    },
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = |p: Prefix| {
            if p.is_any() {
                "*".to_string()
            } else {
                p.to_string()
            }
        };
        match self {
            Assertion::Isolated { src, dst } => {
                write!(f, "isolate {} -> {}", show(*src), show(*dst))
            }
            Assertion::Waypoint { src, dst, via } => {
                write!(f, "waypoint {} -> {} via {}", show(*src), show(*dst), via)
            }
            Assertion::LoopFree { ttl } => write!(f, "loop-free ttl {ttl}"),
        }
    }
}

/// Parses an assertion file: one assertion per line, `#` comments and
/// blank lines ignored. The grammar matches [`Assertion`]'s `Display`:
///
/// ```text
/// isolate 10.0.0.0/20 -> 10.0.48.0/20
/// waypoint 10.0.0.0/20 -> * via FW
/// loop-free ttl 64
/// ```
pub fn parse_assertions(text: &str) -> Result<Vec<Assertion>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: '{line}'", lineno + 1);
        let words: Vec<&str> = line.split_whitespace().collect();
        let parsed = match words.as_slice() {
            ["isolate", src, "->", dst] => Assertion::Isolated {
                src: parse_prefix(src).map_err(|m| err(&m))?,
                dst: parse_prefix(dst).map_err(|m| err(&m))?,
            },
            ["waypoint", src, "->", dst, "via", via] => Assertion::Waypoint {
                src: parse_prefix(src).map_err(|m| err(&m))?,
                dst: parse_prefix(dst).map_err(|m| err(&m))?,
                via: NetworkFunction::from_abbrev(via)
                    .ok_or_else(|| err("unknown network function"))?,
            },
            ["loop-free", "ttl", ttl] => Assertion::LoopFree {
                ttl: ttl.parse().map_err(|_| err("bad ttl"))?,
            },
            _ => return Err(err("unrecognized assertion")),
        };
        out.push(parsed);
    }
    Ok(out)
}

fn parse_prefix(s: &str) -> Result<Prefix, String> {
    if s == "*" {
        return Ok(Prefix::ANY);
    }
    s.parse()
        .map_err(|_| format!("'{s}' is not an address prefix"))
}

// ---------------------------------------------------------------------------
// The reach view: what the checker consumes
// ---------------------------------------------------------------------------

/// One policy-table rule in symbolic form, in first-match order.
#[derive(Debug, Clone)]
pub struct RuleView {
    /// The policy id.
    pub policy: u32,
    /// The class of five-tuples the rule matches.
    pub class: FlowClass,
    /// The enforcement chain (empty = permit).
    pub chain: Vec<NetworkFunction>,
}

/// The steering strategy, as far as symbolic *support* is concerned: which
/// candidate boxes can a flow of a class be sent to at a decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyView {
    /// Always the nearest candidate (`members[0]`).
    HotPotato,
    /// Sticky hash over the whole candidate set: any member.
    Random,
    /// The LP solution's positive-weight column members; hot-potato
    /// fallback when no column is installed or it is all-zero.
    LoadBalanced,
}

/// The hazard states to verify in addition to the converged plan.
#[derive(Debug, Clone, Default)]
pub struct HazardView {
    /// The weight columns that were live *before* the most recent
    /// activation — the state stale pinned flows were steered under.
    /// `None` means the current weights are also the pre-swap state.
    pub prev_weights: Option<WeightsView>,
    /// Middleboxes failed in the current state (sorted). Flows pinned
    /// before the failure still carry `pinned_next` entries towards them.
    pub failed_now: Vec<u32>,
}

/// The complete input to [`check_assertions`]: the structural plan view
/// plus the symbolic policy table, ingress attachment points, steering
/// strategy and optional hazard state.
#[derive(Debug, Clone)]
pub struct ReachView {
    /// The structural plan (middleboxes, candidate sets, weights,
    /// options) shared with [`crate::verify_plan`].
    pub plan: PlanView,
    /// The policy table in first-match order.
    pub rules: Vec<RuleView>,
    /// Router node of each stub network's edge router (`stub_routers[s]`
    /// is where proxy `s` sits).
    pub stub_routers: Vec<u32>,
    /// Router node of each gateway.
    pub gateway_routers: Vec<u32>,
    /// The enterprise address space: destinations inside it that lie in
    /// no stub subnet are unroutable; destinations outside it exit via a
    /// gateway.
    pub enterprise: Prefix,
    /// The steering strategy in force.
    pub strategy: StrategyView,
    /// Hazard state to verify, when present.
    pub hazards: Option<HazardView>,
}

impl ReachView {
    fn candidates_for(&self, point: Point, f: NetworkFunction) -> Option<&CandidateSet> {
        self.plan
            .candidates
            .iter()
            .find(|c| c.point == point && c.function == f)
    }

    /// The set of middleboxes a fresh flow can be steered to at `point`
    /// for chain stage `next_index` of `policy` (function `f`), under
    /// `weights`. Sorted; empty when the decision blackholes.
    fn support(
        &self,
        point: Point,
        policy: u32,
        next_index: u16,
        f: NetworkFunction,
        weights: Option<&WeightsView>,
        include_failed: bool,
    ) -> Vec<u32> {
        let members: Vec<u32> = self
            .candidates_for(point, f)
            .map(|c| c.members.clone())
            .unwrap_or_default();
        let alive = |m: &u32| {
            include_failed
                || self
                    .plan
                    .middleboxes
                    .get(*m as usize)
                    .is_some_and(|mb| mb.available)
        };
        let hot_potato = || -> Vec<u32> { members.iter().copied().filter(alive).take(1).collect() };
        let mut out = match self.strategy {
            StrategyView::HotPotato => hot_potato(),
            StrategyView::Random => members.iter().copied().filter(alive).collect(),
            StrategyView::LoadBalanced => {
                let col = weights.and_then(|w| {
                    w.columns.iter().find(|c| {
                        c.point == point && c.policy == policy && c.next_index == next_index
                    })
                });
                let positive: Vec<u32> = col
                    .map(|c| {
                        c.weights
                            .iter()
                            .filter(|&&(m, v)| v > 0.0 && members.contains(&m))
                            .map(|&(m, _)| m)
                            .filter(alive)
                            .collect()
                    })
                    .unwrap_or_default();
                if positive.is_empty() {
                    hot_potato()
                } else {
                    positive
                }
            }
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    /// First-match compilation of `class` against the policy table: the
    /// disjoint pieces of `class`, each tagged with the rule that governs
    /// it (`None` = default permit). Pieces and order are deterministic.
    fn peel(&self, class: FlowClass) -> Vec<(FlowClass, Option<&RuleView>)> {
        let mut remaining = vec![class];
        let mut out: Vec<(FlowClass, Option<&RuleView>)> = Vec::new();
        for rule in &self.rules {
            let mut next_remaining = Vec::new();
            for piece in remaining {
                if let Some(hit) = piece.intersect(&rule.class) {
                    out.push((hit, Some(rule)));
                }
                next_remaining.extend(piece.subtract(&rule.class));
            }
            remaining = next_remaining;
            if remaining.is_empty() {
                break;
            }
        }
        for piece in remaining {
            out.push((piece, None));
        }
        out
    }

    /// Splits `class` by where its sources enter the network: one piece
    /// per overlapping stub proxy, plus (if any source space is left
    /// outside every stub) the gateway ingress for external sources.
    fn ingresses(&self, class: FlowClass) -> Vec<(Ingress, FlowClass)> {
        let mut out = Vec::new();
        let mut external_src = vec![class.src];
        for (s, subnet) in self.plan.stub_subnets.iter().enumerate() {
            if let Some(src) = prefix_intersect(class.src, *subnet) {
                // Traffic that stays inside the subnet never crosses the
                // stub's proxy — it is switched locally, outside the
                // steering fabric this checker models — so peel the
                // stub's own subnet off the destination space.
                for dst in prefix_subtract(class.dst, *subnet) {
                    out.push((
                        Ingress::Stub(s as u32),
                        FlowClass { src, dst, ..class },
                    ));
                }
            }
            external_src = external_src
                .into_iter()
                .flat_map(|p| prefix_subtract(p, *subnet))
                .collect();
        }
        for src in external_src {
            // Sources inside the enterprise but in no stub don't exist;
            // everything else enters through the gateways.
            if src.is_subset_of(self.enterprise) {
                continue;
            }
            for (g, _) in self.gateway_routers.iter().enumerate() {
                out.push((Ingress::Gateway(g as u32), FlowClass { src, ..class }));
            }
        }
        out
    }

    /// Classifies where the destination space of `class` can be
    /// delivered: internal stubs, the external world, or nowhere.
    fn egresses(&self, class: FlowClass) -> Vec<(Egress, FlowClass)> {
        let mut out = Vec::new();
        let mut rest = vec![class.dst];
        for (s, subnet) in self.plan.stub_subnets.iter().enumerate() {
            if let Some(dst) = prefix_intersect(class.dst, *subnet) {
                out.push((Egress::Stub(s as u32), FlowClass { dst, ..class }));
            }
            rest = rest
                .into_iter()
                .flat_map(|p| prefix_subtract(p, *subnet))
                .collect();
        }
        for dst in rest {
            if dst.is_subset_of(self.enterprise) {
                // Enterprise space with no stub behind it: unroutable.
                continue;
            }
            if !self.gateway_routers.is_empty() {
                out.push((Egress::External, FlowClass { dst, ..class }));
            }
        }
        out
    }

    fn ingress_router(&self, ingress: Ingress) -> Option<u32> {
        match ingress {
            Ingress::Stub(s) => self.stub_routers.get(s as usize).copied(),
            Ingress::Gateway(g) => self.gateway_routers.get(g as usize).copied(),
        }
    }

    fn ingress_point(&self, ingress: Ingress) -> Point {
        match ingress {
            Ingress::Stub(s) => Point::Proxy(s),
            Ingress::Gateway(g) => Point::Gateway(g),
        }
    }
}

/// Where a flow class enters enforcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ingress {
    Stub(u32),
    Gateway(u32),
}

impl fmt::Display for Ingress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ingress::Stub(s) => write!(f, "proxy(s{s})"),
            Ingress::Gateway(g) => write!(f, "gw({g})"),
        }
    }
}

/// Where a flow class leaves the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Egress {
    Stub(u32),
    External,
}

// ---------------------------------------------------------------------------
// Findings and report
// ---------------------------------------------------------------------------

/// Every violation class the reach checker can report, with a stable
/// wire code (`R0xx`). Codes are part of the JSON report format; add new
/// classes at the end and never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReachCode {
    /// An `isolate A -> B` assertion is refuted: a flow class from `A` is
    /// delivered to `B`.
    IsolationBreach,
    /// A `waypoint A -> B via f` assertion is refuted: a flow class is
    /// delivered without any middlebox implementing `f` on its path.
    WaypointBypass,
    /// A `loop-free ttl N` assertion is refuted: an enforcement path
    /// loops, or exceeds the hop budget before delivery.
    TtlExceeded,
    /// A flow class blackholes: a steering stage on its path has no
    /// available candidate, so matching packets are dropped, not
    /// enforced.
    BlackholeClass,
    /// Hazard: a flow pinned (`pinned_next`) before a weight swap or
    /// middlebox failure still targets a box that is now failed — the
    /// stale-flow-cache window between failure and re-steer.
    StalePinnedFlow,
    /// Hazard: the label-table TTL exceeds the flow-cache TTL for a
    /// label-switched class, so a stale `⟨src|l, a⟩` binding can outlive
    /// its flow entry and collide with a reallocated label.
    LabelTtlSkew,
}

impl ReachCode {
    /// The stable wire code (`R0xx`).
    pub fn as_str(self) -> &'static str {
        match self {
            ReachCode::IsolationBreach => "R001",
            ReachCode::WaypointBypass => "R002",
            ReachCode::TtlExceeded => "R003",
            ReachCode::BlackholeClass => "R004",
            ReachCode::StalePinnedFlow => "R005",
            ReachCode::LabelTtlSkew => "R006",
        }
    }

    /// Human-readable name matching the enum variant.
    pub fn name(self) -> &'static str {
        match self {
            ReachCode::IsolationBreach => "isolation-breach",
            ReachCode::WaypointBypass => "waypoint-bypass",
            ReachCode::TtlExceeded => "ttl-exceeded",
            ReachCode::BlackholeClass => "blackhole-class",
            ReachCode::StalePinnedFlow => "stale-pinned-flow",
            ReachCode::LabelTtlSkew => "label-ttl-skew",
        }
    }
}

impl fmt::Display for ReachCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.as_str(), self.name())
    }
}

/// The witness attached to a finding: the violating flow class, the
/// hop-by-hop path that exhibits it, and (when the ingress is a stub
/// proxy) a simulator replay script.
#[derive(Debug, Clone, PartialEq)]
pub struct ReachWitness {
    /// The violating flow class.
    pub class: FlowClass,
    /// Human-readable hop-by-hop path: steer points, middleboxes and the
    /// router nodes walked between them.
    pub path: Vec<String>,
    /// The executable counterexample, when one can be injected.
    pub scenario: Option<ReplayScenario>,
}

/// One reach-tier finding.
#[derive(Debug, Clone, PartialEq)]
pub struct ReachFinding {
    /// The violation class.
    pub code: ReachCode,
    /// The assertion (or hazard) the finding is about.
    pub subject: String,
    /// Human-readable explanation.
    pub detail: String,
    /// The witness, when the violation is exhibitable.
    pub witness: Option<ReachWitness>,
}

impl fmt::Display for ReachFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.code, self.subject, self.detail)?;
        if let Some(w) = &self.witness {
            write!(f, " [witness {} via {}]", w.class, w.path.join(" "))?;
        }
        Ok(())
    }
}

/// Per-assertion verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssertionResult {
    /// The assertion, rendered in the input grammar.
    pub assertion: String,
    /// True when no finding refutes it.
    pub holds: bool,
    /// Number of flow classes examined while checking it.
    pub classes_checked: usize,
}

/// The checker's result: per-assertion verdicts plus every finding,
/// sorted deterministically by (code, subject, detail).
#[derive(Debug, Clone, Default)]
pub struct ReachReport {
    /// One entry per input assertion, in input order.
    pub results: Vec<AssertionResult>,
    /// Every finding, sorted and deduplicated.
    pub findings: Vec<ReachFinding>,
    /// Total flow classes examined.
    pub flow_classes: usize,
}

impl ReachReport {
    /// True if every assertion holds and no hazard fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// True if a finding with this code is present.
    pub fn has_code(&self, code: ReachCode) -> bool {
        self.findings.iter().any(|f| f.code == code)
    }

    /// Every replayable scenario in the report, in finding order.
    pub fn scenarios(&self) -> Vec<ReplayScenario> {
        self.findings
            .iter()
            .filter_map(|f| f.witness.as_ref().and_then(|w| w.scenario.clone()))
            .collect()
    }

    /// The JSON report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("verifier", Json::from("sdm-reach")),
            ("flow_classes", Json::from(self.flow_classes)),
            ("violations", Json::from(self.findings.len())),
            (
                "assertions",
                Json::Arr(
                    self.results
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("assertion", Json::from(r.assertion.as_str())),
                                ("holds", Json::Bool(r.holds)),
                                ("classes_checked", Json::from(r.classes_checked)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "findings",
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|d| {
                            let witness = match &d.witness {
                                None => Json::Null,
                                Some(w) => Json::obj([
                                    ("class", Json::from(w.class.to_string())),
                                    (
                                        "path",
                                        Json::Arr(
                                            w.path
                                                .iter()
                                                .map(|h| Json::from(h.as_str()))
                                                .collect(),
                                        ),
                                    ),
                                    (
                                        "scenario",
                                        w.scenario
                                            .as_ref()
                                            .map(ReplayScenario::to_json)
                                            .unwrap_or(Json::Null),
                                    ),
                                ]),
                            };
                            Json::obj([
                                ("code", Json::from(d.code.as_str())),
                                ("name", Json::from(d.code.name())),
                                ("subject", Json::from(d.subject.as_str())),
                                ("detail", Json::from(d.detail.as_str())),
                                ("witness", witness),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for ReachReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "reach: {} assertion(s), {} flow class(es), {} finding(s)",
            self.results.len(),
            self.flow_classes,
            self.findings.len()
        )?;
        for r in &self.results {
            writeln!(
                f,
                "  {} {} ({} classes)",
                if r.holds { "HOLDS  " } else { "REFUTED" },
                r.assertion,
                r.classes_checked
            )?;
        }
        for d in &self.findings {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

/// A fully-expanded enforcement path for one flow class from one ingress:
/// the steering stages chosen (deterministically, the first support
/// member at each stage) and the routed node walks between them.
struct PathTrace {
    /// Middlebox visited at each chain stage.
    stages: Vec<u32>,
    /// Human-readable hops.
    hops: Vec<String>,
    /// Total router hops walked.
    router_hops: usize,
    /// The union of every stage's *support* (all boxes the flow could
    /// have been sent to under the strategy), for sound bypass claims.
    support_union: Vec<u32>,
}

enum TraceOutcome {
    /// Path reaches the egress router.
    Completed(PathTrace),
    /// A steering stage had no available candidate.
    Blackhole { stage: NetworkFunction },
    /// A routed walk between two stage routers looped.
    RoutedLoop { hops: Vec<String> },
    /// Routing has no path between two stage routers.
    NoRoute,
}

/// Checks `assertions` against the deployment and returns the sorted
/// report. `routes` must be the same next-hop view the simulator's
/// routers use ([`RouteView`]).
pub fn check_assertions(
    view: &ReachView,
    routes: &dyn RouteView,
    assertions: &[Assertion],
) -> ReachReport {
    let mut findings: Vec<ReachFinding> = Vec::new();
    let mut results: Vec<AssertionResult> = Vec::new();
    let mut flow_classes = 0usize;

    for assertion in assertions {
        let before = findings.len();
        let checked = match assertion {
            Assertion::Isolated { src, dst } => {
                check_isolation(view, routes, *src, *dst, assertion, &mut findings)
            }
            Assertion::Waypoint { src, dst, via } => {
                check_waypoint(view, routes, *src, *dst, *via, assertion, &mut findings)
            }
            Assertion::LoopFree { ttl } => {
                check_loop_free(view, routes, *ttl, assertion, &mut findings)
            }
        };
        flow_classes += checked;
        results.push(AssertionResult {
            assertion: assertion.to_string(),
            holds: findings.len() == before,
            classes_checked: checked,
        });
    }

    check_hazards(view, routes, &mut findings);

    findings.sort_by(|a, b| {
        (a.code, &a.subject, &a.detail).cmp(&(b.code, &b.subject, &b.detail))
    });
    findings.dedup_by(|a, b| a.code == b.code && a.subject == b.subject && a.detail == b.detail);
    ReachReport {
        results,
        findings,
        flow_classes,
    }
}

/// Traces one flow class from `ingress` through its chain to
/// `egress_router`, following the strategy's first support member at each
/// stage and the routed walk between stage routers.
fn trace_path(
    view: &ReachView,
    routes: &dyn RouteView,
    ingress: Ingress,
    rule: Option<&RuleView>,
    egress_router: u32,
) -> TraceOutcome {
    let budget = view.plan.node_count.max(2);
    let chain: &[NetworkFunction] = rule.map(|r| r.chain.as_slice()).unwrap_or(&[]);
    let policy = rule.map(|r| r.policy).unwrap_or(0);
    let weights = view.plan.weights.as_ref();

    let Some(mut at_router) = view.ingress_router(ingress) else {
        return TraceOutcome::NoRoute;
    };
    let mut point = view.ingress_point(ingress);
    let mut hops: Vec<String> = vec![format!("{ingress}@n{at_router}")];
    let mut stages: Vec<u32> = Vec::new();
    let mut support_union: BTreeSet<u32> = BTreeSet::new();
    let mut router_hops = 0usize;

    let mut stage_index = 0usize;
    while stage_index < chain.len() {
        let f = chain[stage_index];
        // A box implementing the next function applies it locally.
        if let Point::Middlebox(m) = point {
            if view.plan.middleboxes[m as usize].functions.contains(&f) {
                hops.push(format!("apply({f})@m{m}"));
                stage_index += 1;
                continue;
            }
        }
        let support = view.support(point, policy, stage_index as u16, f, weights, false);
        if support.is_empty() {
            return TraceOutcome::Blackhole { stage: f };
        }
        support_union.extend(support.iter().copied());
        let target = support[0];
        let target_router = view.plan.middleboxes[target as usize].router as u32;
        match walk_route(routes, at_router, target_router, budget) {
            Walk::Arrived(path) => {
                router_hops += path.len().saturating_sub(1);
                hops.push(format!(
                    "route[{}]",
                    path.iter()
                        .map(|n| format!("n{n}"))
                        .collect::<Vec<_>>()
                        .join("->")
                ));
            }
            Walk::Looped(path) => {
                hops.push(format!(
                    "loop[{}]",
                    path.iter()
                        .map(|n| format!("n{n}"))
                        .collect::<Vec<_>>()
                        .join("->")
                ));
                return TraceOutcome::RoutedLoop { hops };
            }
            Walk::Unreachable => return TraceOutcome::NoRoute,
        }
        hops.push(format!("mbox(m{target})"));
        stages.push(target);
        at_router = target_router;
        point = Point::Middlebox(target);
        stage_index += 1;
    }

    // Final leg: last stage router to the egress router.
    match walk_route(routes, at_router, egress_router, budget) {
        Walk::Arrived(path) => {
            router_hops += path.len().saturating_sub(1);
            hops.push(format!(
                "route[{}]",
                path.iter()
                    .map(|n| format!("n{n}"))
                    .collect::<Vec<_>>()
                    .join("->")
            ));
            hops.push(format!("deliver@n{egress_router}"));
            TraceOutcome::Completed(PathTrace {
                stages,
                hops,
                router_hops,
                support_union: support_union.into_iter().collect(),
            })
        }
        Walk::Looped(path) => TraceOutcome::RoutedLoop {
            hops: {
                hops.push(format!(
                    "loop[{}]",
                    path.iter()
                        .map(|n| format!("n{n}"))
                        .collect::<Vec<_>>()
                        .join("->")
                ));
                hops
            },
        },
        Walk::Unreachable => TraceOutcome::NoRoute,
    }
}

/// The (ingress, egress, rule) pieces of the traffic `src -> dst`, fully
/// split so each piece has a single governing rule, a single ingress
/// point and a single egress kind.
fn split_classes(
    view: &ReachView,
    src: Prefix,
    dst: Prefix,
) -> Vec<(Ingress, Egress, FlowClass, Option<&RuleView>)> {
    let mut out = Vec::new();
    for (ingress, in_class) in view.ingresses(FlowClass::between(src, dst)) {
        for (class, rule) in view.peel(in_class) {
            for (egress, final_class) in view.egresses(class) {
                out.push((ingress, egress, final_class, rule));
            }
        }
    }
    out
}

fn egress_router(view: &ReachView, egress: Egress) -> Option<u32> {
    match egress {
        Egress::Stub(s) => view.stub_routers.get(s as usize).copied(),
        // External traffic exits via the first gateway (symbolically any
        // gateway reaches the same external world).
        Egress::External => view.gateway_routers.first().copied(),
    }
}

fn check_isolation(
    view: &ReachView,
    routes: &dyn RouteView,
    src: Prefix,
    dst: Prefix,
    assertion: &Assertion,
    findings: &mut Vec<ReachFinding>,
) -> usize {
    let pieces = split_classes(view, src, dst);
    let checked = pieces.len();
    for (ingress, egress, class, rule) in pieces {
        let Some(out_router) = egress_router(view, egress) else {
            continue;
        };
        match trace_path(view, routes, ingress, rule, out_router) {
            TraceOutcome::Completed(trace) => {
                let scenario = make_scenario(
                    view,
                    ingress,
                    &class,
                    &trace,
                    ReachCode::IsolationBreach,
                    assertion,
                );
                findings.push(ReachFinding {
                    code: ReachCode::IsolationBreach,
                    subject: assertion.to_string(),
                    detail: format!(
                        "flow class {class} from {ingress} is delivered ({}); \
nothing on its path drops it",
                        match rule {
                            Some(r) => format!("policy p{}", r.policy),
                            None => "default permit".to_string(),
                        }
                    ),
                    witness: Some(ReachWitness {
                        class,
                        path: trace.hops,
                        scenario,
                    }),
                });
            }
            TraceOutcome::Blackhole { stage } => {
                findings.push(blackhole_finding(assertion, &class, stage));
            }
            // Looping or unroutable traffic is not *delivered*, so the
            // isolation assertion is not refuted by it.
            TraceOutcome::RoutedLoop { .. } | TraceOutcome::NoRoute => {}
        }
    }
    checked
}

fn check_waypoint(
    view: &ReachView,
    routes: &dyn RouteView,
    src: Prefix,
    dst: Prefix,
    via: NetworkFunction,
    assertion: &Assertion,
    findings: &mut Vec<ReachFinding>,
) -> usize {
    let pieces = split_classes(view, src, dst);
    let checked = pieces.len();
    for (ingress, egress, class, rule) in pieces {
        let Some(out_router) = egress_router(view, egress) else {
            continue;
        };
        let chain_has_via = rule.is_some_and(|r| r.chain.contains(&via));
        match trace_path(view, routes, ingress, rule, out_router) {
            TraceOutcome::Completed(trace) => {
                if chain_has_via {
                    continue; // every support member of the via stage implements it
                }
                // Delivered without the function on its chain: bypass.
                // The claim "no box implementing `via` processed it" is
                // only sound for boxes outside every stage's support.
                let via_boxes: Vec<u32> = view
                    .plan
                    .middleboxes
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.functions.contains(&via))
                    .map(|(i, _)| i as u32)
                    .collect();
                let avoided: Vec<u32> = via_boxes
                    .iter()
                    .copied()
                    .filter(|m| !trace.support_union.contains(m))
                    .collect();
                let scenario = make_bypass_scenario(view, ingress, &class, &trace, &avoided);
                findings.push(ReachFinding {
                    code: ReachCode::WaypointBypass,
                    subject: assertion.to_string(),
                    detail: format!(
                        "flow class {class} from {ingress} is delivered under {} \
whose chain does not include {via}",
                        match rule {
                            Some(r) => format!("policy p{}", r.policy),
                            None => "the default permit".to_string(),
                        }
                    ),
                    witness: Some(ReachWitness {
                        class,
                        path: trace.hops,
                        scenario,
                    }),
                });
            }
            TraceOutcome::Blackhole { stage } => {
                findings.push(blackhole_finding(assertion, &class, stage));
            }
            TraceOutcome::RoutedLoop { .. } | TraceOutcome::NoRoute => {}
        }
    }
    checked
}

fn check_loop_free(
    view: &ReachView,
    routes: &dyn RouteView,
    ttl: u32,
    assertion: &Assertion,
    findings: &mut Vec<ReachFinding>,
) -> usize {
    // Loop freedom quantifies over *all* enforced traffic: check every
    // policy rule's class from every ingress it can enter at, plus the
    // default-permit class between every stub pair is covered by the
    // rules' complement implicitly (default permit follows plain
    // shortest paths, which are loop-free iff the routed walks are — and
    // those are exercised by the per-rule traces below plus V005's
    // tunnel-edge walks).
    let mut checked = 0usize;
    for (ingress, egress, class, rule) in split_classes(view, Prefix::ANY, Prefix::ANY) {
        checked += 1;
        let Some(out_router) = egress_router(view, egress) else {
            continue;
        };
        match trace_path(view, routes, ingress, rule, out_router) {
            TraceOutcome::Completed(trace) => {
                if trace.router_hops as u32 > ttl {
                    findings.push(ReachFinding {
                        code: ReachCode::TtlExceeded,
                        subject: assertion.to_string(),
                        detail: format!(
                            "flow class {class} from {ingress} needs {} router hops, \
exceeding the ttl budget {ttl}",
                            trace.router_hops
                        ),
                        witness: Some(ReachWitness {
                            class,
                            path: trace.hops,
                            scenario: None,
                        }),
                    });
                }
            }
            TraceOutcome::RoutedLoop { hops } => {
                findings.push(ReachFinding {
                    code: ReachCode::TtlExceeded,
                    subject: assertion.to_string(),
                    detail: format!(
                        "flow class {class} from {ingress} enters a routed \
forwarding loop; packets die by TTL, never by delivery"
                    ),
                    witness: Some(ReachWitness {
                        class,
                        path: hops,
                        scenario: None,
                    }),
                });
            }
            TraceOutcome::Blackhole { stage } => {
                findings.push(blackhole_finding(assertion, &class, stage));
            }
            TraceOutcome::NoRoute => {}
        }
    }
    checked
}

fn blackhole_finding(assertion: &Assertion, class: &FlowClass, stage: NetworkFunction) -> ReachFinding {
    ReachFinding {
        code: ReachCode::BlackholeClass,
        subject: assertion.to_string(),
        detail: format!(
            "flow class {class} blackholes: steering stage {stage} has no \
available candidate middlebox"
        ),
        witness: Some(ReachWitness {
            class: *class,
            path: Vec::new(),
            scenario: None,
        }),
    }
}

/// Hazard pass: stale pinned flows across a weight swap or failure, and
/// label-TTL skew. Runs over every policy rule's class.
fn check_hazards(view: &ReachView, _routes: &dyn RouteView, findings: &mut Vec<ReachFinding>) {
    let Some(hazards) = &view.hazards else { return };

    // R006: label-table TTL skew affects every label-switched class.
    if let Some(o) = &view.plan.options {
        if o.label_ttl > o.flow_ttl {
            for rule in view.rules.iter().filter(|r| !r.chain.is_empty()) {
                findings.push(ReachFinding {
                    code: ReachCode::LabelTtlSkew,
                    subject: format!("policy(p{})", rule.policy),
                    detail: format!(
                        "label-switched class {} rides labels with ttl {} while \
its flow entry expires after {}; a reallocated label can collide with the stale \
⟨src|l, a⟩ binding mid-path",
                        rule.class, o.label_ttl, o.flow_ttl
                    ),
                    witness: Some(ReachWitness {
                        class: rule.class,
                        path: Vec::new(),
                        scenario: None,
                    }),
                });
            }
        }
    }

    // R005: a flow steered and pinned under the pre-hazard state whose
    // pinned target is now failed. The pre-hazard support is computed
    // with the previous weights and *including* now-failed boxes.
    if hazards.failed_now.is_empty() {
        return;
    }
    let prev_weights = hazards
        .prev_weights
        .as_ref()
        .or(view.plan.weights.as_ref());
    for rule in view.rules.iter().filter(|r| !r.chain.is_empty()) {
        for (ingress, class) in view.ingresses(rule.class) {
            let point = view.ingress_point(ingress);
            let f = rule.chain[0];
            let prev_support = view.support(point, rule.policy, 0, f, prev_weights, true);
            let stale: Vec<u32> = prev_support
                .iter()
                .copied()
                .filter(|m| hazards.failed_now.binary_search(m).is_ok())
                .collect();
            if stale.is_empty() {
                continue;
            }
            // A deterministic replay needs the pre-hazard pin target to
            // be forced: only a singleton support pins predictably.
            let scenario = if prev_support.len() == 1 {
                make_stale_pin_scenario(view, ingress, &class, prev_support[0])
            } else {
                None
            };
            findings.push(ReachFinding {
                code: ReachCode::StalePinnedFlow,
                subject: format!("{point} policy(p{})", rule.policy),
                detail: format!(
                    "flows of class {class} pinned before the hazard target {} \
for {f}; {} now failed — pinned packets drop until the flow entry expires or the \
next epoch re-steers",
                    join_boxes(&prev_support),
                    join_boxes(&stale),
                ),
                witness: Some(ReachWitness {
                    class,
                    path: vec![format!("{point}"), format!("pinned->m{}", stale[0])],
                    scenario,
                }),
            });
        }
    }
}

fn join_boxes(boxes: &[u32]) -> String {
    boxes
        .iter()
        .map(|m| format!("m{m}"))
        .collect::<Vec<_>>()
        .join(",")
}

// ---------------------------------------------------------------------------
// Witness lowering
// ---------------------------------------------------------------------------

/// Packets per injection: enough to survive batching corners, small
/// enough to keep replay instant.
const WITNESS_PACKETS: u64 = 8;

fn witness_flow(class: &FlowClass) -> WitnessFlow {
    let ft = class.representative();
    WitnessFlow {
        src: ft.src,
        dst: ft.dst,
        src_port: ft.src_port,
        dst_port: ft.dst_port,
        proto: ft.proto.number(),
    }
}

/// A delivery witness (isolation breach): inject and expect delivery,
/// with every deterministic stage box required to process the flow.
fn make_scenario(
    view: &ReachView,
    ingress: Ingress,
    class: &FlowClass,
    trace: &PathTrace,
    code: ReachCode,
    assertion: &Assertion,
) -> Option<ReplayScenario> {
    let Ingress::Stub(stub) = ingress else {
        return None; // gateway ingress cannot be injected at a proxy
    };
    // Per-stage processing is only a sound expectation when the strategy
    // is deterministic (each stage's support was a singleton).
    let deterministic = trace.support_union.len() == trace.stages.len()
        && view.strategy != StrategyView::Random;
    let must_process = if deterministic {
        trace.stages.clone()
    } else {
        Vec::new()
    };
    Some(ReplayScenario {
        name: format!("{assertion} :: {class} @ s{stub}"),
        code: code.as_str().to_string(),
        stub,
        flow: witness_flow(class),
        steps: vec![ReplayStep::Inject {
            packets: WITNESS_PACKETS,
            expect: StepExpect {
                delivered: true,
                dropped_failed: false,
                must_process,
                must_not_process: Vec::new(),
            },
        }],
    })
}

/// A bypass witness: inject, expect delivery, and require that no box in
/// `avoided` (implementers of the waypoint function outside every stage
/// support) processes a packet.
fn make_bypass_scenario(
    view: &ReachView,
    ingress: Ingress,
    class: &FlowClass,
    trace: &PathTrace,
    avoided: &[u32],
) -> Option<ReplayScenario> {
    let Ingress::Stub(stub) = ingress else {
        return None;
    };
    let deterministic = trace.support_union.len() == trace.stages.len()
        && view.strategy != StrategyView::Random;
    Some(ReplayScenario {
        name: format!("waypoint-bypass :: {class} @ s{stub}"),
        code: ReachCode::WaypointBypass.as_str().to_string(),
        stub,
        flow: witness_flow(class),
        steps: vec![ReplayStep::Inject {
            packets: WITNESS_PACKETS,
            expect: StepExpect {
                delivered: true,
                dropped_failed: false,
                must_process: if deterministic {
                    trace.stages.clone()
                } else {
                    Vec::new()
                },
                must_not_process: avoided.to_vec(),
            },
        }],
    })
}

/// A stale-pin hazard witness: inject while `target` is alive (the flow
/// pins to it), fail it, inject again and expect `dropped_failed` to
/// rise; restore to leave the world clean.
fn make_stale_pin_scenario(
    _view: &ReachView,
    ingress: Ingress,
    class: &FlowClass,
    target: u32,
) -> Option<ReplayScenario> {
    let Ingress::Stub(stub) = ingress else {
        return None;
    };
    Some(ReplayScenario {
        name: format!("stale-pin m{target} :: {class} @ s{stub}"),
        code: ReachCode::StalePinnedFlow.as_str().to_string(),
        stub,
        flow: witness_flow(class),
        steps: vec![
            ReplayStep::Inject {
                packets: WITNESS_PACKETS,
                expect: StepExpect {
                    delivered: true,
                    dropped_failed: false,
                    must_process: vec![target],
                    must_not_process: Vec::new(),
                },
            },
            ReplayStep::FailMbox(target),
            ReplayStep::Inject {
                packets: WITNESS_PACKETS,
                expect: StepExpect {
                    delivered: false,
                    dropped_failed: true,
                    // The stale pin still forwards every packet *to* the
                    // dead box (its receive counter rises); they die
                    // there instead of being re-steered.
                    must_process: vec![target],
                    must_not_process: Vec::new(),
                },
            },
            ReplayStep::RestoreMbox(target),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ChainView, MboxView, OptionsView};
    use sdm_policy::NetworkFunction::*;

    fn prefix(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    // -- flow-class algebra --------------------------------------------

    #[test]
    fn prefix_subtract_peels_siblings() {
        let a = prefix("10.0.0.0/8");
        let b = prefix("10.0.48.0/20");
        let pieces = prefix_subtract(a, b);
        // 12 sibling prefixes (one per bit between /8 and /20).
        assert_eq!(pieces.len(), 12);
        // Disjoint, none contains b, and together with b they cover a.
        let total: u64 = pieces.iter().map(|p| 1u64 << (32 - p.len())).sum();
        assert_eq!(total + (1u64 << 12), 1u64 << 24);
        for p in &pieces {
            assert!(!p.overlaps(b), "{p} overlaps {b}");
            assert!(p.is_subset_of(a));
        }
        assert!(prefix_subtract(b, a).is_empty());
        assert_eq!(prefix_subtract(b, prefix("11.0.0.0/8")), vec![b]);
    }

    #[test]
    fn class_subtract_is_disjoint_and_covering() {
        let a = FlowClass::between(prefix("10.0.0.0/16"), Prefix::ANY);
        let b = FlowClass {
            src: prefix("10.0.1.0/24"),
            dst: Prefix::ANY,
            src_ports: (0, 1023),
            dst_ports: (80, 80),
            protos: ProtoSet::single(6),
        };
        let pieces = a.subtract(&b);
        // No piece intersects b.
        for p in &pieces {
            assert!(p.intersect(&b).is_none(), "{p} intersects {b}");
        }
        // A member of a \ b is in exactly one piece; a member of a ∩ b in none.
        let inside = FiveTuple {
            src: "10.0.1.5".parse().unwrap(),
            dst: "10.9.9.9".parse().unwrap(),
            src_port: 100,
            dst_port: 80,
            proto: protocol_from_number(6),
        };
        let outside = FiveTuple {
            src: "10.0.1.5".parse().unwrap(),
            dst: "10.9.9.9".parse().unwrap(),
            src_port: 100,
            dst_port: 443,
            proto: protocol_from_number(6),
        };
        let member = |c: &FlowClass, t: &FiveTuple| {
            c.src.contains(t.src)
                && c.dst.contains(t.dst)
                && (c.src_ports.0..=c.src_ports.1).contains(&t.src_port)
                && (c.dst_ports.0..=c.dst_ports.1).contains(&t.dst_port)
                && c.protos.contains(t.proto.number())
        };
        assert_eq!(pieces.iter().filter(|p| member(p, &inside)).count(), 0);
        assert_eq!(pieces.iter().filter(|p| member(p, &outside)).count(), 1);
    }

    #[test]
    fn proto_set_algebra() {
        let any = ProtoSet::ANY;
        let tcp = ProtoSet::single(6);
        assert!(any.contains(6) && any.contains(255));
        assert!(tcp.contains(6) && !tcp.contains(17));
        assert!(any.subtract(tcp).contains(17));
        assert!(!any.subtract(tcp).contains(6));
        assert!(tcp.intersect(ProtoSet::single(17)).is_empty());
        assert_eq!(tcp.representative(), Some(6));
        assert_eq!(ProtoSet::EMPTY.representative(), None);
        assert_eq!(any.representative(), Some(6), "prefers tcp");
        assert_eq!(format!("{tcp}"), "tcp");
        assert_eq!(format!("{}", ProtoSet::single(17)), "udp");
        assert_eq!(format!("{any}"), "*");
    }

    #[test]
    fn representative_is_a_member() {
        let c = FlowClass {
            src: prefix("10.0.0.0/20"),
            dst: prefix("10.0.48.0/20"),
            src_ports: (1000, 2000),
            dst_ports: (80, 80),
            protos: ProtoSet::single(17),
        };
        let ft = c.representative();
        assert!(c.src.contains(ft.src));
        assert!(c.dst.contains(ft.dst));
        assert_eq!(ft.src.0, c.src.addr().0 + 1, "first host address");
        assert_eq!(ft.src_port, 1000);
        assert_eq!(ft.dst_port, 80);
        assert_eq!(ft.proto.number(), 17);
    }

    // -- assertion parsing ---------------------------------------------

    #[test]
    fn assertion_grammar_round_trips() {
        let text = "\
# comment
isolate 10.0.0.0/20 -> 10.0.48.0/20

waypoint 10.0.0.0/20 -> * via FW
loop-free ttl 64   # trailing comment
";
        let parsed = parse_assertions(text).unwrap();
        assert_eq!(parsed.len(), 3);
        let rendered: Vec<String> = parsed.iter().map(|a| a.to_string()).collect();
        let reparsed = parse_assertions(&rendered.join("\n")).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn assertion_parse_errors_name_the_line() {
        let err = parse_assertions("isolate 10.0.0.0/20 10.0.48.0/20").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_assertions("waypoint * -> * via BOGUS").unwrap_err();
        assert!(err.contains("unknown network function"), "{err}");
    }

    // -- walk_route ----------------------------------------------------

    /// A routing view given by an explicit next-hop table.
    struct TableRoutes {
        next: Vec<Vec<Option<u32>>>, // next[from][dst]
    }

    impl RouteView for TableRoutes {
        fn next_hop(&self, from: u32, dst: u32) -> Option<u32> {
            self.next[from as usize][dst as usize]
        }
        fn dist(&self, from: u32, dst: u32) -> Option<u32> {
            if from == dst {
                Some(0)
            } else {
                self.next_hop(from, dst).map(|_| 1)
            }
        }
    }

    #[test]
    fn walk_route_detects_micro_loops() {
        // 0 -> 1 -> 2 fine; 0 -> 1 <-> 0 for dst 3 loops.
        let mut next = vec![vec![None; 4]; 4];
        next[0][2] = Some(1);
        next[1][2] = Some(2);
        next[0][3] = Some(1);
        next[1][3] = Some(0);
        let r = TableRoutes { next };
        assert_eq!(walk_route(&r, 0, 2, 10), Walk::Arrived(vec![0, 1, 2]));
        assert_eq!(walk_route(&r, 0, 3, 10), Walk::Looped(vec![0, 1, 0]));
        assert_eq!(walk_route(&r, 2, 3, 10), Walk::Unreachable);
        assert_eq!(walk_route(&r, 2, 2, 10), Walk::Arrived(vec![2]));
    }

    // -- end-to-end checking on a hand-built view ----------------------

    /// A small deployment on a 6-node line topology:
    ///   n0 (stub0) - n1 - n2 - n3 - n4 (stub1) - n5 (gateway)
    /// Middleboxes: m0 = FW @ n1, m1 = FW @ n3, m2 = IDS @ n2.
    /// Policy p0: stub0/20 -> stub1/20 : FW.  Everything else: permit.
    fn line_view() -> (ReachView, TableRoutes) {
        let s0 = prefix("10.0.0.0/20");
        let s1 = prefix("10.0.16.0/20");
        let mbox = |fns: Vec<NetworkFunction>, router: usize, i: u32| MboxView {
            functions: fns,
            router,
            capacity: 1.0,
            available: true,
            addr: Ipv4Addr::from_octets([172, 16, 0, 1 + i as u8]),
        };
        let mut candidates = Vec::new();
        for p in 0..2u32 {
            candidates.push(CandidateSet {
                point: Point::Proxy(p),
                function: Firewall,
                members: vec![0, 1],
            });
            candidates.push(CandidateSet {
                point: Point::Proxy(p),
                function: Ids,
                members: vec![2],
            });
        }
        candidates.push(CandidateSet {
            point: Point::Gateway(0),
            function: Firewall,
            members: vec![1, 0],
        });
        candidates.push(CandidateSet {
            point: Point::Gateway(0),
            function: Ids,
            members: vec![2],
        });
        let plan = PlanView {
            node_count: 6,
            stub_subnets: vec![s0, s1],
            gateway_count: 1,
            middleboxes: vec![
                mbox(vec![Firewall], 1, 0),
                mbox(vec![Firewall], 3, 1),
                mbox(vec![Ids], 2, 2),
            ],
            policies: vec![ChainView {
                policy: 0,
                chain: vec![Firewall],
            }],
            k: vec![(Firewall, 2), (Ids, 1)],
            candidates,
            weights: None,
            options: Some(OptionsView {
                flow_ttl: 1_000,
                label_ttl: 1_000,
                mtu: 1500,
            }),
        };
        let view = ReachView {
            plan,
            rules: vec![RuleView {
                policy: 0,
                class: FlowClass::between(s0, s1),
                chain: vec![Firewall],
            }],
            stub_routers: vec![0, 4],
            gateway_routers: vec![5],
            enterprise: prefix("10.0.0.0/8"),
            strategy: StrategyView::HotPotato,
            hazards: None,
        };
        // Line routing: next hop towards any dst is the neighbor in its
        // direction.
        let mut next = vec![vec![None; 6]; 6];
        for from in 0..6u32 {
            for dst in 0..6u32 {
                if from == dst {
                    continue;
                }
                next[from as usize][dst as usize] =
                    Some(if dst > from { from + 1 } else { from - 1 });
            }
        }
        (view, TableRoutes { next })
    }

    #[test]
    fn isolation_refuted_with_delivery_witness() {
        let (view, routes) = line_view();
        let assertions =
            parse_assertions("isolate 10.0.0.0/20 -> 10.0.16.0/20").unwrap();
        let report = check_assertions(&view, &routes, &assertions);
        assert!(!report.results[0].holds);
        assert!(report.has_code(ReachCode::IsolationBreach));
        let f = &report.findings[0];
        let w = f.witness.as_ref().unwrap();
        // HotPotato: the flow pins to m0 (nearest FW), path is concrete.
        let s = w.scenario.as_ref().unwrap();
        assert_eq!(s.stub, 0);
        let inject = &s.steps[0];
        match inject {
            ReplayStep::Inject { expect, .. } => {
                assert!(expect.delivered);
                assert_eq!(expect.must_process, vec![0]);
            }
            other => panic!("unexpected first step {other:?}"),
        }
        assert!(w.path.iter().any(|h| h.contains("mbox(m0)")), "{:?}", w.path);
    }

    #[test]
    fn isolation_holds_for_unroutable_enterprise_space() {
        let (view, routes) = line_view();
        // 10.15.0.0/16 is enterprise space with no stub behind it.
        let assertions =
            parse_assertions("isolate 10.0.0.0/20 -> 10.15.0.0/16").unwrap();
        let report = check_assertions(&view, &routes, &assertions);
        assert!(report.results[0].holds, "{report}");
        assert!(report.is_clean());
    }

    #[test]
    fn waypoint_holds_when_chain_contains_function() {
        let (view, routes) = line_view();
        let assertions =
            parse_assertions("waypoint 10.0.0.0/20 -> 10.0.16.0/20 via FW").unwrap();
        let report = check_assertions(&view, &routes, &assertions);
        assert!(report.results[0].holds, "{report}");
    }

    #[test]
    fn waypoint_bypass_refuted_with_avoid_set() {
        let (view, routes) = line_view();
        // Reverse direction is not covered by p0: default permit, no FW.
        let assertions =
            parse_assertions("waypoint 10.0.16.0/20 -> 10.0.0.0/20 via FW").unwrap();
        let report = check_assertions(&view, &routes, &assertions);
        assert!(!report.results[0].holds);
        assert!(report.has_code(ReachCode::WaypointBypass));
        let f = report
            .findings
            .iter()
            .find(|f| f.code == ReachCode::WaypointBypass)
            .unwrap();
        let s = f.witness.as_ref().unwrap().scenario.as_ref().unwrap();
        match &s.steps[0] {
            ReplayStep::Inject { expect, .. } => {
                assert!(expect.delivered);
                // Neither firewall may see the flow.
                assert_eq!(expect.must_not_process, vec![0, 1]);
            }
            other => panic!("unexpected step {other:?}"),
        }
    }

    #[test]
    fn loop_free_holds_on_consistent_routing_and_refutes_on_loops() {
        let (view, routes) = line_view();
        let ok = check_assertions(&view, &routes, &parse_assertions("loop-free ttl 64").unwrap());
        assert!(ok.results[0].holds, "{ok}");

        // Break routing: walking from n0 towards n4 now oscillates.
        let (view, mut routes) = line_view();
        routes.next[1][4] = Some(0);
        routes.next[0][4] = Some(1);
        let bad = check_assertions(&view, &routes, &parse_assertions("loop-free ttl 64").unwrap());
        assert!(!bad.results[0].holds);
        assert!(bad.has_code(ReachCode::TtlExceeded));

        // Tight TTL budget: the legitimate path needs more hops.
        let (view, routes) = line_view();
        let tight = check_assertions(&view, &routes, &parse_assertions("loop-free ttl 2").unwrap());
        assert!(tight.has_code(ReachCode::TtlExceeded));
    }

    #[test]
    fn blackhole_reported_when_all_candidates_failed() {
        let (mut view, routes) = line_view();
        view.plan.middleboxes[0].available = false;
        view.plan.middleboxes[1].available = false;
        let report = check_assertions(
            &view,
            &routes,
            &parse_assertions("isolate 10.0.0.0/20 -> 10.0.16.0/20").unwrap(),
        );
        // Not delivered — the isolation is *not* refuted — but the class
        // blackholes, which is its own finding.
        assert!(report.has_code(ReachCode::BlackholeClass));
        assert!(!report.has_code(ReachCode::IsolationBreach));
    }

    #[test]
    fn stale_pin_hazard_detected_with_replayable_witness() {
        let (mut view, routes) = line_view();
        // m0 (the pinned hot-potato target) fails after flows pinned.
        view.plan.middleboxes[0].available = false;
        view.hazards = Some(HazardView {
            prev_weights: None,
            failed_now: vec![0],
        });
        let report = check_assertions(&view, &routes, &[]);
        assert!(report.has_code(ReachCode::StalePinnedFlow), "{report}");
        let f = report
            .findings
            .iter()
            .find(|f| f.code == ReachCode::StalePinnedFlow)
            .unwrap();
        let s = f.witness.as_ref().unwrap().scenario.as_ref().unwrap();
        assert_eq!(s.code, "R005");
        // Script shape: inject (pins to m0), fail m0, inject (drops).
        assert!(matches!(s.steps[0], ReplayStep::Inject { .. }));
        assert_eq!(s.steps[1], ReplayStep::FailMbox(0));
        match &s.steps[2] {
            ReplayStep::Inject { expect, .. } => assert!(expect.dropped_failed),
            other => panic!("unexpected step {other:?}"),
        }
    }

    #[test]
    fn label_ttl_skew_hazard_detected() {
        let (mut view, routes) = line_view();
        view.plan.options = Some(OptionsView {
            flow_ttl: 100,
            label_ttl: 1_000,
            mtu: 1500,
        });
        view.hazards = Some(HazardView::default());
        let report = check_assertions(&view, &routes, &[]);
        assert!(report.has_code(ReachCode::LabelTtlSkew), "{report}");
    }

    #[test]
    fn findings_are_sorted_and_report_serializes() {
        let (mut view, routes) = line_view();
        view.plan.middleboxes[0].available = false;
        view.hazards = Some(HazardView {
            prev_weights: None,
            failed_now: vec![0],
        });
        let assertions = parse_assertions(
            "isolate 10.0.0.0/20 -> 10.0.16.0/20\nwaypoint 10.0.16.0/20 -> 10.0.0.0/20 via FW",
        )
        .unwrap();
        let report = check_assertions(&view, &routes, &assertions);
        let codes: Vec<_> = report.findings.iter().map(|f| f.code).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted, "findings must be code-sorted");
        let json = report.to_json().to_string_pretty();
        assert!(json.contains("\"verifier\": \"sdm-reach\""), "{json}");
        assert!(json.contains("R005"), "{json}");
        // Scenario extraction only returns replayable witnesses.
        for s in report.scenarios() {
            assert!(!s.steps.is_empty());
        }
    }

    #[test]
    fn reach_codes_are_unique_and_stable() {
        let all = [
            ReachCode::IsolationBreach,
            ReachCode::WaypointBypass,
            ReachCode::TtlExceeded,
            ReachCode::BlackholeClass,
            ReachCode::StalePinnedFlow,
            ReachCode::LabelTtlSkew,
        ];
        let mut wire: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        wire.sort();
        wire.dedup();
        assert_eq!(wire.len(), all.len());
        assert_eq!(ReachCode::IsolationBreach.as_str(), "R001");
        assert_eq!(ReachCode::LabelTtlSkew.as_str(), "R006");
    }
}
