//! Witness lowering: every reach-tier violation carries a concrete flow
//! and a script of simulator actions that reproduces it.
//!
//! The static checker ([`crate::reach`]) proves or refutes assertions over
//! symbolic flow classes; when it refutes one, the verdict is only
//! trustworthy if the *dynamic* data plane agrees. A [`ReplayScenario`] is
//! the bridge: a concrete five-tuple drawn from the violating flow class
//! plus an injection script (`inject`, `fail_middlebox`, …) whose
//! per-step expectations ([`StepExpect`]) are phrased entirely in
//! observable simulator counters — packets delivered, packets dropped at a
//! failed box, per-middlebox load deltas. `ci.sh` replays the committed
//! corpus and fails if the simulator ever disagrees with the static
//! verdict.
//!
//! Scenarios serialize to JSON (via `sdm-util`'s hermetic [`Json`]) so the
//! counterexample corpus can be committed under `results/` and replayed by
//! `sdm-reach --replay` without re-running the checker.

use std::fmt;

use sdm_netsim::{FiveTuple, Ipv4Addr, Protocol};
use sdm_util::json::Json;

/// A concrete flow drawn from a violating flow class, in plain-data form
/// (no `FiveTuple` in the wire format so the JSON stays self-describing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessFlow {
    /// Source address (must lie inside the ingress stub's subnet).
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IANA protocol number.
    pub proto: u8,
}

impl WitnessFlow {
    /// The simulator flow identifier for this witness.
    pub fn five_tuple(&self) -> FiveTuple {
        FiveTuple {
            src: self.src,
            dst: self.dst,
            src_port: self.src_port,
            dst_port: self.dst_port,
            proto: protocol_from_number(self.proto),
        }
    }
}

/// Maps an IANA number back to the simulator's [`Protocol`], preferring
/// the named variants so equality against policy matches behaves.
pub fn protocol_from_number(n: u8) -> Protocol {
    match n {
        6 => Protocol::Tcp,
        17 => Protocol::Udp,
        4 => Protocol::IpInIp,
        other => Protocol::Other(other),
    }
}

/// What an [`ReplayStep::Inject`] step must observe, phrased as counter
/// deltas across the step so the check is shard- and batch-invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepExpect {
    /// Delivered-packet count (internal or external) must increase.
    pub delivered: bool,
    /// `dropped_failed` (packets steered at a failed box) must increase.
    pub dropped_failed: bool,
    /// Each of these middleboxes must process at least one packet.
    pub must_process: Vec<u32>,
    /// None of these middleboxes may process a packet — the teeth of a
    /// waypoint-bypass witness.
    pub must_not_process: Vec<u32>,
}

/// One action in a replay script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayStep {
    /// Inject `packets` packets of the scenario flow at the ingress stub's
    /// proxy, run the simulator to quiescence, then check `expect` against
    /// the counter deltas.
    Inject {
        /// Number of packets to inject.
        packets: u64,
        /// Counter-delta expectations for this step.
        expect: StepExpect,
    },
    /// Mark a middlebox failed (the hazard injection for stale-pin
    /// windows).
    FailMbox(u32),
    /// Restore a failed middlebox.
    RestoreMbox(u32),
}

/// A replayable counterexample: the executable form of a reach-tier
/// witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayScenario {
    /// Stable scenario name (assertion + class), unique within a corpus.
    pub name: String,
    /// The `R0xx` code this scenario reproduces.
    pub code: String,
    /// Ingress stub network whose proxy injects the flow.
    pub stub: u32,
    /// The concrete witness flow.
    pub flow: WitnessFlow,
    /// The action script, executed in order against one persistent
    /// enforcement instance.
    pub steps: Vec<ReplayStep>,
}

impl ReplayScenario {
    /// Serializes the scenario to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("code", Json::from(self.code.as_str())),
            ("stub", Json::from(self.stub as u64)),
            (
                "flow",
                Json::obj([
                    ("src", Json::from(self.flow.src.to_string())),
                    ("dst", Json::from(self.flow.dst.to_string())),
                    ("src_port", Json::from(self.flow.src_port as u64)),
                    ("dst_port", Json::from(self.flow.dst_port as u64)),
                    ("proto", Json::from(self.flow.proto as u64)),
                ]),
            ),
            (
                "steps",
                Json::Arr(self.steps.iter().map(step_to_json).collect()),
            ),
        ])
    }

    /// Parses a scenario from the JSON produced by
    /// [`ReplayScenario::to_json`].
    pub fn from_json(j: &Json) -> Result<ReplayScenario, String> {
        let name = str_field(j, "name")?.to_string();
        let code = str_field(j, "code")?.to_string();
        let stub = u64_field(j, "stub")? as u32;
        let fj = j.get("flow").ok_or("scenario missing 'flow'")?;
        let flow = WitnessFlow {
            src: parse_addr(str_field(fj, "src")?)?,
            dst: parse_addr(str_field(fj, "dst")?)?,
            src_port: u64_field(fj, "src_port")? as u16,
            dst_port: u64_field(fj, "dst_port")? as u16,
            proto: u64_field(fj, "proto")? as u8,
        };
        let steps = j
            .get("steps")
            .and_then(Json::as_arr)
            .ok_or("scenario missing 'steps'")?
            .iter()
            .map(step_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ReplayScenario {
            name,
            code,
            stub,
            flow,
            steps,
        })
    }
}

impl fmt::Display for ReplayScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] stub s{} flow {}:{} -> {}:{} proto {} ({} steps)",
            self.name,
            self.code,
            self.stub,
            self.flow.src,
            self.flow.src_port,
            self.flow.dst,
            self.flow.dst_port,
            self.flow.proto,
            self.steps.len()
        )
    }
}

fn step_to_json(s: &ReplayStep) -> Json {
    match s {
        ReplayStep::Inject { packets, expect } => Json::obj([
            ("op", Json::from("inject")),
            ("packets", Json::from(*packets)),
            ("delivered", Json::Bool(expect.delivered)),
            ("dropped_failed", Json::Bool(expect.dropped_failed)),
            (
                "must_process",
                Json::Arr(
                    expect
                        .must_process
                        .iter()
                        .map(|&m| Json::from(m as u64))
                        .collect(),
                ),
            ),
            (
                "must_not_process",
                Json::Arr(
                    expect
                        .must_not_process
                        .iter()
                        .map(|&m| Json::from(m as u64))
                        .collect(),
                ),
            ),
        ]),
        ReplayStep::FailMbox(m) => Json::obj([
            ("op", Json::from("fail")),
            ("mbox", Json::from(*m as u64)),
        ]),
        ReplayStep::RestoreMbox(m) => Json::obj([
            ("op", Json::from("restore")),
            ("mbox", Json::from(*m as u64)),
        ]),
    }
}

fn step_from_json(j: &Json) -> Result<ReplayStep, String> {
    match str_field(j, "op")? {
        "inject" => Ok(ReplayStep::Inject {
            packets: u64_field(j, "packets")?,
            expect: StepExpect {
                delivered: bool_field(j, "delivered")?,
                dropped_failed: bool_field(j, "dropped_failed")?,
                must_process: u32_list(j, "must_process")?,
                must_not_process: u32_list(j, "must_not_process")?,
            },
        }),
        "fail" => Ok(ReplayStep::FailMbox(u64_field(j, "mbox")? as u32)),
        "restore" => Ok(ReplayStep::RestoreMbox(u64_field(j, "mbox")? as u32)),
        other => Err(format!("unknown replay op '{other}'")),
    }
}

fn parse_addr(s: &str) -> Result<Ipv4Addr, String> {
    s.parse()
        .map_err(|_| format!("'{s}' is not a dotted-quad IPv4 address"))
}

fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn u64_field(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn bool_field(j: &Json, key: &str) -> Result<bool, String> {
    j.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing boolean field '{key}'"))
}

fn u32_list(j: &Json, key: &str) -> Result<Vec<u32>, String> {
    j.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing list field '{key}'"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .map(|n| n as u32)
                .ok_or_else(|| format!("non-numeric entry in '{key}'"))
        })
        .collect()
}

/// Serializes a whole counterexample corpus.
pub fn corpus_to_json(scenarios: &[ReplayScenario]) -> Json {
    Json::obj([
        ("format", Json::from("sdm-reach-corpus-v1")),
        (
            "scenarios",
            Json::Arr(scenarios.iter().map(ReplayScenario::to_json).collect()),
        ),
    ])
}

/// Parses a corpus serialized by [`corpus_to_json`].
pub fn corpus_from_json(text: &str) -> Result<Vec<ReplayScenario>, String> {
    let j = Json::parse(text).map_err(|e| format!("corpus is not valid JSON: {e:?}"))?;
    match j.get("format").and_then(Json::as_str) {
        Some("sdm-reach-corpus-v1") => {}
        other => return Err(format!("unknown corpus format {other:?}")),
    }
    j.get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("corpus missing 'scenarios'")?
        .iter()
        .map(ReplayScenario::from_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> ReplayScenario {
        ReplayScenario {
            name: "isolate-s0-s3/class0".to_string(),
            code: "R001".to_string(),
            stub: 0,
            flow: WitnessFlow {
                src: "10.0.0.1".parse().unwrap(),
                dst: "10.0.48.1".parse().unwrap(),
                src_port: 40000,
                dst_port: 80,
                proto: 6,
            },
            steps: vec![
                ReplayStep::Inject {
                    packets: 8,
                    expect: StepExpect {
                        delivered: true,
                        dropped_failed: false,
                        must_process: vec![2],
                        must_not_process: vec![0, 1],
                    },
                },
                ReplayStep::FailMbox(2),
                ReplayStep::Inject {
                    packets: 4,
                    expect: StepExpect {
                        delivered: false,
                        dropped_failed: true,
                        must_process: vec![],
                        must_not_process: vec![],
                    },
                },
                ReplayStep::RestoreMbox(2),
            ],
        }
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let s = scenario();
        let text = s.to_json().to_string_pretty();
        let parsed = ReplayScenario::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(s, parsed);
    }

    #[test]
    fn corpus_round_trips_through_json() {
        let corpus = vec![scenario(), scenario()];
        let text = corpus_to_json(&corpus).to_string_pretty();
        assert_eq!(corpus_from_json(&text).unwrap(), corpus);
    }

    #[test]
    fn corpus_rejects_unknown_format() {
        assert!(corpus_from_json("{\"format\": \"bogus\"}").is_err());
        assert!(corpus_from_json("not json").is_err());
    }

    #[test]
    fn five_tuple_uses_named_protocol_variants() {
        let f = scenario().flow.five_tuple();
        assert_eq!(f.proto, Protocol::Tcp);
        assert_eq!(protocol_from_number(17), Protocol::Udp);
        assert_eq!(protocol_from_number(99), Protocol::Other(99));
    }

    #[test]
    fn display_is_compact() {
        let text = scenario().to_string();
        assert!(text.contains("R001"), "{text}");
        assert!(text.contains("10.0.0.1:40000"), "{text}");
    }
}
