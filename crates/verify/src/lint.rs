//! Pass 2 — the hermetic source lint behind the `sdm-lint` binary.
//!
//! A zero-dependency token-level scanner over the workspace's Rust
//! sources that machine-enforces the conventions the PR-4 deterministic
//! data plane rests on:
//!
//! * **`default-hasher`** — `std::collections::HashMap` / `HashSet`
//!   (randomly seeded SipHash) are banned in the data-plane crates
//!   ([`DATA_PLANE_CRATES`]); iteration order there must be
//!   deterministic, so only `FxHashMap`/`FxHashSet` or the `BTree`
//!   collections are allowed.
//! * **`wall-clock`** — `Instant::now` / `SystemTime::now` are banned
//!   everywhere except the benchmarking harness
//!   ([`WALL_CLOCK_EXEMPT_SUFFIXES`]); simulated time must come from the
//!   event queue, never the host clock.
//! * **`hot-path-panic`** — `.unwrap()` / `.expect(` are flagged in the
//!   packet hot path ([`HOT_PATH_SUFFIXES`]); a malformed packet must
//!   surface as a counted drop, not a worker-thread abort.
//! * **`per-flow-map`** — `FxHashMap<FiveTuple, _>` is banned in the
//!   data-plane crates: per-flow soft state belongs in the
//!   open-addressed `FlowTable`/`OaTable` (slab storage, incremental
//!   rehash, deterministic iteration, bounded negative cache), not an ad
//!   hoc hash map that reintroduces resize spikes and unbounded
//!   exhaustion-attack memory.
//! * **`set-iteration-order`** — `HashSet` *and* `FxHashSet` are banned
//!   in the diagnostic crates ([`DIAGNOSTIC_CRATES`]): verifier reports
//!   (`V0xx`/`R0xx`) are sorted, deduplicated and byte-diffed in CI, and
//!   even a deterministic hasher iterates in insertion-history order,
//!   not the documented sort order. Use `BTreeSet` or a sorted `Vec`.
//! * **`unsafe-code`** — every crate root must carry
//!   `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`, and the
//!   `unsafe` keyword must not appear in any scanned source. The
//!   exception list ([`UNSAFE_EXCEPTIONS`]) is currently empty; a crate
//!   listed there that *does* carry the attribute is reported as a stale
//!   exception so the list tracks reality.
//!
//! The scanner tokenizes rather than greps: identifiers are matched
//! whole (`FxHashMap` does not match `HashMap`), and comments, strings
//! and `#[cfg(test)]` blocks are skipped. A genuine exception is
//! suppressed in place with a `// lint:allow(<rule>)` comment on the
//! flagged line or the line above it.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule name for the banned default-hasher collections.
pub const RULE_DEFAULT_HASHER: &str = "default-hasher";
/// Rule name for banned host-clock reads.
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// Rule name for panicking combinators in the packet hot path.
pub const RULE_HOT_PATH_PANIC: &str = "hot-path-panic";
/// Rule name for the unsafe-code policy.
pub const RULE_UNSAFE_CODE: &str = "unsafe-code";
/// Rule name for raw per-flow hash maps in the data plane.
pub const RULE_PER_FLOW_MAP: &str = "per-flow-map";
/// Rule name for iteration-order-dependent sets in diagnostic paths.
pub const RULE_SET_ORDER: &str = "set-iteration-order";

/// Crates whose sources form the deterministic data plane: default-hasher
/// collections are banned here.
pub const DATA_PLANE_CRATES: &[&str] = &["core", "netsim", "policy", "telemetry", "workload"];

/// Crates whose output is a diagnostic report that must be byte-stable
/// (sorted + deduplicated like the `V0xx`/`R0xx` codes): *any* hash-set
/// type — `HashSet` **and** `FxHashSet` — is banned here, because even a
/// deterministic hasher yields an iteration order that is an accident of
/// insertion history, not the report's documented sort order. Use
/// `BTreeSet` or an explicitly sorted `Vec`.
pub const DIAGNOSTIC_CRATES: &[&str] = &["verify"];

/// Path suffixes of the packet hot path, where `.unwrap()`/`.expect(` are
/// flagged.
pub const HOT_PATH_SUFFIXES: &[&str] = &[
    "netsim/src/engine.rs",
    "core/src/shard.rs",
    "policy/src/flow_table.rs",
];

/// Path suffixes exempt from the wall-clock rule: the benchmarking
/// harness measures host time by design.
pub const WALL_CLOCK_EXEMPT_SUFFIXES: &[&str] =
    &["util/src/bench.rs", "util/src/bench_diff.rs"];

/// Crates allowed to skip the `#![forbid/deny(unsafe_code)]` attribute.
/// Empty: every crate in the workspace forbids unsafe code. A crate named
/// here that carries the attribute anyway is reported as a stale
/// exception.
pub const UNSAFE_EXCEPTIONS: &[&str] = &[];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    /// Which rule fired (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// What was found.
    pub detail: String,
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.detail
        )
    }
}

/// Scanner configuration: where the workspace lives.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root (the directory holding `crates/`).
    pub root: PathBuf,
}

impl LintConfig {
    /// Config rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LintConfig { root: root.into() }
    }
}

/// Scans every `crates/*/src` tree (plus the umbrella crate's `src/`)
/// under the configured root and returns all findings, sorted by
/// (file, line, rule).
pub fn lint_workspace(config: &LintConfig) -> io::Result<Vec<LintViolation>> {
    let mut violations = Vec::new();
    let crates_dir = config.root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let path = entry?.path();
            if path.is_dir() && path.join("Cargo.toml").is_file() {
                crate_dirs.push(path);
            }
        }
    }
    crate_dirs.sort();
    // The umbrella crate at the root, if any.
    if config.root.join("Cargo.toml").is_file() && config.root.join("src").is_dir() {
        crate_dirs.push(config.root.clone());
    }

    for dir in &crate_dirs {
        let crate_name = crate_name_of(dir);
        check_unsafe_attribute(config, dir, &crate_name, &mut violations);
        let src = dir.join("src");
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let text = fs::read_to_string(&file)?;
            let rel = relative_to(&file, &config.root);
            lint_source(&rel, &crate_name, &text, &mut violations);
        }
    }

    violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    Ok(violations)
}

fn crate_name_of(dir: &Path) -> String {
    dir.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn relative_to(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The `unsafe-code` crate-root check: attribute present unless excepted,
/// and no stale exceptions.
fn check_unsafe_attribute(
    config: &LintConfig,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<LintViolation>,
) {
    let lib = dir.join("src").join("lib.rs");
    let Ok(text) = fs::read_to_string(&lib) else {
        return; // bin-only crate roots are covered by the token scan
    };
    let has_attr = text.contains("#![forbid(unsafe_code)]")
        || text.contains("#![deny(unsafe_code)]");
    let excepted = UNSAFE_EXCEPTIONS.contains(&crate_name);
    let rel = relative_to(&lib, &config.root);
    if !has_attr && !excepted {
        out.push(LintViolation {
            rule: RULE_UNSAFE_CODE,
            file: rel,
            line: 0,
            detail: format!(
                "crate `{crate_name}` does not declare #![forbid(unsafe_code)] \
or #![deny(unsafe_code)]"
            ),
        });
    } else if has_attr && excepted {
        out.push(LintViolation {
            rule: RULE_UNSAFE_CODE,
            file: rel,
            line: 0,
            detail: format!(
                "stale exception: crate `{crate_name}` is in UNSAFE_EXCEPTIONS \
but declares the unsafe_code attribute — remove it from the list"
            ),
        });
    }
}

/// A significant token: an identifier/keyword or a single punctuation
/// character, with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

struct Scan {
    tokens: Vec<(usize, Tok)>,
    /// Lines carrying a `lint:allow(<rule>)` comment, as (line, rule).
    allows: Vec<(usize, String)>,
}

/// True when `rule` is allowed on `line` (directive on the same line or
/// the one above).
fn allowed(scan: &Scan, line: usize, rule: &str) -> bool {
    scan.allows
        .iter()
        .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
}

/// Tokenizes Rust source: skips comments (capturing `lint:allow`
/// directives), string/char literals including raw and byte forms, and
/// records identifier and punctuation tokens with line numbers.
fn tokenize(text: &str) -> Scan {
    let b = text.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut tokens = Vec::new();
    let mut allows = Vec::new();

    let is_ident_start = |c: u8| c.is_ascii_alphabetic() || c == b'_';
    let is_ident_cont = |c: u8| c.is_ascii_alphanumeric() || c == b'_';

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                // Line comment (covers /// and //! doc comments).
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let comment = &text[start..i];
                let mut rest = comment;
                while let Some(pos) = rest.find("lint:allow(") {
                    let tail = &rest[pos + "lint:allow(".len()..];
                    if let Some(end) = tail.find(')') {
                        allows.push((line, tail[..end].trim().to_string()));
                        rest = &tail[end..];
                    } else {
                        break;
                    }
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting per Rust.
                i += 2;
                let mut depth = 1;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
            }
            b'\'' => {
                // Lifetime (`'a`) or char literal (`'a'`, `'\n'`).
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal.
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if b
                    .get(i + 1)
                    .is_some_and(|&c| is_ident_start(c) || c.is_ascii_digit())
                    && b.get(i + 2) != Some(&b'\'')
                {
                    // Lifetime: skip the quote, the name scans as an ident
                    // (harmless — lifetimes never collide with rules).
                    i += 1;
                } else {
                    // Plain char literal like 'x' or '''.
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                let word = &text[start..i];
                // Raw / byte string prefixes: r"", r#""#, b"", br#""#.
                let next = b.get(i).copied();
                match (word, next) {
                    ("r" | "br", Some(b'"')) | ("r" | "br", Some(b'#')) => {
                        i = skip_raw_string(b, i, &mut line);
                    }
                    ("b", Some(b'"')) => {
                        i = skip_string(b, i, &mut line);
                    }
                    ("b", Some(b'\'')) => {
                        // Byte char literal b'x' / b'\n'.
                        i += 2; // quote + first content byte (or backslash)
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                        i += 1;
                    }
                    _ => tokens.push((line, Tok::Ident(word.to_string()))),
                }
            }
            _ => {
                if !c.is_ascii_whitespace() && c.is_ascii_punctuation() {
                    tokens.push((line, Tok::Punct(c as char)));
                }
                i += 1;
            }
        }
    }
    Scan { tokens, allows }
}

/// Skips a normal string literal starting at the opening quote index (or
/// the index *of* the quote when called after a `b` prefix, where `at`
/// points at the quote). Returns the index past the closing quote.
fn skip_string(b: &[u8], at: usize, line: &mut usize) -> usize {
    let mut i = at + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string literal; `at` points at the first `#` or `"` after
/// the `r`/`br` prefix. Returns the index past the closing delimiter.
fn skip_raw_string(b: &[u8], at: usize, line: &mut usize) -> usize {
    let mut i = at;
    let mut hashes = 0;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return i; // not actually a raw string; resume scanning here
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && b.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Index ranges (into the token vec) covered by `#[cfg(test)]`-guarded
/// brace blocks, which every rule skips.
fn cfg_test_ranges(tokens: &[(usize, Tok)]) -> Vec<(usize, usize)> {
    let ident = |t: &Tok, s: &str| matches!(t, Tok::Ident(w) if w == s);
    let punct = |t: &Tok, c: char| matches!(t, Tok::Punct(p) if *p == c);
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        if punct(&tokens[i].1, '#')
            && punct(&tokens[i + 1].1, '[')
            && ident(&tokens[i + 2].1, "cfg")
            && punct(&tokens[i + 3].1, '(')
            && ident(&tokens[i + 4].1, "test")
            && punct(&tokens[i + 5].1, ')')
            && punct(&tokens[i + 6].1, ']')
        {
            // Skip to the guarded item's opening brace, then past its
            // matching close.
            let mut j = i + 7;
            while j < tokens.len() && !punct(&tokens[j].1, '{') {
                j += 1;
            }
            let mut depth = 0;
            while j < tokens.len() {
                if punct(&tokens[j].1, '{') {
                    depth += 1;
                } else if punct(&tokens[j].1, '}') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            ranges.push((i, j));
            i = j;
        } else {
            i += 1;
        }
    }
    ranges
}

/// Runs every token-level rule over one source file.
fn lint_source(rel: &str, crate_name: &str, text: &str, out: &mut Vec<LintViolation>) {
    let scan = tokenize(text);
    let test_ranges = cfg_test_ranges(&scan.tokens);
    let in_test = |idx: usize| test_ranges.iter().any(|&(a, b)| idx >= a && idx < b);

    let data_plane = DATA_PLANE_CRATES.contains(&crate_name);
    let diagnostic = DIAGNOSTIC_CRATES.contains(&crate_name);
    let hot_path = HOT_PATH_SUFFIXES.iter().any(|s| rel.ends_with(s));
    let clock_exempt = WALL_CLOCK_EXEMPT_SUFFIXES.iter().any(|s| rel.ends_with(s));

    for (idx, (line, tok)) in scan.tokens.iter().enumerate() {
        if in_test(idx) {
            continue;
        }
        let Tok::Ident(word) = tok else { continue };
        let next_is = |c: char| {
            matches!(scan.tokens.get(idx + 1), Some((_, Tok::Punct(p))) if *p == c)
        };
        let followed_by_path_seg = |seg: &str| {
            next_is(':')
                && matches!(scan.tokens.get(idx + 2), Some((_, Tok::Punct(':'))))
                && matches!(scan.tokens.get(idx + 3), Some((_, Tok::Ident(w))) if w == seg)
        };

        match word.as_str() {
            "HashMap" | "HashSet"
                if data_plane && !allowed(&scan, *line, RULE_DEFAULT_HASHER) =>
            {
                out.push(LintViolation {
                    rule: RULE_DEFAULT_HASHER,
                    file: rel.to_string(),
                    line: *line,
                    detail: format!(
                        "`{word}` uses the randomly seeded default hasher; \
data-plane iteration order must be deterministic — use Fx{word} or BTree{}",
                        &word[4..]
                    ),
                });
            }
            "Instant" | "SystemTime"
                if !clock_exempt
                    && followed_by_path_seg("now")
                    && !allowed(&scan, *line, RULE_WALL_CLOCK) =>
            {
                out.push(LintViolation {
                    rule: RULE_WALL_CLOCK,
                    file: rel.to_string(),
                    line: *line,
                    detail: format!(
                        "`{word}::now` reads the host clock; simulated time \
must come from the event queue (benchmark code: annotate lint:allow(wall-clock))"
                    ),
                });
            }
            "unwrap" | "expect"
                if hot_path
                    && next_is('(')
                    && !allowed(&scan, *line, RULE_HOT_PATH_PANIC) =>
            {
                out.push(LintViolation {
                    rule: RULE_HOT_PATH_PANIC,
                    file: rel.to_string(),
                    line: *line,
                    detail: format!(
                        "`.{word}(` can abort a worker thread in the packet \
hot path; handle the None/Err arm or annotate lint:allow(hot-path-panic)"
                    ),
                });
            }
            "FxHashMap"
                if data_plane
                    && next_is('<')
                    // first type parameter is `FiveTuple`, bare or at the
                    // end of a path like `sdm_netsim::FiveTuple`
                    && (matches!(scan.tokens.get(idx + 2),
                            Some((_, Tok::Ident(w))) if w == "FiveTuple")
                        || (matches!(scan.tokens.get(idx + 3), Some((_, Tok::Punct(':'))))
                            && matches!(scan.tokens.get(idx + 4), Some((_, Tok::Punct(':'))))
                            && matches!(scan.tokens.get(idx + 5),
                                Some((_, Tok::Ident(w))) if w == "FiveTuple")))
                    && !allowed(&scan, *line, RULE_PER_FLOW_MAP) =>
            {
                out.push(LintViolation {
                    rule: RULE_PER_FLOW_MAP,
                    file: rel.to_string(),
                    line: *line,
                    detail: "`FxHashMap<FiveTuple, _>` reintroduces resize \
spikes and unbounded per-flow memory; keep per-flow state in the \
open-addressed FlowTable/OaTable (or annotate lint:allow(per-flow-map))"
                        .to_string(),
                });
            }
            "HashSet" | "FxHashSet"
                if diagnostic && !allowed(&scan, *line, RULE_SET_ORDER) =>
            {
                out.push(LintViolation {
                    rule: RULE_SET_ORDER,
                    file: rel.to_string(),
                    line: *line,
                    detail: format!(
                        "`{word}` iteration order is an accident of insertion \
history; diagnostic output must be byte-stable — use BTreeSet or a sorted Vec \
(or annotate lint:allow(set-iteration-order))"
                    ),
                });
            }
            "unsafe" if !allowed(&scan, *line, RULE_UNSAFE_CODE) => {
                out.push(LintViolation {
                    rule: RULE_UNSAFE_CODE,
                    file: rel.to_string(),
                    line: *line,
                    detail: "`unsafe` block or fn; the workspace forbids \
unsafe code"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, crate_name: &str, src: &str) -> Vec<LintViolation> {
        let mut out = Vec::new();
        lint_source(rel, crate_name, src, &mut out);
        out
    }

    #[test]
    fn bans_default_hasher_in_data_plane_only() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }\n";
        let hits = lint_str("crates/core/src/x.rs", "core", src);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|v| v.rule == RULE_DEFAULT_HASHER));
        assert!(lint_str("crates/lp/src/x.rs", "lp", src).is_empty());
    }

    #[test]
    fn fx_collections_do_not_match() {
        let src = "use sdm_util::FxHashMap;\nfn f(m: FxHashMap<u32, u32>, s: FxHashSet<u8>) {}\n";
        assert!(lint_str("crates/core/src/x.rs", "core", src).is_empty());
    }

    #[test]
    fn comments_strings_and_tests_are_skipped() {
        let src = r##"
// HashMap in a comment is fine
/* HashMap in a block comment too */
fn f() { let s = "HashMap"; let r = r#"HashSet"#; }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _m: HashMap<u8, u8> = HashMap::new(); x.unwrap(); }
}
"##;
        assert!(lint_str("crates/core/src/shard.rs", "core", src).is_empty());
    }

    #[test]
    fn wall_clock_banned_outside_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let hits = lint_str("crates/bench/src/bin/x.rs", "bench", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_WALL_CLOCK);
        assert!(lint_str("crates/util/src/bench.rs", "util", src).is_empty());
        // `Instant` without `::now` (e.g. a type annotation) is fine.
        let decl = "fn g(t: Instant) {}\n";
        assert!(lint_str("crates/core/src/x.rs", "core", decl).is_empty());
    }

    #[test]
    fn hot_path_panic_flagged_and_allowable() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        let hits = lint_str("crates/netsim/src/engine.rs", "netsim", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_HOT_PATH_PANIC);
        // Same code outside the hot path: no finding.
        assert!(lint_str("crates/netsim/src/addr.rs", "netsim", src).is_empty());
        // Suppressed on the preceding line.
        let allowed = "// lint:allow(hot-path-panic)\nfn f(x: Option<u8>) { x.unwrap(); }\n";
        assert!(lint_str("crates/netsim/src/engine.rs", "netsim", allowed).is_empty());
        // Suppressed on the same line.
        let inline = "fn f(x: Option<u8>) { x.expect(\"y\"); } // lint:allow(hot-path-panic)\n";
        assert!(lint_str("crates/netsim/src/engine.rs", "netsim", inline).is_empty());
    }

    #[test]
    fn set_iteration_order_banned_in_diagnostic_crates_only() {
        let src = "use std::collections::HashSet;\n\
fn f() { let s: HashSet<u32> = HashSet::new(); let t = FxHashSet::default(); }\n";
        let hits = lint_str("crates/verify/src/reach.rs", "verify", src);
        assert_eq!(hits.len(), 4, "{hits:?}");
        assert!(hits.iter().all(|v| v.rule == RULE_SET_ORDER));
        // Outside the diagnostic crates FxHashSet stays legal (and bare
        // HashSet is the default-hasher rule's business, not this one's).
        let hits = lint_str("crates/core/src/x.rs", "core", "fn f(s: FxHashSet<u8>) {}\n");
        assert!(hits.is_empty(), "{hits:?}");
        let hits = lint_str("crates/core/src/x.rs", "core", "fn f(s: HashSet<u8>) {}\n");
        assert!(hits.iter().all(|v| v.rule == RULE_DEFAULT_HASHER), "{hits:?}");
        // BTreeSet is the sanctioned container.
        let hits = lint_str("crates/verify/src/reach.rs", "verify", "fn f(s: BTreeSet<u8>) {}\n");
        assert!(hits.is_empty(), "{hits:?}");
        // lint:allow suppresses.
        let src = "fn f() { let s: FxHashSet<u8> = x; } // lint:allow(set-iteration-order)\n";
        assert!(lint_str("crates/verify/src/x.rs", "verify", src).is_empty());
    }

    #[test]
    fn per_flow_map_flagged_in_data_plane() {
        let src = "fn f() { let m: FxHashMap<FiveTuple, u64> = FxHashMap::default(); }\n";
        let hits = lint_str("crates/core/src/x.rs", "core", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_PER_FLOW_MAP);
        // path-qualified key also caught
        let qualified = "struct S { m: FxHashMap<sdm_netsim::FiveTuple, u64> }\n";
        let hits = lint_str("crates/policy/src/x.rs", "policy", qualified);
        assert_eq!(hits.len(), 1, "{hits:?}");
        // other keys are fine, and so is the bench crate
        let other = "fn f(m: FxHashMap<u32, FiveTuple>) {}\n";
        assert!(lint_str("crates/core/src/x.rs", "core", other).is_empty());
        assert!(lint_str("crates/bench/src/x.rs", "bench", src).is_empty());
        // suppressible in place
        let allowed =
            "// lint:allow(per-flow-map)\nfn f(m: FxHashMap<FiveTuple, u64>) {}\n";
        assert!(lint_str("crates/core/src/x.rs", "core", allowed).is_empty());
    }

    #[test]
    fn unsafe_keyword_flagged_everywhere() {
        let src = "fn f() { let p = 0u8; let _ = p; }\nfn g() { unsafe { } }\n";
        let hits = lint_str("crates/lp/src/x.rs", "lp", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_UNSAFE_CODE);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn lifetimes_and_char_literals_do_not_derail() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = 'u'; let d = '\\n'; c }\n\
fn g() { let _m: HashMap<u8, u8>; }\n";
        let hits = lint_str("crates/core/src/x.rs", "core", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn workspace_scan_runs_on_real_tree() {
        // The real workspace must lint clean — this is the same invariant
        // ci.sh enforces via the sdm-lint bin.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let violations = lint_workspace(&LintConfig::new(&root)).expect("scan");
        assert!(
            violations.is_empty(),
            "workspace must lint clean:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
