//! Static analysis for dependable enforcement.
//!
//! The paper's premise is *dependable* policy enforcement on
//! policy-oblivious routers; this crate makes "dependable" a statically
//! checked property rather than a hope. It provides two independent
//! passes:
//!
//! * [`plan`] — the **enforcement-plan verifier**. Given a neutral view
//!   of a deployment (topology size, addressing, middleboxes, policy
//!   chains, candidate sets `M_x^e`, LP steering weights and runtime
//!   options), [`plan::verify_plan`] proves the invariants packet
//!   delivery rests on before any packet is injected, and reports every
//!   violation as a structured [`plan::VerifyError`] with a stable
//!   `V0xx` code. `sdm-core` calls it fail-fast from `Controller::new`
//!   and `Controller::run_sharded`; the `verify-plan` bench bin emits
//!   the JSON report for CI.
//!
//! * [`lint`] — the **source lint** behind the `sdm-lint` binary: a
//!   hermetic, zero-dependency token-level scanner over `crates/*/src`
//!   that machine-enforces the workspace's determinism and robustness
//!   conventions (no default-hasher maps in the data plane, no
//!   wall-clock reads outside benchmarking code, no panicking
//!   combinators in the packet hot path, `#![forbid/deny(unsafe_code)]`
//!   in every crate). Violations are suppressed line-by-line with
//!   `// lint:allow(<rule>)`.
//!
//! Both passes are offline and deterministic: same input, same report,
//! byte for byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
pub mod plan;
pub mod reach;
pub mod witness;

pub use lint::{lint_workspace, LintConfig, LintViolation};
pub use plan::{
    verify_plan, verify_plan_routed, CandidateSet, ChainView, ErrorCode, MboxView, OptionsView,
    PlanView, Point, Severity, VerifyError, VerifyReport, WeightColumn, WeightsView,
};
pub use reach::{
    check_assertions, parse_assertions, walk_route, Assertion, AssertionResult, FlowClass,
    HazardView, ProtoSet, ReachCode, ReachFinding, ReachReport, ReachView, ReachWitness,
    RouteView, RuleView, StrategyView, Walk,
};
pub use witness::{
    corpus_from_json, corpus_to_json, protocol_from_number, ReplayScenario, ReplayStep,
    StepExpect, WitnessFlow,
};
