//! Property tests for the policy crate. The central invariant: the
//! hierarchical-trie classifier is *exactly* equivalent to the linear
//! first-match scan over arbitrary policy sets and packets.

use proptest::prelude::*;
use sdm_netsim::{FiveTuple, Ipv4Addr, Prefix, Protocol, SimTime};
use sdm_policy::{
    ActionList, FlowTable, NetworkFunction, Policy, PolicyId, PolicySet, PortMatch,
    TrafficDescriptor, TrieClassifier,
};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::new(Ipv4Addr(addr), len))
}

fn arb_port_match() -> impl Strategy<Value = PortMatch> {
    prop_oneof![
        Just(PortMatch::Any),
        (0u16..200).prop_map(PortMatch::Exact),
        (0u16..100, 0u16..100).prop_map(|(a, b)| PortMatch::Range(a.min(b), a.max(b))),
    ]
}

fn arb_proto() -> impl Strategy<Value = Protocol> {
    prop_oneof![Just(Protocol::Tcp), Just(Protocol::Udp)]
}

fn arb_descriptor() -> impl Strategy<Value = TrafficDescriptor> {
    (
        arb_prefix(),
        arb_prefix(),
        arb_port_match(),
        arb_port_match(),
        proptest::option::of(arb_proto()),
    )
        .prop_map(|(src, dst, sp, dp, proto)| {
            let mut d = TrafficDescriptor::new()
                .src_prefix(src)
                .dst_prefix(dst)
                .src_port(sp)
                .dst_port(dp);
            if let Some(p) = proto {
                d = d.protocol(p);
            }
            d
        })
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    (arb_descriptor(), proptest::collection::vec(0u8..4, 0..4)).prop_map(|(d, fs)| {
        let functions: Vec<NetworkFunction> = fs
            .into_iter()
            .map(|i| NetworkFunction::EVALUATION_SET[i as usize])
            .collect();
        Policy::new(d, ActionList::chain(functions))
    })
}

fn arb_policy_set() -> impl Strategy<Value = PolicySet> {
    proptest::collection::vec(arb_policy(), 0..40).prop_map(|v| v.into_iter().collect())
}

/// Packets biased towards the same address space the descriptors use, so
/// matches actually occur.
fn arb_packet() -> impl Strategy<Value = FiveTuple> {
    (
        any::<u32>(),
        any::<u32>(),
        0u16..250,
        0u16..250,
        arb_proto(),
        any::<u8>(),
    )
        .prop_map(|(src, dst, sp, dp, proto, fuzz)| FiveTuple {
            // keep some high bits fixed sometimes to hit narrow prefixes
            src: Ipv4Addr(if fuzz % 3 == 0 { src & 0x00FF_FFFF } else { src }),
            dst: Ipv4Addr(if fuzz % 2 == 0 { dst & 0x0000_FFFF } else { dst }),
            src_port: sp,
            dst_port: dp,
            proto,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The trie classifier and the linear scan agree on every packet.
    #[test]
    fn trie_equals_linear_scan(
        set in arb_policy_set(),
        packets in proptest::collection::vec(arb_packet(), 1..50),
    ) {
        let trie = TrieClassifier::build(&set);
        for ft in &packets {
            let expect = set.first_match(ft).map(|(id, _)| id);
            prop_assert_eq!(trie.classify(ft), expect, "packet {}", ft);
        }
    }

    /// first_match always returns the minimal matching id.
    #[test]
    fn first_match_is_minimal(
        set in arb_policy_set(),
        ft in arb_packet(),
    ) {
        let all: Vec<PolicyId> = set
            .iter()
            .filter(|(_, p)| p.descriptor.matches(&ft))
            .map(|(id, _)| id)
            .collect();
        prop_assert_eq!(set.first_match(&ft).map(|(id, _)| id), all.first().copied());
    }

    /// Relevance projections are sound: a packet sourced in a subnet can
    /// only match a policy that the projection for that subnet contains.
    #[test]
    fn projection_soundness(
        set in arb_policy_set(),
        ft in arb_packet(),
        len in 0u8..=24,
    ) {
        let subnet = Prefix::new(ft.src, len); // subnet containing the source
        let ids = set.relevant_to_source(subnet);
        let proj = set.project(&ids);
        prop_assert_eq!(
            set.first_match(&ft).map(|(id, _)| id),
            proj.first_match(&ft).map(|(id, _)| id)
        );
    }

    /// The text format round-trips arbitrary policies exactly.
    #[test]
    fn text_format_round_trips(policy_set in arb_policy_set()) {
        for (_, p) in policy_set.iter() {
            let line = sdm_policy::policy_to_line(p);
            let back = sdm_policy::parse_policy_line(&line, 1)
                .unwrap_or_else(|e| panic!("reparse of '{line}' failed: {e}"));
            prop_assert_eq!(p, &back, "via '{}'", line);
        }
    }

    /// Soundness of the shadowing check: `covered_by` implies actual
    /// coverage — any packet the covered descriptor matches, the covering
    /// one matches too.
    #[test]
    fn covered_by_is_sound(
        a in arb_descriptor(),
        b in arb_descriptor(),
        packets in proptest::collection::vec(arb_packet(), 30),
    ) {
        if a.covered_by(&b) {
            for ft in &packets {
                if a.matches(ft) {
                    prop_assert!(b.matches(ft), "covering descriptor missed {ft}");
                }
            }
        }
    }

    /// Soundness of `find_shadowed`: a flagged policy can truly never be
    /// the first match.
    #[test]
    fn shadowed_policies_never_fire(
        set in arb_policy_set(),
        packets in proptest::collection::vec(arb_packet(), 40),
    ) {
        let shadowed: Vec<PolicyId> =
            set.find_shadowed().into_iter().map(|(s, _)| s).collect();
        for ft in &packets {
            if let Some((id, _)) = set.first_match(ft) {
                prop_assert!(!shadowed.contains(&id), "shadowed {id} fired for {ft}");
            }
        }
    }

    /// Flow-table round trip: whatever is inserted is returned while fresh,
    /// gone once expired.
    #[test]
    fn flow_table_soft_state(
        ft in arb_packet(),
        ttl in 1u64..1000,
        gap in 0u64..2000,
    ) {
        let mut table = FlowTable::new(ttl);
        table.insert_positive(ft, PolicyId(0), ActionList::permit(), SimTime(0));
        let found = table.lookup(&ft, SimTime(gap), 1).is_some();
        prop_assert_eq!(found, gap <= ttl);
    }
}
