//! Property tests for the policy crate. The central invariant: the
//! hierarchical-trie classifier is *exactly* equivalent to the linear
//! first-match scan over arbitrary policy sets and packets.
//!
//! Each case is a shrinkable `(counts…, seed)` tuple; the domain objects
//! (policy sets, packets) are rebuilt deterministically from the seed
//! inside the property, so shrinking reduces the instance dimensions.

use sdm_netsim::{FiveTuple, Ipv4Addr, Prefix, Protocol, SimTime};
use sdm_policy::{
    ActionList, FlowTable, NetworkFunction, Policy, PolicyId, PolicySet, PortMatch,
    TrafficDescriptor, TrieClassifier,
};
use sdm_util::prop::{check, Config};
use sdm_util::rng::StdRng;
use sdm_util::{prop_assert, prop_assert_eq};

fn gen_prefix(rng: &mut StdRng) -> Prefix {
    Prefix::new(Ipv4Addr(rng.next_u32()), rng.gen_range(0u8..=32))
}

fn gen_port_match(rng: &mut StdRng) -> PortMatch {
    match rng.gen_range(0u8..3) {
        0 => PortMatch::Any,
        1 => PortMatch::Exact(rng.gen_range(0u16..200)),
        _ => {
            let a = rng.gen_range(0u16..100);
            let b = rng.gen_range(0u16..100);
            PortMatch::Range(a.min(b), a.max(b))
        }
    }
}

fn gen_proto(rng: &mut StdRng) -> Protocol {
    if rng.gen_bool(0.5) {
        Protocol::Tcp
    } else {
        Protocol::Udp
    }
}

fn gen_descriptor(rng: &mut StdRng) -> TrafficDescriptor {
    let mut d = TrafficDescriptor::new()
        .src_prefix(gen_prefix(rng))
        .dst_prefix(gen_prefix(rng))
        .src_port(gen_port_match(rng))
        .dst_port(gen_port_match(rng));
    if rng.gen_bool(0.5) {
        d = d.protocol(gen_proto(rng));
    }
    d
}

fn gen_policy(rng: &mut StdRng) -> Policy {
    let d = gen_descriptor(rng);
    let n_fns = rng.gen_range(0usize..4);
    let functions: Vec<NetworkFunction> = (0..n_fns)
        .map(|_| NetworkFunction::EVALUATION_SET[rng.gen_range(0usize..4)])
        .collect();
    Policy::new(d, ActionList::chain(functions))
}

/// A policy set of exactly `n` policies, deterministic in `seed`.
fn gen_policy_set(n: usize, seed: u64) -> PolicySet {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| gen_policy(&mut rng)).collect()
}

/// Packets biased towards the same address space the descriptors use, so
/// matches actually occur.
fn gen_packet(rng: &mut StdRng) -> FiveTuple {
    let (src, dst) = (rng.next_u32(), rng.next_u32());
    let fuzz = rng.gen_range(0u8..6);
    FiveTuple {
        // keep some high bits fixed sometimes to hit narrow prefixes
        src: Ipv4Addr(if fuzz.is_multiple_of(3) { src & 0x00FF_FFFF } else { src }),
        dst: Ipv4Addr(if fuzz.is_multiple_of(2) { dst & 0x0000_FFFF } else { dst }),
        src_port: rng.gen_range(0u16..250),
        dst_port: rng.gen_range(0u16..250),
        proto: gen_proto(rng),
    }
}

fn gen_packets(n: usize, seed: u64) -> Vec<FiveTuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| gen_packet(&mut rng)).collect()
}

/// The trie classifier and the linear scan agree on every packet.
#[test]
fn trie_equals_linear_scan() {
    check(
        "trie_equals_linear_scan",
        &Config::with_cases(256),
        |rng: &mut StdRng| {
            (
                rng.gen_range(0usize..40),
                rng.gen_range(1usize..50),
                rng.next_u64(),
            )
        },
        |&(n_policies, n_packets, seed)| {
            let set = gen_policy_set(n_policies, seed);
            let packets = gen_packets(n_packets.max(1), seed ^ 0xA5A5);
            let trie = TrieClassifier::build(&set);
            for ft in &packets {
                let expect = set.first_match(ft).map(|(id, _)| id);
                prop_assert_eq!(trie.classify(ft), expect, "packet {}", ft);
            }
            Ok(())
        },
    );
}

/// first_match always returns the minimal matching id.
#[test]
fn first_match_is_minimal() {
    check(
        "first_match_is_minimal",
        &Config::with_cases(256),
        |rng: &mut StdRng| (rng.gen_range(0usize..40), rng.next_u64()),
        |&(n_policies, seed)| {
            let set = gen_policy_set(n_policies, seed);
            let ft = gen_packet(&mut StdRng::seed_from_u64(seed ^ 0xF00D));
            let all: Vec<PolicyId> = set
                .iter()
                .filter(|(_, p)| p.descriptor.matches(&ft))
                .map(|(id, _)| id)
                .collect();
            prop_assert_eq!(set.first_match(&ft).map(|(id, _)| id), all.first().copied());
            Ok(())
        },
    );
}

/// Relevance projections are sound: a packet sourced in a subnet can
/// only match a policy that the projection for that subnet contains.
#[test]
fn projection_soundness() {
    check(
        "projection_soundness",
        &Config::with_cases(256),
        |rng: &mut StdRng| {
            (
                rng.gen_range(0usize..40),
                rng.gen_range(0u8..=24),
                rng.next_u64(),
            )
        },
        |&(n_policies, len, seed)| {
            let set = gen_policy_set(n_policies, seed);
            let ft = gen_packet(&mut StdRng::seed_from_u64(seed ^ 0xBEEF));
            let subnet = Prefix::new(ft.src, len.min(24)); // subnet containing the source
            let ids = set.relevant_to_source(subnet);
            let proj = set.project(&ids);
            prop_assert_eq!(
                set.first_match(&ft).map(|(id, _)| id),
                proj.first_match(&ft).map(|(id, _)| id)
            );
            Ok(())
        },
    );
}

/// The text format round-trips arbitrary policies exactly.
#[test]
fn text_format_round_trips() {
    check(
        "text_format_round_trips",
        &Config::with_cases(256),
        |rng: &mut StdRng| (rng.gen_range(0usize..40), rng.next_u64()),
        |&(n_policies, seed)| {
            let policy_set = gen_policy_set(n_policies, seed);
            for (_, p) in policy_set.iter() {
                let line = sdm_policy::policy_to_line(p);
                let back = sdm_policy::parse_policy_line(&line, 1)
                    .unwrap_or_else(|e| panic!("reparse of '{line}' failed: {e}"));
                prop_assert_eq!(p, &back, "via '{}'", line);
            }
            Ok(())
        },
    );
}

/// Soundness of the shadowing check: `covered_by` implies actual
/// coverage — any packet the covered descriptor matches, the covering
/// one matches too.
#[test]
fn covered_by_is_sound() {
    check(
        "covered_by_is_sound",
        &Config::with_cases(256),
        |rng: &mut StdRng| rng.next_u64(),
        |&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = gen_descriptor(&mut rng);
            let b = gen_descriptor(&mut rng);
            let packets = gen_packets(30, seed ^ 0xCAFE);
            if a.covered_by(&b) {
                for ft in &packets {
                    if a.matches(ft) {
                        prop_assert!(b.matches(ft), "covering descriptor missed {ft}");
                    }
                }
            }
            Ok(())
        },
    );
}

/// Soundness of `find_shadowed`: a flagged policy can truly never be
/// the first match.
#[test]
fn shadowed_policies_never_fire() {
    check(
        "shadowed_policies_never_fire",
        &Config::with_cases(256),
        |rng: &mut StdRng| (rng.gen_range(0usize..40), rng.next_u64()),
        |&(n_policies, seed)| {
            let set = gen_policy_set(n_policies, seed);
            let packets = gen_packets(40, seed ^ 0xD00D);
            let shadowed: Vec<PolicyId> =
                set.find_shadowed().into_iter().map(|(s, _)| s).collect();
            for ft in &packets {
                if let Some((id, _)) = set.first_match(ft) {
                    prop_assert!(!shadowed.contains(&id), "shadowed {id} fired for {ft}");
                }
            }
            Ok(())
        },
    );
}

/// Flow-table round trip: whatever is inserted is returned while fresh,
/// gone once expired.
#[test]
fn flow_table_soft_state() {
    check(
        "flow_table_soft_state",
        &Config::with_cases(256),
        |rng: &mut StdRng| {
            (
                rng.gen_range(1u64..1000),
                rng.gen_range(0u64..2000),
                rng.next_u64(),
            )
        },
        |&(ttl, gap, seed)| {
            let ttl = ttl.max(1);
            let ft = gen_packet(&mut StdRng::seed_from_u64(seed));
            let mut table = FlowTable::new(ttl);
            table.insert_positive(ft, PolicyId(0), ActionList::permit(), SimTime(0));
            let found = table.lookup(&ft, SimTime(gap), 1).is_some();
            prop_assert_eq!(found, gap <= ttl);
            Ok(())
        },
    );
}
