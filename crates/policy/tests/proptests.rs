//! Property tests for the policy crate. The central invariant: the
//! hierarchical-trie classifier is *exactly* equivalent to the linear
//! first-match scan over arbitrary policy sets and packets.
//!
//! Each case is a shrinkable `(counts…, seed)` tuple; the domain objects
//! (policy sets, packets) are rebuilt deterministically from the seed
//! inside the property, so shrinking reduces the instance dimensions.

use sdm_netsim::{FiveTuple, Ipv4Addr, Label, Prefix, Protocol, SimTime};
use sdm_policy::{
    ActionList, FlowEntry, FlowTable, FlowTableStats, NetworkFunction, Policy, PolicyId,
    PolicySet, PortMatch, TrafficDescriptor, TrieClassifier,
};
use sdm_util::prop::{check, Config};
use sdm_util::rng::StdRng;
use sdm_util::{prop_assert, prop_assert_eq, FxHashMap};

fn gen_prefix(rng: &mut StdRng) -> Prefix {
    Prefix::new(Ipv4Addr(rng.next_u32()), rng.gen_range(0u8..=32))
}

fn gen_port_match(rng: &mut StdRng) -> PortMatch {
    match rng.gen_range(0u8..3) {
        0 => PortMatch::Any,
        1 => PortMatch::Exact(rng.gen_range(0u16..200)),
        _ => {
            let a = rng.gen_range(0u16..100);
            let b = rng.gen_range(0u16..100);
            PortMatch::Range(a.min(b), a.max(b))
        }
    }
}

fn gen_proto(rng: &mut StdRng) -> Protocol {
    if rng.gen_bool(0.5) {
        Protocol::Tcp
    } else {
        Protocol::Udp
    }
}

fn gen_descriptor(rng: &mut StdRng) -> TrafficDescriptor {
    let mut d = TrafficDescriptor::new()
        .src_prefix(gen_prefix(rng))
        .dst_prefix(gen_prefix(rng))
        .src_port(gen_port_match(rng))
        .dst_port(gen_port_match(rng));
    if rng.gen_bool(0.5) {
        d = d.protocol(gen_proto(rng));
    }
    d
}

fn gen_policy(rng: &mut StdRng) -> Policy {
    let d = gen_descriptor(rng);
    let n_fns = rng.gen_range(0usize..4);
    let functions: Vec<NetworkFunction> = (0..n_fns)
        .map(|_| NetworkFunction::EVALUATION_SET[rng.gen_range(0usize..4)])
        .collect();
    Policy::new(d, ActionList::chain(functions))
}

/// A policy set of exactly `n` policies, deterministic in `seed`.
fn gen_policy_set(n: usize, seed: u64) -> PolicySet {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| gen_policy(&mut rng)).collect()
}

/// Packets biased towards the same address space the descriptors use, so
/// matches actually occur.
fn gen_packet(rng: &mut StdRng) -> FiveTuple {
    let (src, dst) = (rng.next_u32(), rng.next_u32());
    let fuzz = rng.gen_range(0u8..6);
    FiveTuple {
        // keep some high bits fixed sometimes to hit narrow prefixes
        src: Ipv4Addr(if fuzz.is_multiple_of(3) { src & 0x00FF_FFFF } else { src }),
        dst: Ipv4Addr(if fuzz.is_multiple_of(2) { dst & 0x0000_FFFF } else { dst }),
        src_port: rng.gen_range(0u16..250),
        dst_port: rng.gen_range(0u16..250),
        proto: gen_proto(rng),
    }
}

fn gen_packets(n: usize, seed: u64) -> Vec<FiveTuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| gen_packet(&mut rng)).collect()
}

/// The trie classifier and the linear scan agree on every packet.
#[test]
fn trie_equals_linear_scan() {
    check(
        "trie_equals_linear_scan",
        &Config::with_cases(256),
        |rng: &mut StdRng| {
            (
                rng.gen_range(0usize..40),
                rng.gen_range(1usize..50),
                rng.next_u64(),
            )
        },
        |&(n_policies, n_packets, seed)| {
            let set = gen_policy_set(n_policies, seed);
            let packets = gen_packets(n_packets.max(1), seed ^ 0xA5A5);
            let trie = TrieClassifier::build(&set);
            for ft in &packets {
                let expect = set.first_match(ft).map(|(id, _)| id);
                prop_assert_eq!(trie.classify(ft), expect, "packet {}", ft);
            }
            Ok(())
        },
    );
}

/// first_match always returns the minimal matching id.
#[test]
fn first_match_is_minimal() {
    check(
        "first_match_is_minimal",
        &Config::with_cases(256),
        |rng: &mut StdRng| (rng.gen_range(0usize..40), rng.next_u64()),
        |&(n_policies, seed)| {
            let set = gen_policy_set(n_policies, seed);
            let ft = gen_packet(&mut StdRng::seed_from_u64(seed ^ 0xF00D));
            let all: Vec<PolicyId> = set
                .iter()
                .filter(|(_, p)| p.descriptor.matches(&ft))
                .map(|(id, _)| id)
                .collect();
            prop_assert_eq!(set.first_match(&ft).map(|(id, _)| id), all.first().copied());
            Ok(())
        },
    );
}

/// Relevance projections are sound: a packet sourced in a subnet can
/// only match a policy that the projection for that subnet contains.
#[test]
fn projection_soundness() {
    check(
        "projection_soundness",
        &Config::with_cases(256),
        |rng: &mut StdRng| {
            (
                rng.gen_range(0usize..40),
                rng.gen_range(0u8..=24),
                rng.next_u64(),
            )
        },
        |&(n_policies, len, seed)| {
            let set = gen_policy_set(n_policies, seed);
            let ft = gen_packet(&mut StdRng::seed_from_u64(seed ^ 0xBEEF));
            let subnet = Prefix::new(ft.src, len.min(24)); // subnet containing the source
            let ids = set.relevant_to_source(subnet);
            let proj = set.project(&ids);
            prop_assert_eq!(
                set.first_match(&ft).map(|(id, _)| id),
                proj.first_match(&ft).map(|(id, _)| id)
            );
            Ok(())
        },
    );
}

/// The text format round-trips arbitrary policies exactly.
#[test]
fn text_format_round_trips() {
    check(
        "text_format_round_trips",
        &Config::with_cases(256),
        |rng: &mut StdRng| (rng.gen_range(0usize..40), rng.next_u64()),
        |&(n_policies, seed)| {
            let policy_set = gen_policy_set(n_policies, seed);
            for (_, p) in policy_set.iter() {
                let line = sdm_policy::policy_to_line(p);
                let back = sdm_policy::parse_policy_line(&line, 1)
                    .unwrap_or_else(|e| panic!("reparse of '{line}' failed: {e}"));
                prop_assert_eq!(p, &back, "via '{}'", line);
            }
            Ok(())
        },
    );
}

/// Soundness of the shadowing check: `covered_by` implies actual
/// coverage — any packet the covered descriptor matches, the covering
/// one matches too.
#[test]
fn covered_by_is_sound() {
    check(
        "covered_by_is_sound",
        &Config::with_cases(256),
        |rng: &mut StdRng| rng.next_u64(),
        |&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = gen_descriptor(&mut rng);
            let b = gen_descriptor(&mut rng);
            let packets = gen_packets(30, seed ^ 0xCAFE);
            if a.covered_by(&b) {
                for ft in &packets {
                    if a.matches(ft) {
                        prop_assert!(b.matches(ft), "covering descriptor missed {ft}");
                    }
                }
            }
            Ok(())
        },
    );
}

/// Soundness of `find_shadowed`: a flagged policy can truly never be
/// the first match.
#[test]
fn shadowed_policies_never_fire() {
    check(
        "shadowed_policies_never_fire",
        &Config::with_cases(256),
        |rng: &mut StdRng| (rng.gen_range(0usize..40), rng.next_u64()),
        |&(n_policies, seed)| {
            let set = gen_policy_set(n_policies, seed);
            let packets = gen_packets(40, seed ^ 0xD00D);
            let shadowed: Vec<PolicyId> =
                set.find_shadowed().into_iter().map(|(s, _)| s).collect();
            for ft in &packets {
                if let Some((id, _)) = set.first_match(ft) {
                    prop_assert!(!shadowed.contains(&id), "shadowed {id} fired for {ft}");
                }
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------------
// Flow-table model equivalence (PR 9)
//
// The open-addressed storage layer replaced two `FxHashMap`s. The reference
// model below *is* that old implementation — plain maps with the documented
// fate logic — and the properties drive both through random op sequences,
// comparing every observable (lookup views, mutator returns, purge counts,
// stats, len) after every step. Shrinking reduces `(n_keys, n_ops, ttl,
// seed)`, so a failure reports a minimal op sequence.
// ---------------------------------------------------------------------------

/// The action list a generated policy id maps to — a pure function, so the
/// table and the model intern identical classes.
fn actions_for(policy: u32) -> ActionList {
    ActionList::chain(
        (0..=(policy as usize % 3))
            .map(|i| NetworkFunction::EVALUATION_SET[(policy as usize + i) % 4]),
    )
}

#[derive(Debug, Clone, Copy)]
enum TableOp {
    Lookup { key: usize, weight: u64 },
    InsertPos { key: usize, policy: u32 },
    InsertNeg { key: usize },
    SetLabel { key: usize, label: u16 },
    PinNext { key: usize, next: u32 },
    FlagSwitched { key: usize },
    ReadPin { key: usize },
    Purge,
}

impl TableOp {
    fn key(&self) -> Option<usize> {
        match *self {
            TableOp::Lookup { key, .. }
            | TableOp::InsertPos { key, .. }
            | TableOp::InsertNeg { key }
            | TableOp::SetLabel { key, .. }
            | TableOp::PinNext { key, .. }
            | TableOp::FlagSwitched { key }
            | TableOp::ReadPin { key } => Some(key),
            TableOp::Purge => None,
        }
    }
}

/// A timestamped op sequence, deterministic in `seed`, with monotone
/// non-decreasing time (the table's documented clock contract). When
/// `neg_bias` is set the mix is dominated by negative inserts, to drive the
/// capacity-capped negative cache into eviction.
fn gen_table_ops(
    n_keys: usize,
    n_ops: usize,
    ttl: u64,
    seed: u64,
    neg_bias: bool,
) -> Vec<(SimTime, TableOp)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0u64;
    (0..n_ops)
        .map(|_| {
            now += rng.gen_range(0..=(ttl / 3).max(1));
            let key = rng.gen_range(0..n_keys);
            let roll = rng.gen_range(0u8..16);
            let op = if neg_bias && roll < 8 {
                TableOp::InsertNeg { key }
            } else {
                match roll {
                    0..=5 => TableOp::Lookup { key, weight: rng.gen_range(1u64..4) },
                    6..=8 => TableOp::InsertPos { key, policy: rng.gen_range(0u32..5) },
                    9..=10 => TableOp::InsertNeg { key },
                    11 => TableOp::SetLabel { key, label: rng.gen_range(0u16..100) },
                    12 => TableOp::PinNext { key, next: rng.gen_range(0u32..16) },
                    13 => TableOp::FlagSwitched { key },
                    14 => TableOp::ReadPin { key },
                    _ => TableOp::Purge,
                }
            };
            (SimTime(now), op)
        })
        .collect()
}

/// Comparable outcome of one op.
#[derive(Debug, PartialEq)]
enum OpOut {
    Entry(Option<FlowEntry>),
    Flag(bool),
    Pin(Option<u32>),
    Count(usize),
}

fn apply_real(t: &mut FlowTable, keys: &[FiveTuple], now: SimTime, op: TableOp) -> OpOut {
    match op {
        TableOp::Lookup { key, weight } => OpOut::Entry(t.lookup(&keys[key], now, weight)),
        TableOp::InsertPos { key, policy } => {
            t.insert_positive(keys[key], PolicyId(policy), actions_for(policy), now);
            OpOut::Count(0)
        }
        TableOp::InsertNeg { key } => {
            t.insert_negative(keys[key], now);
            OpOut::Count(0)
        }
        TableOp::SetLabel { key, label } => OpOut::Flag(t.set_label(&keys[key], Label(label))),
        TableOp::PinNext { key, next } => OpOut::Flag(t.pin_next(&keys[key], next)),
        TableOp::FlagSwitched { key } => OpOut::Flag(t.flag_label_switched(&keys[key])),
        TableOp::ReadPin { key } => OpOut::Pin(t.pinned_next(&keys[key])),
        TableOp::Purge => OpOut::Count(t.purge_expired(now)),
    }
}

/// The pre-PR9 implementation, verbatim: two `FxHashMap`s and the documented
/// fate logic. Lives in tests only — `sdm-lint` bans per-flow maps from the
/// data-plane source trees.
#[derive(Debug)]
struct RefTable {
    pos: FxHashMap<FiveTuple, RefPos>,
    neg: FxHashMap<FiveTuple, u64>,
    ttl: u64,
    stats: FlowTableStats,
}

#[derive(Debug, Clone)]
struct RefPos {
    policy: PolicyId,
    actions: ActionList,
    label: Option<Label>,
    pinned: Option<u32>,
    label_switched: bool,
    last_seen: u64,
}

impl RefTable {
    fn new(ttl: u64) -> Self {
        RefTable {
            pos: FxHashMap::default(),
            neg: FxHashMap::default(),
            ttl,
            stats: FlowTableStats::default(),
        }
    }

    fn lookup(&mut self, ft: &FiveTuple, now: SimTime, weight: u64) -> Option<FlowEntry> {
        let pos_stale = self
            .pos
            .get(ft)
            .map(|e| now.0.saturating_sub(e.last_seen) >= self.ttl);
        match pos_stale {
            Some(true) => {
                self.pos.remove(ft);
                self.stats.expired += 1;
                self.stats.misses += weight;
                return None;
            }
            Some(false) => {
                self.stats.hits += weight;
                let e = self.pos.get_mut(ft).expect("present");
                e.last_seen = now.0;
                return Some(FlowEntry {
                    action: Some((e.policy, e.actions.clone())),
                    label: e.label,
                    label_switched: e.label_switched,
                    pinned_next: e.pinned,
                });
            }
            None => {}
        }
        let neg_stale = self.neg.get(ft).map(|ls| now.0.saturating_sub(*ls) >= self.ttl);
        match neg_stale {
            Some(true) => {
                self.neg.remove(ft);
                self.stats.expired += 1;
                self.stats.misses += weight;
                None
            }
            Some(false) => {
                self.stats.hits += weight;
                self.stats.negative_hits += weight;
                *self.neg.get_mut(ft).expect("present") = now.0;
                Some(FlowEntry {
                    action: None,
                    label: None,
                    label_switched: false,
                    pinned_next: None,
                })
            }
            None => {
                self.stats.misses += weight;
                None
            }
        }
    }

    fn purge_expired(&mut self, now: SimTime) -> usize {
        let ttl = self.ttl;
        let before = self.pos.len() + self.neg.len();
        self.pos.retain(|_, e| now.0.saturating_sub(e.last_seen) < ttl);
        self.neg.retain(|_, ls| now.0.saturating_sub(*ls) < ttl);
        let dropped = before - self.pos.len() - self.neg.len();
        self.stats.expired += dropped as u64;
        dropped
    }

    fn len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    fn apply(&mut self, keys: &[FiveTuple], now: SimTime, op: TableOp) -> OpOut {
        match op {
            TableOp::Lookup { key, weight } => OpOut::Entry(self.lookup(&keys[key], now, weight)),
            TableOp::InsertPos { key, policy } => {
                self.neg.remove(&keys[key]);
                self.pos.insert(
                    keys[key],
                    RefPos {
                        policy: PolicyId(policy),
                        actions: actions_for(policy),
                        label: None,
                        pinned: None,
                        label_switched: false,
                        last_seen: now.0,
                    },
                );
                OpOut::Count(0)
            }
            TableOp::InsertNeg { key } => {
                self.pos.remove(&keys[key]);
                self.neg.insert(keys[key], now.0);
                OpOut::Count(0)
            }
            TableOp::SetLabel { key, label } => OpOut::Flag(match self.pos.get_mut(&keys[key]) {
                Some(e) => {
                    e.label = Some(Label(label));
                    true
                }
                None => false,
            }),
            TableOp::PinNext { key, next } => OpOut::Flag(match self.pos.get_mut(&keys[key]) {
                Some(e) => {
                    e.pinned = Some(next);
                    true
                }
                None => false,
            }),
            TableOp::FlagSwitched { key } => OpOut::Flag(match self.pos.get_mut(&keys[key]) {
                Some(e) => {
                    e.label_switched = true;
                    true
                }
                None => false,
            }),
            TableOp::ReadPin { key } => {
                OpOut::Pin(self.pos.get(&keys[key]).and_then(|e| e.pinned))
            }
            TableOp::Purge => OpOut::Count(self.purge_expired(now)),
        }
    }
}

/// The open-addressed flow table is observationally equivalent to the old
/// FxHashMap implementation: identical lookup views, mutator returns, purge
/// counts, stats and len after every op of a random sequence.
#[test]
fn flow_table_matches_fxhashmap_reference() {
    check(
        "flow_table_matches_fxhashmap_reference",
        &Config::with_cases(256),
        |rng: &mut StdRng| {
            (
                rng.gen_range(1usize..48),
                rng.gen_range(1usize..150),
                rng.gen_range(2u64..60),
                rng.next_u64(),
            )
        },
        |&(n_keys, n_ops, ttl, seed)| {
            let n_keys = n_keys.max(1);
            let ttl = ttl.max(1);
            let keys = gen_packets(n_keys, seed ^ 0x0A7A);
            let ops = gen_table_ops(n_keys, n_ops, ttl, seed, false);
            // Default negative capacity (64k) dwarfs the key population, so
            // the capless model stays comparable: no evictions can occur.
            let mut real = FlowTable::new(ttl);
            let mut model = RefTable::new(ttl);
            for (step, &(now, op)) in ops.iter().enumerate() {
                let a = apply_real(&mut real, &keys, now, op);
                let b = model.apply(&keys, now, op);
                prop_assert_eq!(&a, &b, "step {} ({:?} at {:?})", step, op, now);
                prop_assert_eq!(real.stats(), model.stats, "stats after step {}", step);
                prop_assert_eq!(real.len(), model.len(), "len after step {}", step);
            }
            prop_assert_eq!(real.negative_evictions(), 0, "capless regime violated");
            Ok(())
        },
    );
}

/// Interleaving budgeted sweeps anywhere in an op sequence never changes
/// what lookups observe: sweep drops exactly the entries lookup would
/// reject, so hit/miss/negative accounting and all views stay identical,
/// and a final purge leaves both tables with the same residents. (Only the
/// *attribution* of `expired` — sweep vs. the next touch — may differ.)
#[test]
fn budgeted_sweep_is_transparent_to_lookups() {
    check(
        "budgeted_sweep_is_transparent_to_lookups",
        &Config::with_cases(192),
        |rng: &mut StdRng| {
            (
                rng.gen_range(1usize..32),
                rng.gen_range(1usize..120),
                rng.gen_range(2u64..40),
                rng.next_u64(),
            )
        },
        |&(n_keys, n_ops, ttl, seed)| {
            let n_keys = n_keys.max(1);
            let ttl = ttl.max(1);
            let keys = gen_packets(n_keys, seed ^ 0x53EE);
            let ops = gen_table_ops(n_keys, n_ops, ttl, seed, false);
            let mut plain = FlowTable::new(ttl);
            let mut swept = FlowTable::new(ttl);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xB0D6);
            let mut end = SimTime(0);
            for (step, &(now, op)) in ops.iter().enumerate() {
                end = now;
                if rng.gen_bool(0.4) {
                    let _ = swept.sweep(now, rng.gen_range(1usize..16));
                }
                let a = apply_real(&mut plain, &keys, now, op);
                let b = apply_real(&mut swept, &keys, now, op);
                // Mutator/purge returns can legitimately differ (the sweep
                // may already have dropped a stale entry); lookups cannot.
                if let (OpOut::Entry(ea), OpOut::Entry(eb)) = (&a, &b) {
                    prop_assert_eq!(ea, eb, "lookup view at step {}", step);
                }
                let (sa, sb) = (plain.stats(), swept.stats());
                prop_assert_eq!(sa.hits, sb.hits, "hits after step {}", step);
                prop_assert_eq!(sa.negative_hits, sb.negative_hits, "neg hits, step {}", step);
                prop_assert_eq!(sa.misses, sb.misses, "misses after step {}", step);
            }
            plain.purge_expired(end);
            swept.purge_expired(end);
            prop_assert_eq!(plain.len(), swept.len(), "residents after final purge");
            Ok(())
        },
    );
}

/// Batched (vector-path) accounting is exact: for a run of `w` same-flow
/// packets at one instant, `lookup(weight w)`, per-packet `lookup(weight 1)`
/// ×`w`, and the engine's `lookup(1)` + `record_run_*hit(w-1)` shortcut all
/// leave identical stats and state — the SDM_BATCH invariance at table level.
#[test]
fn run_mate_accounting_matches_per_packet_lookups() {
    check(
        "run_mate_accounting_matches_per_packet_lookups",
        &Config::with_cases(192),
        |rng: &mut StdRng| {
            (
                rng.gen_range(1usize..32),
                rng.gen_range(1usize..100),
                rng.gen_range(2u64..40),
                rng.next_u64(),
            )
        },
        |&(n_keys, n_ops, ttl, seed)| {
            let n_keys = n_keys.max(1);
            let ttl = ttl.max(1);
            let keys = gen_packets(n_keys, seed ^ 0xBA7C);
            let ops = gen_table_ops(n_keys, n_ops, ttl, seed, false);
            let mut weighted = FlowTable::new(ttl);
            let mut per_packet = FlowTable::new(ttl);
            let mut shortcut = FlowTable::new(ttl);
            for (step, &(now, op)) in ops.iter().enumerate() {
                if let TableOp::Lookup { key, weight } = op {
                    let ft = &keys[key];
                    let a = weighted.lookup(ft, now, weight);
                    let mut b = None;
                    for _ in 0..weight {
                        b = per_packet.lookup(ft, now, 1);
                    }
                    let c = shortcut.lookup(ft, now, 1);
                    match &c {
                        Some(e) if e.is_negative() => {
                            shortcut.record_run_negative_hit(weight - 1)
                        }
                        Some(_) => shortcut.record_run_hit(weight - 1),
                        // miss: the engine re-looks-up run-mates only after
                        // an insert; with none, they miss individually
                        None => {
                            for _ in 1..weight {
                                let _ = shortcut.lookup(ft, now, 1);
                            }
                        }
                    }
                    prop_assert_eq!(&a, &b, "weighted vs per-packet, step {}", step);
                    prop_assert_eq!(&a, &c, "weighted vs shortcut, step {}", step);
                } else {
                    let _ = apply_real(&mut weighted, &keys, now, op);
                    let _ = apply_real(&mut per_packet, &keys, now, op);
                    let _ = apply_real(&mut shortcut, &keys, now, op);
                }
                prop_assert_eq!(weighted.stats(), per_packet.stats(), "per-packet, step {}", step);
                prop_assert_eq!(weighted.stats(), shortcut.stats(), "shortcut, step {}", step);
                prop_assert_eq!(weighted.len(), per_packet.len(), "len, step {}", step);
                prop_assert_eq!(weighted.len(), shortcut.len(), "len, step {}", step);
            }
            Ok(())
        },
    );
}

/// Negative-cache eviction is invariant under flow sharding: running one
/// table versus `shards` tables fed by `stable_hash % shards` (the engine's
/// exact shard split) yields identical total occupancy, eviction counts and
/// stats — even deep in the eviction regime of a tiny capacity. This is why
/// an exhaustion attack's footprint is byte-identical across `SDM_SHARDS`
/// corners: each power-of-two shard count partitions whole cache sets.
#[test]
fn negative_eviction_invariant_under_shard_partition() {
    check(
        "negative_eviction_invariant_under_shard_partition",
        &Config::with_cases(192),
        |rng: &mut StdRng| {
            (
                rng.gen_range(1usize..200),
                rng.gen_range(1usize..300),
                rng.next_u64(),
            )
        },
        |&(n_keys, n_ops, seed)| {
            let n_keys = n_keys.max(1);
            let ttl = 1_000_000; // expiry out of the way: eviction is the subject
            let keys = gen_packets(n_keys, seed ^ 0xE71C);
            let ops = gen_table_ops(n_keys, n_ops, ttl, seed, true);
            let sets = 4usize; // 32-marker cap: tiny, so evictions are common
            for shards in [2usize, 4] {
                let mut single = FlowTable::with_negative_sets(ttl, sets);
                let mut parts: Vec<FlowTable> =
                    (0..shards).map(|_| FlowTable::with_negative_sets(ttl, sets)).collect();
                for &(now, op) in &ops {
                    let _ = apply_real(&mut single, &keys, now, op);
                    match op.key() {
                        Some(k) => {
                            let s = (keys[k].stable_hash() % shards as u64) as usize;
                            let _ = apply_real(&mut parts[s], &keys, now, op);
                        }
                        // keyless ops (purge) hit every shard, like the engine
                        None => {
                            for p in &mut parts {
                                let _ = apply_real(p, &keys, now, op);
                            }
                        }
                    }
                }
                let merged_len: usize = parts.iter().map(|p| p.len()).sum();
                let merged_neg: usize = parts.iter().map(|p| p.negative_len()).sum();
                let merged_evict: u64 = parts.iter().map(|p| p.negative_evictions()).sum();
                let merged_stats = parts.iter().fold(FlowTableStats::default(), |mut s, p| {
                    s.merge(&p.stats());
                    s
                });
                prop_assert_eq!(single.len(), merged_len, "{} shards", shards);
                prop_assert_eq!(single.negative_len(), merged_neg, "{} shards", shards);
                prop_assert_eq!(single.negative_evictions(), merged_evict, "{} shards", shards);
                prop_assert_eq!(single.stats(), merged_stats, "{} shards", shards);
            }
            Ok(())
        },
    );
}

/// Flow-table round trip: whatever is inserted is returned while fresh,
/// gone once expired.
#[test]
fn flow_table_soft_state() {
    check(
        "flow_table_soft_state",
        &Config::with_cases(256),
        |rng: &mut StdRng| {
            (
                rng.gen_range(1u64..1000),
                rng.gen_range(0u64..2000),
                rng.next_u64(),
            )
        },
        |&(ttl, gap, seed)| {
            let ttl = ttl.max(1);
            let ft = gen_packet(&mut StdRng::seed_from_u64(seed));
            let mut table = FlowTable::new(ttl);
            table.insert_positive(ft, PolicyId(0), ActionList::permit(), SimTime(0));
            let found = table.lookup(&ft, SimTime(gap), 1).is_some();
            prop_assert_eq!(found, gap <= ttl);
            Ok(())
        },
    );
}
