//! Traffic descriptors: the multi-field, wildcard-capable match part of a
//! policy (§II, Table I).

use std::fmt;

use sdm_netsim::{FiveTuple, Prefix, Protocol};

/// Match condition on a transport port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortMatch {
    /// Wildcard `*`.
    Any,
    /// A single port, e.g. `80`.
    Exact(u16),
    /// An inclusive range `lo..=hi`.
    Range(u16, u16),
}

impl PortMatch {
    /// True if `port` satisfies this condition.
    pub fn matches(self, port: u16) -> bool {
        match self {
            PortMatch::Any => true,
            PortMatch::Exact(p) => port == p,
            PortMatch::Range(lo, hi) => (lo..=hi).contains(&port),
        }
    }

    /// True if this is the wildcard.
    pub fn is_any(self) -> bool {
        self == PortMatch::Any
    }
}

impl fmt::Display for PortMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortMatch::Any => f.write_str("*"),
            PortMatch::Exact(p) => write!(f, "{p}"),
            PortMatch::Range(lo, hi) => write!(f, "{lo}-{hi}"),
        }
    }
}

impl From<u16> for PortMatch {
    fn from(p: u16) -> Self {
        PortMatch::Exact(p)
    }
}

/// Match condition on the transport protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtoMatch {
    /// Wildcard `*`.
    Any,
    /// A specific protocol.
    Is(Protocol),
}

impl ProtoMatch {
    /// True if `proto` satisfies this condition.
    pub fn matches(self, proto: Protocol) -> bool {
        match self {
            ProtoMatch::Any => true,
            ProtoMatch::Is(p) => p == proto,
        }
    }
}

impl fmt::Display for ProtoMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoMatch::Any => f.write_str("*"),
            ProtoMatch::Is(p) => write!(f, "{p}"),
        }
    }
}

/// The match half of a policy: source/destination address prefixes (with
/// wildcards), transport ports and protocol, exactly the five columns of the
/// paper's Table I (protocol defaulting to wildcard).
///
/// # Example
///
/// Policy 3 of Table I — "web access from external hosts to internal web
/// servers":
///
/// ```
/// use sdm_policy::TrafficDescriptor;
/// use sdm_netsim::{FiveTuple, Protocol};
///
/// // *, subnet a, *, 80
/// let d = TrafficDescriptor::new()
///     .dst_prefix("10.0.0.0/8".parse().unwrap())
///     .dst_port(80);
/// let pkt = FiveTuple {
///     src: "93.184.216.34".parse().unwrap(),
///     dst: "10.0.0.5".parse().unwrap(),
///     src_port: 50000, dst_port: 80, proto: Protocol::Tcp,
/// };
/// assert!(d.matches(&pkt));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrafficDescriptor {
    /// Source address prefix (wildcard: `Prefix::ANY`).
    pub src: Prefix,
    /// Destination address prefix (wildcard: `Prefix::ANY`).
    pub dst: Prefix,
    /// Source port condition.
    pub src_port: PortMatch,
    /// Destination port condition.
    pub dst_port: PortMatch,
    /// Protocol condition.
    pub proto: ProtoMatch,
}

impl Default for TrafficDescriptor {
    fn default() -> Self {
        TrafficDescriptor {
            src: Prefix::ANY,
            dst: Prefix::ANY,
            src_port: PortMatch::Any,
            dst_port: PortMatch::Any,
            proto: ProtoMatch::Any,
        }
    }
}

impl TrafficDescriptor {
    /// An all-wildcard descriptor; narrow it with the builder methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts the source address to a prefix.
    pub fn src_prefix(mut self, p: Prefix) -> Self {
        self.src = p;
        self
    }

    /// Restricts the destination address to a prefix.
    pub fn dst_prefix(mut self, p: Prefix) -> Self {
        self.dst = p;
        self
    }

    /// Restricts the source port.
    pub fn src_port(mut self, p: impl Into<PortMatch>) -> Self {
        self.src_port = p.into();
        self
    }

    /// Restricts the destination port.
    pub fn dst_port(mut self, p: impl Into<PortMatch>) -> Self {
        self.dst_port = p.into();
        self
    }

    /// Restricts the protocol.
    pub fn protocol(mut self, p: Protocol) -> Self {
        self.proto = ProtoMatch::Is(p);
        self
    }

    /// True if the flow identifier satisfies every field condition.
    pub fn matches(&self, ft: &FiveTuple) -> bool {
        self.src.contains(ft.src)
            && self.dst.contains(ft.dst)
            && self.src_port.matches(ft.src_port)
            && self.dst_port.matches(ft.dst_port)
            && self.proto.matches(ft.proto)
    }

    /// True if any source address matched by this descriptor lies inside
    /// `subnet` — the controller's test for "descriptors \[that\] contain at
    /// least one source address from the subnet behind x" (§III.B).
    pub fn source_overlaps(&self, subnet: Prefix) -> bool {
        self.src.overlaps(subnet)
    }

    /// True if any destination address matched by this descriptor lies
    /// inside `subnet`.
    pub fn dest_overlaps(&self, subnet: Prefix) -> bool {
        self.dst.overlaps(subnet)
    }

    /// True if every packet matched by `self` is also matched by `other` —
    /// i.e. `other` *covers* `self`. Used to detect shadowed policies
    /// under first-match semantics.
    pub fn covered_by(&self, other: &TrafficDescriptor) -> bool {
        prefix_subset(self.src, other.src)
            && prefix_subset(self.dst, other.dst)
            && port_subset(self.src_port, other.src_port)
            && port_subset(self.dst_port, other.dst_port)
            && proto_subset(self.proto, other.proto)
    }
}

/// True if every address in `a` is inside `b`.
fn prefix_subset(a: Prefix, b: Prefix) -> bool {
    b.len() <= a.len() && b.contains(a.addr())
}

/// True if every port matched by `a` is matched by `b`.
fn port_subset(a: PortMatch, b: PortMatch) -> bool {
    let (alo, ahi) = match a {
        PortMatch::Any => (0, u16::MAX),
        PortMatch::Exact(p) => (p, p),
        PortMatch::Range(lo, hi) => (lo, hi),
    };
    match b {
        PortMatch::Any => true,
        PortMatch::Exact(p) => alo == p && ahi == p,
        PortMatch::Range(lo, hi) => lo <= alo && ahi <= hi,
    }
}

/// True if every protocol matched by `a` is matched by `b`.
fn proto_subset(a: ProtoMatch, b: ProtoMatch) -> bool {
    match (a, b) {
        (_, ProtoMatch::Any) => true,
        (ProtoMatch::Is(x), ProtoMatch::Is(y)) => x == y,
        (ProtoMatch::Any, ProtoMatch::Is(_)) => false,
    }
}

impl fmt::Display for TrafficDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let src = if self.src.is_any() {
            "*".to_string()
        } else {
            self.src.to_string()
        };
        let dst = if self.dst.is_any() {
            "*".to_string()
        } else {
            self.dst.to_string()
        };
        write!(
            f,
            "src={src} dst={dst} sport={} dport={} proto={}",
            self.src_port, self.dst_port, self.proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_netsim::Ipv4Addr;

    fn ft(src: &str, dst: &str, sp: u16, dp: u16) -> FiveTuple {
        FiveTuple {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_port: sp,
            dst_port: dp,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn wildcard_matches_everything() {
        let d = TrafficDescriptor::new();
        assert!(d.matches(&ft("1.2.3.4", "5.6.7.8", 1, 2)));
    }

    #[test]
    fn port_matching() {
        assert!(PortMatch::Any.matches(0));
        assert!(PortMatch::Exact(80).matches(80));
        assert!(!PortMatch::Exact(80).matches(81));
        assert!(PortMatch::Range(10, 20).matches(10));
        assert!(PortMatch::Range(10, 20).matches(20));
        assert!(!PortMatch::Range(10, 20).matches(21));
    }

    #[test]
    fn proto_matching() {
        assert!(ProtoMatch::Any.matches(Protocol::Udp));
        assert!(ProtoMatch::Is(Protocol::Tcp).matches(Protocol::Tcp));
        assert!(!ProtoMatch::Is(Protocol::Tcp).matches(Protocol::Udp));
    }

    #[test]
    fn prefix_fields_constrain() {
        let d = TrafficDescriptor::new()
            .src_prefix("10.1.0.0/16".parse().unwrap())
            .dst_port(80);
        assert!(d.matches(&ft("10.1.2.3", "8.8.8.8", 1000, 80)));
        assert!(!d.matches(&ft("10.2.2.3", "8.8.8.8", 1000, 80)));
        assert!(!d.matches(&ft("10.1.2.3", "8.8.8.8", 1000, 443)));
    }

    #[test]
    fn protocol_constrains() {
        let d = TrafficDescriptor::new().protocol(Protocol::Udp);
        let mut t = ft("1.1.1.1", "2.2.2.2", 1, 2);
        assert!(!d.matches(&t));
        t.proto = Protocol::Udp;
        assert!(d.matches(&t));
    }

    #[test]
    fn overlap_checks() {
        let subnet: Prefix = "10.3.0.0/16".parse().unwrap();
        let d_any = TrafficDescriptor::new();
        assert!(d_any.source_overlaps(subnet));
        assert!(d_any.dest_overlaps(subnet));
        let d_in = TrafficDescriptor::new().src_prefix("10.3.128.0/17".parse().unwrap());
        assert!(d_in.source_overlaps(subnet));
        let d_out = TrafficDescriptor::new().src_prefix("10.4.0.0/16".parse().unwrap());
        assert!(!d_out.source_overlaps(subnet));
    }

    #[test]
    fn display_uses_wildcards() {
        let d = TrafficDescriptor::new().dst_port(80);
        let s = d.to_string();
        assert!(s.contains("src=*"));
        assert!(s.contains("dport=80"));
    }

    #[test]
    fn host_prefix_descriptor() {
        let a: Ipv4Addr = "10.0.0.7".parse().unwrap();
        let d = TrafficDescriptor::new().src_prefix(Prefix::host(a));
        assert!(d.matches(&ft("10.0.0.7", "2.2.2.2", 1, 2)));
        assert!(!d.matches(&ft("10.0.0.8", "2.2.2.2", 1, 2)));
    }
}
