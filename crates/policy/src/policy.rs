//! Policies and ordered policy sets with first-match semantics (§II).

use std::fmt;

use sdm_netsim::{FiveTuple, Prefix};

use crate::action::{ActionList, NetworkFunction};
use crate::descriptor::TrafficDescriptor;

/// Identifier of a policy: its position in the network-wide ordered list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PolicyId(pub u32);

impl PolicyId {
    /// Dense index of this policy in the network-wide list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PolicyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One network-wide policy: a traffic descriptor plus an ordered action
/// list, `⟨d_i, a_i⟩` in the paper's notation.
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    /// The match condition.
    pub descriptor: TrafficDescriptor,
    /// The ordered function chain (empty = permit).
    pub actions: ActionList,
}

impl Policy {
    /// Creates a policy.
    pub fn new(descriptor: TrafficDescriptor, actions: ActionList) -> Self {
        Policy {
            descriptor,
            actions,
        }
    }

    /// A bare permit policy for the descriptor.
    pub fn permit(descriptor: TrafficDescriptor) -> Self {
        Policy::new(descriptor, ActionList::permit())
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} => {}", self.descriptor, self.actions)
    }
}

/// The network-wide ordered list of policies `P`. A packet is governed by
/// the *first* policy whose descriptor it matches (§II).
///
/// # Example
///
/// The first and third rows of the paper's Table I:
///
/// ```
/// use sdm_policy::{PolicySet, Policy, TrafficDescriptor, ActionList, NetworkFunction};
/// use sdm_netsim::{FiveTuple, Protocol, Prefix};
///
/// let subnet_a: Prefix = "10.0.0.0/8".parse().unwrap();
/// let mut p = PolicySet::new();
/// // subnet a -> subnet a, dst port 80: permit
/// p.push(Policy::permit(
///     TrafficDescriptor::new().src_prefix(subnet_a).dst_prefix(subnet_a).dst_port(80),
/// ));
/// // * -> subnet a, dst port 80: FW, IDS
/// p.push(Policy::new(
///     TrafficDescriptor::new().dst_prefix(subnet_a).dst_port(80),
///     ActionList::chain([NetworkFunction::Firewall, NetworkFunction::Ids]),
/// ));
///
/// let internal = FiveTuple {
///     src: "10.1.0.1".parse().unwrap(), dst: "10.2.0.1".parse().unwrap(),
///     src_port: 5000, dst_port: 80, proto: Protocol::Tcp,
/// };
/// // internal web traffic hits the permit first
/// let (_, policy) = p.first_match(&internal).unwrap();
/// assert!(policy.actions.is_permit());
///
/// let external = FiveTuple { src: "93.184.216.34".parse().unwrap(), ..internal };
/// let (_, policy) = p.first_match(&external).unwrap();
/// assert_eq!(policy.actions.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicySet {
    policies: Vec<Policy>,
}

impl PolicySet {
    /// Creates an empty policy set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a policy at the lowest priority, returning its id.
    pub fn push(&mut self, policy: Policy) -> PolicyId {
        let id = PolicyId(self.policies.len() as u32);
        self.policies.push(policy);
        id
    }

    /// Number of policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True if no policies exist.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// The policy with the given id.
    pub fn get(&self, id: PolicyId) -> Option<&Policy> {
        self.policies.get(id.index())
    }

    /// Iterates over `(id, policy)` in priority order.
    pub fn iter(&self) -> impl Iterator<Item = (PolicyId, &Policy)> + '_ {
        self.policies
            .iter()
            .enumerate()
            .map(|(i, p)| (PolicyId(i as u32), p))
    }

    /// The first policy matching `ft`, with its id — the authoritative
    /// (linear-scan) classifier. [`crate::TrieClassifier`] accelerates the
    /// same semantics.
    pub fn first_match(&self, ft: &FiveTuple) -> Option<(PolicyId, &Policy)> {
        self.iter().find(|(_, p)| p.descriptor.matches(ft))
    }

    /// The subset of policy ids whose descriptors can match traffic
    /// *sourced* from `subnet` — the proxy-relevant policies `P_x` of
    /// §III.B.
    pub fn relevant_to_source(&self, subnet: Prefix) -> Vec<PolicyId> {
        self.iter()
            .filter(|(_, p)| p.descriptor.source_overlaps(subnet))
            .map(|(id, _)| id)
            .collect()
    }

    /// The subset of policy ids whose action lists contain any of
    /// `functions` — the middlebox-relevant policies `P_x` of §III.B.
    pub fn relevant_to_functions(&self, functions: &[NetworkFunction]) -> Vec<PolicyId> {
        self.iter()
            .filter(|(_, p)| functions.iter().any(|&f| p.actions.contains(f)))
            .map(|(id, _)| id)
            .collect()
    }

    /// Finds *shadowed* policies: a policy is shadowed when some single
    /// earlier policy covers its entire match space, so under first-match
    /// semantics it can never fire. Returns `(shadowed, by)` pairs.
    ///
    /// This is a sound but incomplete check (a policy hidden only by the
    /// *union* of several earlier policies is not flagged) — the classic
    /// conservative rule-shadowing audit, cheap enough to run on every
    /// policy update.
    ///
    /// # Example
    ///
    /// ```
    /// use sdm_policy::{PolicySet, Policy, TrafficDescriptor, ActionList, NetworkFunction};
    /// let mut set = PolicySet::new();
    /// let broad = set.push(Policy::permit(TrafficDescriptor::new().dst_port(80)));
    /// let narrow = set.push(Policy::new(
    ///     TrafficDescriptor::new()
    ///         .src_prefix("10.0.0.0/8".parse().unwrap())
    ///         .dst_port(80),
    ///     ActionList::chain([NetworkFunction::Firewall]),
    /// ));
    /// assert_eq!(set.find_shadowed(), vec![(narrow, broad)]);
    /// ```
    pub fn find_shadowed(&self) -> Vec<(PolicyId, PolicyId)> {
        let mut out = Vec::new();
        for (i, p) in self.iter() {
            for (j, earlier) in self.iter() {
                if j >= i {
                    break;
                }
                if p.descriptor.covered_by(&earlier.descriptor) {
                    out.push((i, j));
                    break;
                }
            }
        }
        out
    }

    /// Restricts this set to the given ids, preserving global ids and
    /// priority order — the local policy table installed at one
    /// proxy/middlebox.
    pub fn project(&self, ids: &[PolicyId]) -> ProjectedPolicies {
        let mut sorted: Vec<PolicyId> = ids.to_vec();
        sorted.sort();
        sorted.dedup();
        ProjectedPolicies {
            entries: sorted
                .into_iter()
                .filter_map(|id| self.get(id).map(|p| (id, p.clone())))
                .collect(),
        }
    }
}

impl FromIterator<Policy> for PolicySet {
    fn from_iter<T: IntoIterator<Item = Policy>>(iter: T) -> Self {
        PolicySet {
            policies: iter.into_iter().collect(),
        }
    }
}

/// A local policy table: the subset `P_x` of the network-wide policies that
/// the controller installed at one proxy or middlebox, with global ids and
/// priorities preserved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProjectedPolicies {
    entries: Vec<(PolicyId, Policy)>,
}

impl ProjectedPolicies {
    /// First matching policy in (global) priority order.
    pub fn first_match(&self, ft: &FiveTuple) -> Option<(PolicyId, &Policy)> {
        self.entries
            .iter()
            .find(|(_, p)| p.descriptor.matches(ft))
            .map(|(id, p)| (*id, p))
    }

    /// The policy stored under a global id, if present in this projection.
    pub fn get(&self, id: PolicyId) -> Option<&Policy> {
        self.entries
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, p)| p)
    }

    /// Number of local policies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the projection is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(global id, policy)` in priority order.
    pub fn iter(&self) -> impl Iterator<Item = (PolicyId, &Policy)> + '_ {
        self.entries.iter().map(|(id, p)| (*id, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::NetworkFunction::*;
    use sdm_netsim::Protocol;

    fn ft(src: &str, dst: &str, sp: u16, dp: u16) -> FiveTuple {
        FiveTuple {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_port: sp,
            dst_port: dp,
            proto: Protocol::Tcp,
        }
    }

    /// Builds the six example policies of the paper's Table I for
    /// `subnet a = 10.0.0.0/8`.
    fn table_one() -> PolicySet {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let mut set = PolicySet::new();
        set.push(Policy::permit(
            TrafficDescriptor::new().src_prefix(a).dst_prefix(a).dst_port(80),
        ));
        set.push(Policy::permit(
            TrafficDescriptor::new().src_prefix(a).dst_prefix(a).src_port(80),
        ));
        set.push(Policy::new(
            TrafficDescriptor::new().dst_prefix(a).dst_port(80),
            ActionList::chain([Firewall, Ids]),
        ));
        set.push(Policy::new(
            TrafficDescriptor::new().src_prefix(a).src_port(80),
            ActionList::chain([Ids, Firewall]),
        ));
        set.push(Policy::new(
            TrafficDescriptor::new().src_prefix(a).dst_port(80),
            ActionList::chain([Firewall, Ids, WebProxy]),
        ));
        set.push(Policy::new(
            TrafficDescriptor::new().dst_prefix(a).src_port(80),
            ActionList::chain([WebProxy, Ids, Firewall]),
        ));
        set
    }

    #[test]
    fn table_one_semantics() {
        let set = table_one();
        // internal web traffic permitted (first rule wins)
        let (id, p) = set.first_match(&ft("10.1.0.1", "10.2.0.1", 999, 80)).unwrap();
        assert_eq!(id, PolicyId(0));
        assert!(p.actions.is_permit());
        // inbound external web access goes through FW, IDS
        let (id, p) = set.first_match(&ft("93.1.1.1", "10.2.0.1", 999, 80)).unwrap();
        assert_eq!(id, PolicyId(2));
        assert_eq!(p.actions.functions(), &[Firewall, Ids]);
        // outbound web access goes through FW, IDS, proxy
        let (id, p) = set.first_match(&ft("10.1.0.1", "93.1.1.1", 999, 80)).unwrap();
        assert_eq!(id, PolicyId(4));
        assert_eq!(p.actions.functions(), &[Firewall, Ids, WebProxy]);
        // unrelated traffic matches nothing
        assert!(set.first_match(&ft("93.1.1.1", "94.1.1.1", 1, 2)).is_none());
    }

    #[test]
    fn first_match_respects_order() {
        let mut set = PolicySet::new();
        let d = TrafficDescriptor::new().dst_port(80);
        set.push(Policy::new(d, ActionList::chain([Firewall])));
        set.push(Policy::new(d, ActionList::chain([Ids])));
        let (id, p) = set.first_match(&ft("1.1.1.1", "2.2.2.2", 1, 80)).unwrap();
        assert_eq!(id, PolicyId(0));
        assert_eq!(p.actions.functions(), &[Firewall]);
    }

    #[test]
    fn relevance_to_source() {
        let set = table_one();
        let subnet: Prefix = "10.3.0.0/16".parse().unwrap();
        let rel = set.relevant_to_source(subnet);
        // policies 0,1,3,4 have src = subnet a (contains 10.3/16);
        // policies 2 and 5 have src = * which also overlaps.
        assert_eq!(rel.len(), 6);
        let external: Prefix = "93.0.0.0/8".parse().unwrap();
        let rel = set.relevant_to_source(external);
        // only the wildcard-source policies remain
        assert_eq!(rel, vec![PolicyId(2), PolicyId(5)]);
    }

    #[test]
    fn relevance_to_functions() {
        let set = table_one();
        let rel = set.relevant_to_functions(&[WebProxy]);
        assert_eq!(rel, vec![PolicyId(4), PolicyId(5)]);
        let rel = set.relevant_to_functions(&[Firewall, WebProxy]);
        assert_eq!(rel.len(), 4);
        assert!(set.relevant_to_functions(&[TrafficMonitor]).is_empty());
    }

    #[test]
    fn projection_preserves_priority() {
        let set = table_one();
        // install policies {4, 2} at a middlebox; order must normalize to 2, 4
        let proj = set.project(&[PolicyId(4), PolicyId(2), PolicyId(4)]);
        assert_eq!(proj.len(), 2);
        let ids: Vec<_> = proj.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![PolicyId(2), PolicyId(4)]);
        // a packet matching both resolves to the globally-first policy
        let (id, _) = proj.first_match(&ft("10.1.0.1", "10.2.0.1", 9, 80)).unwrap();
        assert_eq!(id, PolicyId(2));
        assert!(proj.get(PolicyId(4)).is_some());
        assert!(proj.get(PolicyId(0)).is_none());
    }

    #[test]
    fn shadow_detection() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let mut set = PolicySet::new();
        // broad wildcard-source web rule first...
        let broad = set.push(Policy::new(
            TrafficDescriptor::new().dst_port(80),
            ActionList::chain([Firewall]),
        ));
        // ...makes a narrower, later web rule unreachable
        let narrow = set.push(Policy::new(
            TrafficDescriptor::new().src_prefix(a).dst_port(80),
            ActionList::chain([Ids]),
        ));
        // a rule on another port is fine
        set.push(Policy::new(
            TrafficDescriptor::new().dst_port(22),
            ActionList::chain([Ids]),
        ));
        assert_eq!(set.find_shadowed(), vec![(narrow, broad)]);
    }

    #[test]
    fn table_one_has_expected_shadowing_structure() {
        // In Table I the *permits* come first and are narrower (internal
        // traffic only), so nothing is fully shadowed.
        let set = table_one();
        assert!(set.find_shadowed().is_empty());
    }

    #[test]
    fn port_range_shadowing() {
        let mut set = PolicySet::new();
        let broad = set.push(Policy::new(
            TrafficDescriptor::new().dst_port(crate::PortMatch::Range(80, 90)),
            ActionList::chain([Firewall]),
        ));
        let inside = set.push(Policy::new(
            TrafficDescriptor::new().dst_port(crate::PortMatch::Exact(85)),
            ActionList::chain([Ids]),
        ));
        let outside = set.push(Policy::new(
            TrafficDescriptor::new().dst_port(crate::PortMatch::Range(85, 95)),
            ActionList::chain([Ids]),
        ));
        let shadows = set.find_shadowed();
        assert!(shadows.contains(&(inside, broad)));
        assert!(!shadows.iter().any(|&(s, _)| s == outside));
    }

    #[test]
    fn empty_set_matches_nothing() {
        let set = PolicySet::new();
        assert!(set.is_empty());
        assert!(set.first_match(&ft("1.1.1.1", "2.2.2.2", 1, 2)).is_none());
    }

    #[test]
    fn policy_display() {
        let set = table_one();
        let s = set.get(PolicyId(2)).unwrap().to_string();
        assert!(s.contains("FW -> IDS"), "{s}");
    }
}
