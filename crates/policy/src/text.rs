//! A small text format for policies, for configuration files and CLI use.
//!
//! One policy per line, Table-I style:
//!
//! ```text
//! # comment
//! src=10.0.0.0/8 dst=* sport=* dport=80 proto=tcp => FW, IDS, WP
//! src=* dst=10.3.0.0/16 dport=2000-2100 => permit
//! ```
//!
//! Fields may appear in any order; omitted fields are wildcards. The
//! action list is either `permit` or a comma-separated chain of
//! `FW | IDS | WP | TM | NF<n>`.

use std::fmt;

use sdm_netsim::Protocol;

use crate::action::{ActionList, NetworkFunction};
use crate::descriptor::{PortMatch, ProtoMatch, TrafficDescriptor};
use crate::policy::{Policy, PolicySet};

/// Error from parsing policy text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParsePolicyError {}

fn err(line: usize, message: impl Into<String>) -> ParsePolicyError {
    ParsePolicyError {
        line,
        message: message.into(),
    }
}

/// Parses one policy line (without comments). See the module docs for the
/// grammar.
///
/// # Errors
///
/// Returns a [`ParsePolicyError`] describing the first problem found; the
/// reported line number is `line`.
pub fn parse_policy_line(text: &str, line: usize) -> Result<Policy, ParsePolicyError> {
    let (match_part, action_part) = text
        .split_once("=>")
        .ok_or_else(|| err(line, "missing '=>' between match and actions"))?;

    let mut d = TrafficDescriptor::new();
    for field in match_part.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| err(line, format!("field '{field}' is not key=value")))?;
        match key {
            "src" => {
                d.src = value
                    .parse()
                    .map_err(|e| err(line, format!("src: {e}")))?;
            }
            "dst" => {
                d.dst = value
                    .parse()
                    .map_err(|e| err(line, format!("dst: {e}")))?;
            }
            "sport" => d.src_port = parse_port(value, line)?,
            "dport" => d.dst_port = parse_port(value, line)?,
            "proto" => d.proto = parse_proto(value, line)?,
            other => return Err(err(line, format!("unknown field '{other}'"))),
        }
    }

    let action_part = action_part.trim();
    let actions = if action_part.eq_ignore_ascii_case("permit") {
        ActionList::permit()
    } else {
        let mut functions = Vec::new();
        for name in action_part.split(',') {
            functions.push(parse_function(name.trim(), line)?);
        }
        if functions.is_empty() {
            return Err(err(line, "empty action list (use 'permit')"));
        }
        ActionList::chain(functions)
    };
    Ok(Policy::new(d, actions))
}

fn parse_port(value: &str, line: usize) -> Result<PortMatch, ParsePolicyError> {
    if value == "*" {
        return Ok(PortMatch::Any);
    }
    if let Some((lo, hi)) = value.split_once('-') {
        let lo: u16 = lo
            .parse()
            .map_err(|_| err(line, format!("bad port '{lo}'")))?;
        let hi: u16 = hi
            .parse()
            .map_err(|_| err(line, format!("bad port '{hi}'")))?;
        if lo > hi {
            return Err(err(line, format!("inverted port range {lo}-{hi}")));
        }
        return Ok(PortMatch::Range(lo, hi));
    }
    let p: u16 = value
        .parse()
        .map_err(|_| err(line, format!("bad port '{value}'")))?;
    Ok(PortMatch::Exact(p))
}

fn parse_proto(value: &str, line: usize) -> Result<ProtoMatch, ParsePolicyError> {
    Ok(match value.to_ascii_lowercase().as_str() {
        "*" => ProtoMatch::Any,
        "tcp" => ProtoMatch::Is(Protocol::Tcp),
        "udp" => ProtoMatch::Is(Protocol::Udp),
        other => {
            let n: u8 = other
                .parse()
                .map_err(|_| err(line, format!("unknown protocol '{value}'")))?;
            ProtoMatch::Is(Protocol::from(n))
        }
    })
}

fn parse_function(name: &str, line: usize) -> Result<NetworkFunction, ParsePolicyError> {
    Ok(match name.to_ascii_uppercase().as_str() {
        "FW" => NetworkFunction::Firewall,
        "IDS" => NetworkFunction::Ids,
        "WP" => NetworkFunction::WebProxy,
        "TM" => NetworkFunction::TrafficMonitor,
        other => {
            let n = other
                .strip_prefix("NF")
                .and_then(|s| s.parse::<u8>().ok())
                .ok_or_else(|| err(line, format!("unknown function '{name}'")))?;
            NetworkFunction::Custom(n)
        }
    })
}

/// Parses a whole policy document: one policy per line, `#` comments and
/// blank lines ignored, priority = line order.
///
/// # Errors
///
/// Returns the first [`ParsePolicyError`], with its line number.
///
/// # Example
///
/// ```
/// let text = "src=10.0.0.0/8 dst=10.0.0.0/8 dport=80 => permit\n\
///             dst=10.0.0.0/8 dport=80 => FW, IDS\n";
/// let set = sdm_policy::parse_policies(text)?;
/// assert_eq!(set.len(), 2);
/// # Ok::<(), sdm_policy::ParsePolicyError>(())
/// ```
pub fn parse_policies(text: &str) -> Result<PolicySet, ParsePolicyError> {
    let mut set = PolicySet::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        set.push(parse_policy_line(line, i + 1)?);
    }
    Ok(set)
}

/// Renders a policy in the parseable text format (inverse of
/// [`parse_policy_line`]).
pub fn policy_to_line(policy: &Policy) -> String {
    let d = &policy.descriptor;
    let mut parts = Vec::new();
    if !d.src.is_any() {
        parts.push(format!("src={}", d.src));
    }
    if !d.dst.is_any() {
        parts.push(format!("dst={}", d.dst));
    }
    if !d.src_port.is_any() {
        parts.push(format!("sport={}", d.src_port));
    }
    if !d.dst_port.is_any() {
        parts.push(format!("dport={}", d.dst_port));
    }
    if let ProtoMatch::Is(p) = d.proto {
        parts.push(format!("proto={p}"));
    }
    if parts.is_empty() {
        parts.push("src=*".to_string());
    }
    let actions = if policy.actions.is_permit() {
        "permit".to_string()
    } else {
        policy
            .actions
            .functions()
            .iter()
            .map(|f| f.abbrev())
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!("{} => {}", parts.join(" "), actions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_netsim::FiveTuple;

    #[test]
    fn parses_table_one_style_lines() {
        let set = parse_policies(
            "
            # Table I for subnet a = 10.0.0.0/8
            src=10.0.0.0/8 dst=10.0.0.0/8 dport=80 => permit
            src=10.0.0.0/8 dst=10.0.0.0/8 sport=80 => permit
            dst=10.0.0.0/8 dport=80 => FW, IDS
            src=10.0.0.0/8 sport=80 => IDS, FW
            src=10.0.0.0/8 dport=80 => FW, IDS, WP
            dst=10.0.0.0/8 sport=80 => WP, IDS, FW
            ",
        )
        .unwrap();
        assert_eq!(set.len(), 6);
        let ft = FiveTuple {
            src: "93.1.1.1".parse().unwrap(),
            dst: "10.2.0.1".parse().unwrap(),
            src_port: 999,
            dst_port: 80,
            proto: Protocol::Tcp,
        };
        let (id, p) = set.first_match(&ft).unwrap();
        assert_eq!(id.index(), 2);
        assert_eq!(p.actions.to_string(), "FW -> IDS");
    }

    #[test]
    fn field_order_is_free_and_defaults_are_wildcards() {
        let p = parse_policy_line("dport=80 src=10.0.0.0/8 => TM", 1).unwrap();
        assert!(p.descriptor.dst.is_any());
        assert_eq!(p.descriptor.dst_port, PortMatch::Exact(80));
        assert_eq!(p.actions.functions(), &[NetworkFunction::TrafficMonitor]);
    }

    #[test]
    fn port_ranges_and_protocols() {
        let p = parse_policy_line("dport=8000-8080 proto=udp => NF7", 1).unwrap();
        assert_eq!(p.descriptor.dst_port, PortMatch::Range(8000, 8080));
        assert_eq!(p.descriptor.proto, ProtoMatch::Is(Protocol::Udp));
        assert_eq!(p.actions.functions(), &[NetworkFunction::Custom(7)]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_policies("dst=* => FW\n\nbogus line\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
        assert!(parse_policy_line("dport=99999 => FW", 4).is_err());
        assert!(parse_policy_line("dport=90-80 => FW", 5).is_err());
        assert!(parse_policy_line("dport=80 => NOPE", 6).is_err());
        assert!(parse_policy_line("dport=80 FW", 7).is_err());
        assert!(parse_policy_line("flavor=mild => FW", 8).is_err());
        assert!(parse_policy_line("dport=80 => ", 9).is_err());
    }

    #[test]
    fn round_trips_through_text() {
        let lines = [
            "src=10.0.0.0/8 dport=80 => FW, IDS, WP",
            "dst=10.3.0.0/16 sport=1000-2000 proto=udp => TM",
            "src=* => permit",
        ];
        for l in lines {
            let p = parse_policy_line(l, 1).unwrap();
            let rendered = policy_to_line(&p);
            let p2 = parse_policy_line(&rendered, 1).unwrap();
            assert_eq!(p, p2, "round trip of '{l}' via '{rendered}'");
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let set = parse_policies("# just a comment\n\n   \ndst=* dport=22 => IDS # trailing\n").unwrap();
        assert_eq!(set.len(), 1);
    }
}
