//! Trie-based multi-field packet classification.
//!
//! §III.D notes that large policy tables need software lookups "using
//! trie-based data structures". This module implements the classic
//! hierarchical-trie classifier: a binary trie on the source prefix whose
//! nodes each hold a binary trie on the destination prefix; port and
//! protocol conditions are verified on the (few) surviving candidates.
//! Semantics are identical to the linear first-match scan of
//! [`crate::PolicySet::first_match`] — a property the test-suite checks
//! exhaustively and by fuzzing.

use sdm_netsim::{FiveTuple, Ipv4Addr};

use crate::policy::{Policy, PolicyId, PolicySet};

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct DstNode {
    children: [u32; 2],
    /// Ascending policy indices whose (src, dst) prefix pair terminates here.
    policies: Vec<u32>,
}

impl DstNode {
    fn new() -> Self {
        DstNode {
            children: [NONE, NONE],
            policies: Vec::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct SrcNode {
    children: [u32; 2],
    /// Root of this node's destination trie, or `NONE`.
    dst_root: u32,
}

impl SrcNode {
    fn new() -> Self {
        SrcNode {
            children: [NONE, NONE],
            dst_root: NONE,
        }
    }
}

fn bit(addr: Ipv4Addr, depth: u8) -> usize {
    ((addr.0 >> (31 - depth)) & 1) as usize
}

/// A hierarchical source×destination trie classifier over a [`PolicySet`].
///
/// Build once with [`TrieClassifier::build`]; lookups return the id of the
/// first (highest-priority) matching policy, exactly like the linear scan.
///
/// # Example
///
/// ```
/// use sdm_policy::{PolicySet, Policy, TrafficDescriptor, ActionList,
///                  NetworkFunction, TrieClassifier};
/// use sdm_netsim::{FiveTuple, Protocol};
///
/// let mut set = PolicySet::new();
/// set.push(Policy::new(
///     TrafficDescriptor::new().dst_port(80),
///     ActionList::chain([NetworkFunction::Firewall]),
/// ));
/// let trie = TrieClassifier::build(&set);
/// let ft = FiveTuple {
///     src: "1.2.3.4".parse().unwrap(), dst: "5.6.7.8".parse().unwrap(),
///     src_port: 1000, dst_port: 80, proto: Protocol::Tcp,
/// };
/// assert_eq!(trie.classify(&ft), set.first_match(&ft).map(|(id, _)| id));
/// ```
#[derive(Debug, Clone)]
pub struct TrieClassifier {
    src_nodes: Vec<SrcNode>,
    dst_nodes: Vec<DstNode>,
    policies: Vec<Policy>,
}

impl TrieClassifier {
    /// Builds the classifier from a policy set.
    pub fn build(set: &PolicySet) -> Self {
        let mut c = TrieClassifier {
            src_nodes: vec![SrcNode::new()],
            dst_nodes: Vec::new(),
            policies: set.iter().map(|(_, p)| p.clone()).collect(),
        };
        for (id, policy) in set.iter() {
            c.insert(id, policy);
        }
        c
    }

    fn insert(&mut self, id: PolicyId, policy: &Policy) {
        // Walk/create the source trie along the source prefix bits.
        let src_prefix = policy.descriptor.src;
        let mut s = 0usize;
        for depth in 0..src_prefix.len() {
            let b = bit(src_prefix.addr(), depth);
            if self.src_nodes[s].children[b] == NONE {
                self.src_nodes[s].children[b] = self.src_nodes.len() as u32;
                self.src_nodes.push(SrcNode::new());
            }
            s = self.src_nodes[s].children[b] as usize;
        }
        // Walk/create that node's destination trie.
        if self.src_nodes[s].dst_root == NONE {
            self.src_nodes[s].dst_root = self.dst_nodes.len() as u32;
            self.dst_nodes.push(DstNode::new());
        }
        let dst_prefix = policy.descriptor.dst;
        let mut d = self.src_nodes[s].dst_root as usize;
        for depth in 0..dst_prefix.len() {
            let b = bit(dst_prefix.addr(), depth);
            if self.dst_nodes[d].children[b] == NONE {
                self.dst_nodes[d].children[b] = self.dst_nodes.len() as u32;
                self.dst_nodes.push(DstNode::new());
            }
            d = self.dst_nodes[d].children[b] as usize;
        }
        // Ids are inserted in ascending order, keeping the list sorted.
        self.dst_nodes[d].policies.push(id.0);
    }

    /// Number of policies the classifier was built over.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True if built over an empty policy set.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Returns the first (highest-priority) policy matching `ft`, or `None`.
    ///
    /// Equivalent to `set.first_match(ft).map(|(id, _)| id)` on the set the
    /// classifier was built from.
    pub fn classify(&self, ft: &FiveTuple) -> Option<PolicyId> {
        let mut best = NONE;
        // Visit every source-trie node whose prefix covers ft.src …
        let mut s = 0usize;
        let mut depth = 0u8;
        loop {
            self.scan_dst(self.src_nodes[s].dst_root, ft, &mut best);
            if depth == 32 {
                break;
            }
            let b = bit(ft.src, depth);
            let child = self.src_nodes[s].children[b];
            if child == NONE {
                break;
            }
            s = child as usize;
            depth += 1;
        }
        if best == NONE {
            None
        } else {
            Some(PolicyId(best))
        }
    }

    /// … and inside each, every destination-trie node covering ft.dst.
    fn scan_dst(&self, root: u32, ft: &FiveTuple, best: &mut u32) {
        if root == NONE {
            return;
        }
        let mut d = root as usize;
        let mut depth = 0u8;
        loop {
            for &cand in &self.dst_nodes[d].policies {
                if cand >= *best {
                    break; // sorted ascending; nothing better here
                }
                let p = &self.policies[cand as usize];
                if p.descriptor.src_port.matches(ft.src_port)
                    && p.descriptor.dst_port.matches(ft.dst_port)
                    && p.descriptor.proto.matches(ft.proto)
                {
                    *best = cand;
                    break;
                }
            }
            if depth == 32 {
                break;
            }
            let b = bit(ft.dst, depth);
            let child = self.dst_nodes[d].children[b];
            if child == NONE {
                break;
            }
            d = child as usize;
            depth += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionList, NetworkFunction::*};
    use crate::descriptor::TrafficDescriptor;
    use sdm_netsim::{Prefix, Protocol};

    fn ft(src: &str, dst: &str, sp: u16, dp: u16) -> FiveTuple {
        FiveTuple {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_port: sp,
            dst_port: dp,
            proto: Protocol::Tcp,
        }
    }

    fn assert_equivalent(set: &PolicySet, samples: &[FiveTuple]) {
        let trie = TrieClassifier::build(set);
        for s in samples {
            assert_eq!(
                trie.classify(s),
                set.first_match(s).map(|(id, _)| id),
                "mismatch for {s}"
            );
        }
    }

    #[test]
    fn empty_set_matches_nothing() {
        let set = PolicySet::new();
        let trie = TrieClassifier::build(&set);
        assert!(trie.is_empty());
        assert_eq!(trie.classify(&ft("1.1.1.1", "2.2.2.2", 1, 2)), None);
    }

    #[test]
    fn wildcard_policy_matches_all() {
        let mut set = PolicySet::new();
        set.push(Policy::new(
            TrafficDescriptor::new(),
            ActionList::chain([Ids]),
        ));
        let trie = TrieClassifier::build(&set);
        assert_eq!(trie.classify(&ft("1.1.1.1", "2.2.2.2", 1, 2)), Some(PolicyId(0)));
    }

    #[test]
    fn priority_resolution_across_trie_paths() {
        let mut set = PolicySet::new();
        // specific src prefix, later id via dst-only path must lose
        set.push(Policy::new(
            TrafficDescriptor::new().dst_prefix("20.0.0.0/8".parse().unwrap()),
            ActionList::chain([Firewall]),
        ));
        set.push(Policy::new(
            TrafficDescriptor::new().src_prefix("10.0.0.0/8".parse().unwrap()),
            ActionList::chain([Ids]),
        ));
        let samples = [
            ft("10.1.1.1", "20.1.1.1", 5, 6), // matches both -> policy 0
            ft("10.1.1.1", "30.1.1.1", 5, 6), // only policy 1
            ft("40.1.1.1", "20.1.1.1", 5, 6), // only policy 0
            ft("40.1.1.1", "30.1.1.1", 5, 6), // none
        ];
        assert_equivalent(&set, &samples);
        let trie = TrieClassifier::build(&set);
        assert_eq!(trie.classify(&samples[0]), Some(PolicyId(0)));
    }

    #[test]
    fn port_conditions_filter_candidates() {
        let mut set = PolicySet::new();
        let p10: Prefix = "10.0.0.0/8".parse().unwrap();
        set.push(Policy::new(
            TrafficDescriptor::new().src_prefix(p10).dst_port(80),
            ActionList::chain([Firewall]),
        ));
        set.push(Policy::new(
            TrafficDescriptor::new().src_prefix(p10).dst_port(443),
            ActionList::chain([Ids]),
        ));
        set.push(Policy::new(
            TrafficDescriptor::new().src_prefix(p10),
            ActionList::permit(),
        ));
        let trie = TrieClassifier::build(&set);
        assert_eq!(trie.classify(&ft("10.1.1.1", "2.2.2.2", 1, 80)), Some(PolicyId(0)));
        assert_eq!(trie.classify(&ft("10.1.1.1", "2.2.2.2", 1, 443)), Some(PolicyId(1)));
        assert_eq!(trie.classify(&ft("10.1.1.1", "2.2.2.2", 1, 22)), Some(PolicyId(2)));
    }

    #[test]
    fn nested_prefixes_all_visited() {
        let mut set = PolicySet::new();
        // /8 outer, /16 inner, /24 innermost — most specific added first
        set.push(Policy::new(
            TrafficDescriptor::new().src_prefix("10.1.1.0/24".parse().unwrap()),
            ActionList::chain([Firewall]),
        ));
        set.push(Policy::new(
            TrafficDescriptor::new().src_prefix("10.1.0.0/16".parse().unwrap()),
            ActionList::chain([Ids]),
        ));
        set.push(Policy::new(
            TrafficDescriptor::new().src_prefix("10.0.0.0/8".parse().unwrap()),
            ActionList::chain([WebProxy]),
        ));
        let samples = [
            ft("10.1.1.9", "2.2.2.2", 1, 2),
            ft("10.1.2.9", "2.2.2.2", 1, 2),
            ft("10.2.2.9", "2.2.2.2", 1, 2),
            ft("11.0.0.1", "2.2.2.2", 1, 2),
        ];
        assert_equivalent(&set, &samples);
    }

    #[test]
    fn protocol_conditions() {
        let mut set = PolicySet::new();
        set.push(Policy::new(
            TrafficDescriptor::new().protocol(Protocol::Udp),
            ActionList::chain([TrafficMonitor]),
        ));
        let trie = TrieClassifier::build(&set);
        let mut t = ft("1.1.1.1", "2.2.2.2", 1, 2);
        assert_eq!(trie.classify(&t), None);
        t.proto = Protocol::Udp;
        assert_eq!(trie.classify(&t), Some(PolicyId(0)));
    }

    #[test]
    fn full_host_prefixes_work() {
        let mut set = PolicySet::new();
        set.push(Policy::new(
            TrafficDescriptor::new()
                .src_prefix(Prefix::host("10.0.0.7".parse().unwrap()))
                .dst_prefix(Prefix::host("10.0.0.8".parse().unwrap())),
            ActionList::chain([Ids]),
        ));
        let trie = TrieClassifier::build(&set);
        assert_eq!(trie.classify(&ft("10.0.0.7", "10.0.0.8", 1, 2)), Some(PolicyId(0)));
        assert_eq!(trie.classify(&ft("10.0.0.7", "10.0.0.9", 1, 2)), None);
        assert_eq!(trie.classify(&ft("10.0.0.6", "10.0.0.8", 1, 2)), None);
    }
}
