//! Network functions and ordered action lists (§II).

use std::fmt;
use std::sync::Arc;

/// A network function a middlebox can implement — the elements of the
/// paper's function set Π. The four named variants are the ones used in the
/// evaluation (§IV.A); `Custom` supports arbitrary additional functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetworkFunction {
    /// Firewalling (FW).
    Firewall,
    /// Intrusion detection (IDS).
    Ids,
    /// Web proxying / caching (WP).
    WebProxy,
    /// Traffic measurement (TM).
    TrafficMonitor,
    /// Any other function, identified by a small integer.
    Custom(u8),
}

impl NetworkFunction {
    /// The four functions of the paper's evaluation, in a fixed order.
    pub const EVALUATION_SET: [NetworkFunction; 4] = [
        NetworkFunction::Firewall,
        NetworkFunction::Ids,
        NetworkFunction::WebProxy,
        NetworkFunction::TrafficMonitor,
    ];

    /// Short display name matching the paper's abbreviations.
    pub fn abbrev(self) -> String {
        match self {
            NetworkFunction::Firewall => "FW".to_string(),
            NetworkFunction::Ids => "IDS".to_string(),
            NetworkFunction::WebProxy => "WP".to_string(),
            NetworkFunction::TrafficMonitor => "TM".to_string(),
            NetworkFunction::Custom(n) => format!("NF{n}"),
        }
    }

    /// Inverse of [`NetworkFunction::abbrev`]; `None` for unknown names.
    pub fn from_abbrev(s: &str) -> Option<NetworkFunction> {
        match s {
            "FW" => Some(NetworkFunction::Firewall),
            "IDS" => Some(NetworkFunction::Ids),
            "WP" => Some(NetworkFunction::WebProxy),
            "TM" => Some(NetworkFunction::TrafficMonitor),
            other => other
                .strip_prefix("NF")
                .and_then(|n| n.parse().ok())
                .map(NetworkFunction::Custom),
        }
    }
}

impl fmt::Display for NetworkFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.abbrev())
    }
}

/// An ordered list of network functions a policy applies to matching
/// traffic. An empty list means *permit*: forward without further action
/// (the first two rows of Table I).
///
/// Cloning is cheap (shared storage): action lists are copied into flow
/// caches and label tables on every flow setup.
///
/// # Example
///
/// ```
/// use sdm_policy::{ActionList, NetworkFunction};
/// let chain = ActionList::chain([NetworkFunction::Firewall, NetworkFunction::Ids]);
/// assert_eq!(chain.len(), 2);
/// assert_eq!(chain.first(), Some(NetworkFunction::Firewall));
/// assert_eq!(chain.next_after(0), Some(NetworkFunction::Ids));
/// assert_eq!(chain.next_after(1), None);
/// assert!(ActionList::permit().is_permit());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ActionList(Arc<[NetworkFunction]>);

impl ActionList {
    /// The empty list: permit without further action.
    pub fn permit() -> Self {
        ActionList(Arc::from([] as [NetworkFunction; 0]))
    }

    /// An ordered chain of functions.
    pub fn chain(functions: impl IntoIterator<Item = NetworkFunction>) -> Self {
        ActionList(functions.into_iter().collect())
    }

    /// True if this list is a bare permit (no functions).
    pub fn is_permit(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of functions in the chain.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the chain is empty (same as [`ActionList::is_permit`]).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The functions in order.
    pub fn functions(&self) -> &[NetworkFunction] {
        &self.0
    }

    /// The first function, if any — where enforcement starts (§III.B).
    pub fn first(&self) -> Option<NetworkFunction> {
        self.0.first().copied()
    }

    /// The last function, if any.
    pub fn last(&self) -> Option<NetworkFunction> {
        self.0.last().copied()
    }

    /// The function at `index`.
    pub fn get(&self, index: usize) -> Option<NetworkFunction> {
        self.0.get(index).copied()
    }

    /// The function following position `index`, or `None` at the end.
    pub fn next_after(&self, index: usize) -> Option<NetworkFunction> {
        self.0.get(index + 1).copied()
    }

    /// Position of the first occurrence of `f` in the chain.
    pub fn position(&self, f: NetworkFunction) -> Option<usize> {
        self.0.iter().position(|&g| g == f)
    }

    /// True if the chain contains `f` — the controller's test for which
    /// policies are relevant to a middlebox (§III.B).
    pub fn contains(&self, f: NetworkFunction) -> bool {
        self.0.contains(&f)
    }

    /// Pairs of adjacent functions `(e, e')` in the chain — the paper's
    /// indicator `I_p(e, e')` is 1 exactly for these pairs.
    pub fn adjacent_pairs(&self) -> impl Iterator<Item = (NetworkFunction, NetworkFunction)> + '_ {
        self.0.windows(2).map(|w| (w[0], w[1]))
    }
}

impl FromIterator<NetworkFunction> for ActionList {
    fn from_iter<T: IntoIterator<Item = NetworkFunction>>(iter: T) -> Self {
        ActionList::chain(iter)
    }
}

impl fmt::Display for ActionList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_permit() {
            return f.write_str("permit");
        }
        let parts: Vec<String> = self.0.iter().map(|nf| nf.abbrev()).collect();
        f.write_str(&parts.join(" -> "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use NetworkFunction::*;

    #[test]
    fn permit_is_empty() {
        let p = ActionList::permit();
        assert!(p.is_permit());
        assert!(p.is_empty());
        assert_eq!(p.first(), None);
        assert_eq!(p.last(), None);
        assert_eq!(p.to_string(), "permit");
    }

    #[test]
    fn chain_navigation() {
        let c = ActionList::chain([Firewall, Ids, WebProxy]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.first(), Some(Firewall));
        assert_eq!(c.last(), Some(WebProxy));
        assert_eq!(c.next_after(0), Some(Ids));
        assert_eq!(c.next_after(2), None);
        assert_eq!(c.position(Ids), Some(1));
        assert_eq!(c.position(TrafficMonitor), None);
        assert!(c.contains(WebProxy));
    }

    #[test]
    fn adjacent_pairs_match_indicator_semantics() {
        let c = ActionList::chain([Firewall, Ids, WebProxy]);
        let pairs: Vec<_> = c.adjacent_pairs().collect();
        assert_eq!(pairs, vec![(Firewall, Ids), (Ids, WebProxy)]);
        assert_eq!(ActionList::permit().adjacent_pairs().count(), 0);
        assert_eq!(ActionList::chain([Ids]).adjacent_pairs().count(), 0);
    }

    #[test]
    fn display_chains() {
        let c = ActionList::chain([Firewall, Ids]);
        assert_eq!(c.to_string(), "FW -> IDS");
        assert_eq!(Custom(9).to_string(), "NF9");
    }

    #[test]
    fn clone_is_shared() {
        let c = ActionList::chain([Firewall, Ids]);
        let d = c.clone();
        assert_eq!(c, d);
        assert_eq!(c.functions().as_ptr(), d.functions().as_ptr());
    }

    #[test]
    fn collect_from_iterator() {
        let c: ActionList = [Ids, TrafficMonitor].into_iter().collect();
        assert_eq!(c.len(), 2);
    }
}
