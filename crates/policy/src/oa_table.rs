//! Cache-optimized open-addressing storage for the per-flow state layer.
//!
//! Two structures live here, both built for the million-flow regime the
//! paper's proxy/middlebox tables reach at ISP scale:
//!
//! * [`OaTable`] — a linear-probing open-addressed index over a slab of
//!   entries. The probe array holds 16-byte `{hash, slot}` buckets (cheap
//!   to scan, no key/value loads until the 64-bit hash matches), values
//!   live in a slab with an intrusive free list, deletion uses
//!   backward-shift (no tombstone accumulation under one-packet-flow
//!   churn), and resizing is *incremental*: a grow retires the old bucket
//!   array and migrates a bounded number of buckets per subsequent
//!   insert/remove, so no single packet ever pays an O(n) rehash.
//! * [`NegativeCache`] — a set-associative, capacity-capped store for the
//!   `⟨f, null⟩` negative markers of §III.D. Unlike the positive table it
//!   must survive adversarial fill (millions of one-packet flows that
//!   match no policy), so it has a hard capacity and a deterministic
//!   stalest-entry eviction instead of growing.
//!
//! # Determinism
//!
//! Every operation is a pure function of the operation sequence: probe
//! order depends only on key hashes and insertion history, iteration and
//! [`OaTable::retain`] walk the slab in slot order, and the negative
//! cache's set index uses the *raw low bits* of [`FiveTuple::stable_hash`].
//! That last choice is load-bearing: flow sharding assigns a flow to shard
//! `stable_hash % N`, so with a power-of-two shard count dividing the
//! (power-of-two) set count, every cache set receives flows of exactly one
//! shard and each flow lands in the *same set index* no matter how many
//! shards exist. Per-set state — occupancy, eviction counts — is then a
//! pure function of that set's flow subsequence in global simulated-time
//! order, which makes negative-cache lengths and eviction counters
//! byte-identical across `SDM_SHARDS` 1/4 × `SDM_BATCH` 1/256 (power-of-two
//! shard counts; the invariance argument does not cover `SDM_SHARDS=3`).

use sdm_netsim::{FiveTuple, SimTime};

/// Keys usable in an [`OaTable`]: cheap to copy and hashed through a
/// *stable* (platform- and run-independent) 64-bit function, so probe
/// order — and therefore slab layout — is deterministic.
pub trait OaKey: Copy + Eq {
    /// The stable 64-bit hash identifying this key.
    fn oa_hash(&self) -> u64;
}

impl OaKey for FiveTuple {
    fn oa_hash(&self) -> u64 {
        self.stable_hash()
    }
}

/// Sentinel marking an empty bucket.
const EMPTY: u32 = u32::MAX;
/// Smallest bucket-array capacity (power of two).
const MIN_CAP: usize = 8;
/// Old-table buckets migrated per insert/remove while a rehash is in
/// flight. A grow doubles capacity, so at least `7C/8` inserts happen
/// before the *next* grow; migrating 8 buckets each drains the `C` old
/// buckets with a 7× margin — the drain provably completes long before
/// another resize can start.
const MIGRATE_BUDGET: usize = 8;

/// One probe-array cell: the key's full 64-bit hash plus the slab slot of
/// its entry (`EMPTY` if vacant). Keeping keys and values out of the probe
/// array means collision scans touch only these 16-byte cells.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    hash: u64,
    slot: u32,
}

const VACANT_BUCKET: Bucket = Bucket { hash: 0, slot: EMPTY };

/// Slab cell: an entry, or a link in the intrusive free list.
#[derive(Debug)]
enum Slot<K, V> {
    Occupied(K, V),
    Vacant(u32),
}

/// Home bucket via Fibonacci hashing: the multiply spreads entropy into
/// the high bits, which the shift selects. `cap` must be a power of two
/// `>= MIN_CAP` (so the shift is `< 64`).
fn home(hash: u64, cap: usize) -> usize {
    debug_assert!(cap.is_power_of_two() && cap >= MIN_CAP);
    let bits = cap.trailing_zeros();
    (hash.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - bits)) as usize
}

/// Linear-probe scan for `key`, returning its bucket index. Terminates at
/// the first empty bucket; the table never fills (grow happens at 7/8
/// load), so an empty bucket always exists.
fn probe_find<K: OaKey, V>(
    buckets: &[Bucket],
    slab: &[Slot<K, V>],
    hash: u64,
    key: &K,
) -> Option<usize> {
    if buckets.is_empty() {
        return None;
    }
    let mask = buckets.len() - 1;
    let mut i = home(hash, buckets.len());
    loop {
        let b = buckets[i];
        if b.slot == EMPTY {
            return None;
        }
        if b.hash == hash {
            if let Slot::Occupied(k, _) = &slab[b.slot as usize] {
                if k == key {
                    return Some(i);
                }
            }
        }
        i = (i + 1) & mask;
    }
}

/// Places a bucket at the first free cell of its probe sequence. The
/// caller guarantees the array is not full and the key not present.
fn probe_insert(buckets: &mut [Bucket], b: Bucket) {
    let mask = buckets.len() - 1;
    let mut i = home(b.hash, buckets.len());
    loop {
        if buckets[i].slot == EMPTY {
            buckets[i] = b;
            return;
        }
        i = (i + 1) & mask;
    }
}

/// Removes the bucket at `i` by backward-shifting: scan the probe run
/// after `i` until its first empty cell, moving into the hole every entry
/// whose home lies at or before the hole (cyclically) — i.e. entries for
/// which the hole is on their own probe path. Entries already at (or
/// probing from) a later home stay put, but the scan continues past them:
/// stopping there would strand movable entries further down the run.
/// Preserves the reachability invariant — every remaining entry has a
/// gap-free probe path from its home — without tombstones.
fn backward_shift_remove(buckets: &mut [Bucket], i: usize) -> Bucket {
    let mask = buckets.len() - 1;
    let removed = buckets[i];
    let mut hole = i;
    let mut j = i;
    loop {
        j = (j + 1) & mask;
        let b = buckets[j];
        if b.slot == EMPTY {
            buckets[hole] = VACANT_BUCKET;
            return removed;
        }
        // `b` may take the hole iff the hole sits on `b`'s probe path:
        // cyclic distance home->j must cover the distance hole->j.
        let h = home(b.hash, buckets.len());
        if j.wrapping_sub(h) & mask >= j.wrapping_sub(hole) & mask {
            buckets[hole] = b;
            hole = j;
        }
    }
}

/// Open-addressed hash table: linear probing over `{hash, slot}` buckets,
/// slab-backed values, incremental (budgeted) rehash and backward-shift
/// deletion. Deterministic: iteration and [`OaTable::retain`] run in slab
/// order, which is a pure function of the operation history.
///
/// # Example
///
/// ```
/// use sdm_policy::{OaKey, OaTable};
/// use sdm_netsim::{FiveTuple, Protocol};
///
/// let ft = FiveTuple {
///     src: "10.0.0.1".parse().unwrap(), dst: "10.1.0.1".parse().unwrap(),
///     src_port: 4000, dst_port: 80, proto: Protocol::Tcp,
/// };
/// let mut t: OaTable<FiveTuple, u64> = OaTable::new();
/// assert_eq!(t.insert(ft, 7), None);
/// assert_eq!(t.get(&ft), Some(&7));
/// assert_eq!(t.remove(&ft), Some(7));
/// assert!(t.is_empty());
/// ```
#[derive(Debug)]
pub struct OaTable<K, V> {
    /// Live probe array (power-of-two length, or empty before first insert).
    buckets: Vec<Bucket>,
    /// Retired probe array still being drained by the incremental rehash.
    old: Vec<Bucket>,
    /// Next `old` index the drain will examine. Cells below it are empty;
    /// backward-shift never moves an entry below the cursor, so every
    /// remaining old entry keeps a gap-free probe path.
    old_cursor: usize,
    /// Occupied buckets remaining in `old`.
    old_live: usize,
    /// Entry storage; freed cells form an intrusive free list.
    slab: Vec<Slot<K, V>>,
    /// Head of the free list (`EMPTY` when none).
    free_head: u32,
    /// Live entry count.
    len: usize,
}

impl<K: OaKey, V> Default for OaTable<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: OaKey, V> OaTable<K, V> {
    /// Creates an empty table. No allocation until the first insert.
    pub fn new() -> Self {
        OaTable {
            buckets: Vec::new(),
            old: Vec::new(),
            old_cursor: 0,
            old_live: 0,
            slab: Vec::new(),
            free_head: EMPTY,
            len: 0,
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current bucket-array capacity (live array only).
    pub fn capacity(&self) -> usize {
        self.buckets.len()
    }

    /// True while a retired bucket array is still being drained.
    pub fn rehash_in_flight(&self) -> bool {
        !self.old.is_empty()
    }

    /// Heap bytes held by the probe arrays and the slab (spare capacity
    /// included — this is allocation, not occupancy).
    pub fn allocated_bytes(&self) -> usize {
        (self.buckets.capacity() + self.old.capacity()) * std::mem::size_of::<Bucket>()
            + self.slab.capacity() * std::mem::size_of::<Slot<K, V>>()
    }

    /// Finds `key`'s bucket: `(in_old, bucket_index)`.
    fn locate(&self, hash: u64, key: &K) -> Option<(bool, usize)> {
        if let Some(i) = probe_find(&self.buckets, &self.slab, hash, key) {
            return Some((false, i));
        }
        if !self.old.is_empty() {
            if let Some(i) = probe_find(&self.old, &self.slab, hash, key) {
                return Some((true, i));
            }
        }
        None
    }

    /// Shared-borrow lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        let (in_old, i) = self.locate(key.oa_hash(), key)?;
        let slot = if in_old { self.old[i].slot } else { self.buckets[i].slot };
        match &self.slab[slot as usize] {
            Slot::Occupied(_, v) => Some(v),
            Slot::Vacant(_) => None,
        }
    }

    /// Mutable lookup. Does not advance the incremental rehash (reads stay
    /// read-shaped; migration progresses on inserts and removes).
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let (in_old, i) = self.locate(key.oa_hash(), key)?;
        let slot = if in_old { self.old[i].slot } else { self.buckets[i].slot };
        match &mut self.slab[slot as usize] {
            Slot::Occupied(_, v) => Some(v),
            Slot::Vacant(_) => None,
        }
    }

    /// Inserts `key -> value`, returning the previous value if any.
    /// Advances the in-flight rehash by at most `MIGRATE_BUDGET` buckets
    /// first, so resize cost is amortized O(1) per call.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.migrate(MIGRATE_BUDGET);
        let hash = key.oa_hash();
        if let Some((in_old, i)) = self.locate(hash, &key) {
            let slot = if in_old {
                // Promote the bucket into the live array so this entry
                // stops paying the two-array probe.
                let b = backward_shift_remove(&mut self.old, i);
                self.old_live -= 1;
                self.drop_old_if_drained();
                probe_insert(&mut self.buckets, b);
                b.slot
            } else {
                self.buckets[i].slot
            };
            return match &mut self.slab[slot as usize] {
                Slot::Occupied(_, v) => Some(std::mem::replace(v, value)),
                Slot::Vacant(_) => None,
            };
        }
        self.grow_if_needed();
        let slot = self.alloc_slot(key, value);
        probe_insert(&mut self.buckets, Bucket { hash, slot });
        self.len += 1;
        None
    }

    /// Removes `key`, returning its value. Also advances the in-flight
    /// rehash so delete-heavy phases still finish the drain.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.migrate(MIGRATE_BUDGET);
        let (in_old, i) = self.locate(key.oa_hash(), key)?;
        let b = if in_old {
            let b = backward_shift_remove(&mut self.old, i);
            self.old_live -= 1;
            self.drop_old_if_drained();
            b
        } else {
            backward_shift_remove(&mut self.buckets, i)
        };
        self.len -= 1;
        self.free_slot(b.slot)
    }

    /// Iterates live entries in slab-slot order (deterministic: a pure
    /// function of the insert/remove history).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slab.iter().filter_map(|s| match s {
            Slot::Occupied(k, v) => Some((k, v)),
            Slot::Vacant(_) => None,
        })
    }

    /// Keeps only entries for which `keep` returns true, walking the slab
    /// in slot order. Returns how many entries were removed. Allocation-free.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) -> usize {
        let mut removed = 0;
        for s in 0..self.slab.len() {
            let drop_key = match &self.slab[s] {
                Slot::Occupied(k, v) if !keep(k, v) => Some(*k),
                _ => None,
            };
            if let Some(k) = drop_key {
                if self.remove(&k).is_some() {
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Slab length — the bound for [`OaTable::slot`] indices. Vacant slots
    /// are included; the slab never shrinks, so a cursor over `0..slot_count()`
    /// is stable across removals.
    pub fn slot_count(&self) -> usize {
        self.slab.len()
    }

    /// Peeks slab slot `i` (None if vacant or out of range). Lets callers
    /// run budgeted cursor sweeps without allocating a key snapshot.
    pub fn slot(&self, i: usize) -> Option<(&K, &V)> {
        match self.slab.get(i) {
            Some(Slot::Occupied(k, v)) => Some((k, v)),
            _ => None,
        }
    }

    /// Advances the incremental rehash by up to `budget` old-array cells
    /// (each step either skips an empty cell or migrates one entry).
    fn migrate(&mut self, mut budget: usize) {
        if self.old.is_empty() {
            return;
        }
        while budget > 0 && self.old_cursor < self.old.len() && self.old_live > 0 {
            let i = self.old_cursor;
            if self.old[i].slot == EMPTY {
                self.old_cursor += 1;
            } else {
                // Backward-shift removal refills cell `i` from the rest of
                // the chain (never moving an entry below the cursor), so
                // the cursor re-examines `i` next iteration.
                let b = backward_shift_remove(&mut self.old, i);
                self.old_live -= 1;
                probe_insert(&mut self.buckets, b);
            }
            budget -= 1;
        }
        self.drop_old_if_drained();
    }

    /// Frees the retired array once its last entry has been migrated or
    /// removed.
    fn drop_old_if_drained(&mut self) {
        if !self.old.is_empty() && self.old_live == 0 {
            self.old = Vec::new();
            self.old_cursor = 0;
        }
    }

    /// At 7/8 load, retires the current bucket array and installs one of
    /// twice the capacity. O(capacity) for the fresh allocation's zero-fill
    /// only; entry migration is paid incrementally by later operations.
    fn grow_if_needed(&mut self) {
        let cap = self.buckets.len();
        if (self.len + 1) * 8 <= cap * 7 {
            return;
        }
        // The budget math guarantees the previous drain finished well
        // before the next grow; finish it here anyway so at most one
        // retired array ever exists.
        while !self.old.is_empty() {
            self.migrate(self.old.len());
        }
        let new_cap = (cap * 2).max(MIN_CAP);
        let fresh = vec![VACANT_BUCKET; new_cap];
        self.old = std::mem::replace(&mut self.buckets, fresh);
        self.old_cursor = 0;
        self.old_live = self.len;
    }

    /// Takes a slab cell from the free list (or grows the slab).
    fn alloc_slot(&mut self, key: K, value: V) -> u32 {
        if self.free_head != EMPTY {
            let s = self.free_head;
            self.free_head = match &self.slab[s as usize] {
                Slot::Vacant(next) => *next,
                Slot::Occupied(..) => EMPTY,
            };
            self.slab[s as usize] = Slot::Occupied(key, value);
            s
        } else {
            debug_assert!(self.slab.len() < EMPTY as usize, "slab slot space exhausted");
            self.slab.push(Slot::Occupied(key, value));
            (self.slab.len() - 1) as u32
        }
    }

    /// Returns a slab cell to the free list, yielding its value.
    fn free_slot(&mut self, slot: u32) -> Option<V> {
        let cell = std::mem::replace(&mut self.slab[slot as usize], Slot::Vacant(self.free_head));
        match cell {
            Slot::Occupied(_, v) => {
                self.free_head = slot;
                Some(v)
            }
            Slot::Vacant(next) => {
                // Unreachable by construction; restore the free list.
                self.slab[slot as usize] = Slot::Vacant(next);
                debug_assert!(false, "freed a vacant slot");
                None
            }
        }
    }
}

/// Associativity of the [`NegativeCache`]: entries per set.
pub const NEG_WAYS: usize = 8;

/// Default set count per table (so the default capacity is
/// `DEFAULT_NEG_SETS * NEG_WAYS` negative entries). Far above the
/// negative-entry population any legitimate workload produces per device,
/// so eviction engages only under adversarial fill.
pub const DEFAULT_NEG_SETS: usize = 8192;

/// One resident negative marker.
#[derive(Debug, Clone, Copy)]
struct NegWay {
    key: FiveTuple,
    last_seen: SimTime,
}

/// Capacity-capped set-associative store for negative (`⟨f, null⟩`) flow
/// markers: [`NEG_WAYS`]-way sets, lazily allocated, with deterministic
/// stalest-entry eviction when a set is full.
///
/// The set index is the raw low bits of [`FiveTuple::stable_hash`] — the
/// same function flow sharding uses — which makes per-set state invariant
/// across power-of-two `SDM_SHARDS` (see the module docs). An exhaustion
/// attack therefore costs at most `set_count * NEG_WAYS` resident entries
/// per table, with evictions counted for observability.
#[derive(Debug)]
pub struct NegativeCache {
    /// Lazily sized to `set_count` on first write; untouched sets stay
    /// unallocated (`None`), so memory tracks actual occupancy.
    sets: Vec<Option<Box<[Option<NegWay>; NEG_WAYS]>>>,
    set_count: usize,
    len: usize,
    evicted: u64,
}

impl NegativeCache {
    /// Creates a cache of `set_count` sets (`set_count * NEG_WAYS` total
    /// capacity). No allocation until the first insert.
    ///
    /// # Panics
    ///
    /// Panics unless `set_count` is a power of two (required for the
    /// shard-invariance argument in the module docs).
    pub fn new(set_count: usize) -> Self {
        assert!(
            set_count.is_power_of_two(),
            "negative-cache set count must be a power of two"
        );
        NegativeCache {
            sets: Vec::new(),
            set_count,
            len: 0,
            evicted: 0,
        }
    }

    /// Raw-low-bit set index (deliberately *not* the Fibonacci mix used by
    /// [`OaTable`]; see the module docs on shard invariance).
    fn set_index(&self, ft: &FiveTuple) -> usize {
        (ft.stable_hash() as usize) & (self.set_count - 1)
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no negative markers are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hard capacity: `set_count * NEG_WAYS`.
    pub fn capacity(&self) -> usize {
        self.set_count * NEG_WAYS
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.set_count
    }

    /// Entries displaced by capacity eviction over this cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evicted
    }

    /// Heap bytes held (set directory plus allocated sets).
    pub fn allocated_bytes(&self) -> usize {
        let dir = self.sets.capacity() * std::mem::size_of::<Option<Box<[Option<NegWay>; NEG_WAYS]>>>();
        let boxed = self
            .sets
            .iter()
            .filter(|s| s.is_some())
            .count()
            * std::mem::size_of::<[Option<NegWay>; NEG_WAYS]>();
        dir + boxed
    }

    /// The marker's last refresh time, if resident. Does not refresh.
    pub fn last_seen(&self, ft: &FiveTuple) -> Option<SimTime> {
        let set = self.sets.get(self.set_index(ft))?.as_ref()?;
        set.iter()
            .flatten()
            .find(|w| w.key == *ft)
            .map(|w| w.last_seen)
    }

    /// Refreshes a resident marker's soft state. Returns false if absent.
    pub fn refresh(&mut self, ft: &FiveTuple, now: SimTime) -> bool {
        let idx = self.set_index(ft);
        if let Some(Some(set)) = self.sets.get_mut(idx) {
            for w in set.iter_mut().flatten() {
                if w.key == *ft {
                    w.last_seen = now;
                    return true;
                }
            }
        }
        false
    }

    /// Removes a marker. Returns true if it was resident.
    pub fn remove(&mut self, ft: &FiveTuple) -> bool {
        let idx = self.set_index(ft);
        if let Some(Some(set)) = self.sets.get_mut(idx) {
            for w in set.iter_mut() {
                if matches!(w, Some(x) if x.key == *ft) {
                    *w = None;
                    self.len -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Inserts (or refreshes) a marker. When the set is full, the stalest
    /// way — minimum `last_seen`, lowest way index on ties — is evicted:
    /// deterministic, and exactly what an attacker's one-packet flows are
    /// (never refreshed, hence stalest first).
    pub fn insert(&mut self, ft: FiveTuple, now: SimTime) {
        if self.sets.is_empty() {
            self.sets.resize_with(self.set_count, || None);
        }
        let idx = self.set_index(&ft);
        let set = self.sets[idx].get_or_insert_with(|| Box::new([None; NEG_WAYS]));
        let mut free_way = None;
        let mut stalest = 0usize;
        let mut stalest_seen = SimTime(u64::MAX);
        for (w, cell) in set.iter_mut().enumerate() {
            match cell {
                Some(x) if x.key == ft => {
                    x.last_seen = now;
                    return;
                }
                Some(x) => {
                    if x.last_seen < stalest_seen {
                        stalest_seen = x.last_seen;
                        stalest = w;
                    }
                }
                None => {
                    if free_way.is_none() {
                        free_way = Some(w);
                    }
                }
            }
        }
        if let Some(w) = free_way {
            set[w] = Some(NegWay { key: ft, last_seen: now });
            self.len += 1;
        } else {
            set[stalest] = Some(NegWay { key: ft, last_seen: now });
            self.evicted += 1;
        }
    }

    /// Drops every marker for which `stale(last_seen)` is true; returns
    /// how many were dropped. Walks sets (then ways) in index order.
    pub fn purge(&mut self, stale: impl Fn(SimTime) -> bool) -> usize {
        let mut dropped = 0;
        for set in self.sets.iter_mut().flatten() {
            for cell in set.iter_mut() {
                if matches!(cell, Some(x) if stale(x.last_seen)) {
                    *cell = None;
                    dropped += 1;
                }
            }
        }
        self.len -= dropped;
        dropped
    }

    /// Virtual slot-space size for budgeted sweeps: `allocated_sets *
    /// NEG_WAYS`. Zero until the first insert, so never-negative tables
    /// cost sweep cursors nothing.
    pub fn slot_count(&self) -> usize {
        self.sets.len() * NEG_WAYS
    }

    /// Peeks virtual slot `i` (set `i / NEG_WAYS`, way `i % NEG_WAYS`).
    pub fn slot(&self, i: usize) -> Option<(FiveTuple, SimTime)> {
        let set = self.sets.get(i / NEG_WAYS)?.as_ref()?;
        set[i % NEG_WAYS].map(|w| (w.key, w.last_seen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_netsim::Protocol;
    use sdm_util::FxHashMap;

    /// Key with a controllable hash, to force collision chains.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    struct K {
        h: u64,
        tag: u32,
    }
    impl OaKey for K {
        fn oa_hash(&self) -> u64 {
            self.h
        }
    }

    fn ft(sp: u16, dp: u16) -> FiveTuple {
        FiveTuple {
            src: "10.0.0.1".parse().unwrap(),
            dst: "10.1.0.1".parse().unwrap(),
            src_port: sp,
            dst_port: dp,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn insert_get_remove_replace() {
        let mut t: OaTable<K, u32> = OaTable::new();
        let k = K { h: 42, tag: 0 };
        assert!(t.get(&k).is_none());
        assert_eq!(t.insert(k, 1), None);
        assert_eq!(t.get(&k), Some(&1));
        assert_eq!(t.insert(k, 2), Some(1), "replace returns old value");
        assert_eq!(t.len(), 1);
        *t.get_mut(&k).unwrap() += 10;
        assert_eq!(t.remove(&k), Some(12));
        assert_eq!(t.remove(&k), None);
        assert!(t.is_empty());
    }

    #[test]
    fn colliding_keys_coexist_and_backward_shift_keeps_chains_reachable() {
        let mut t: OaTable<K, u32> = OaTable::new();
        // Same hash -> same home bucket -> one probe chain.
        let ks: Vec<K> = (0..5).map(|tag| K { h: 7, tag }).collect();
        for (i, k) in ks.iter().enumerate() {
            t.insert(*k, i as u32);
        }
        // Remove from the middle of the chain; the rest must stay findable.
        assert_eq!(t.remove(&ks[2]), Some(2));
        for (i, k) in ks.iter().enumerate() {
            if i == 2 {
                assert!(t.get(k).is_none());
            } else {
                assert_eq!(t.get(k), Some(&(i as u32)));
            }
        }
    }

    #[test]
    fn matches_reference_map_through_grows_and_churn() {
        let mut t: OaTable<K, u64> = OaTable::new();
        let mut model: FxHashMap<K, u64> = FxHashMap::default();
        // Deterministic mixed workload crossing several resize thresholds,
        // with enough removals to exercise migration + free-list reuse.
        let mut x: u64 = 0x12345678;
        for step in 0..20_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = K { h: x % 512, tag: (x >> 32) as u32 % 256 };
            if x % 10 < 7 {
                assert_eq!(t.insert(k, step), model.insert(k, step), "step {step}");
            } else {
                assert_eq!(t.remove(&k), model.remove(&k), "step {step}");
            }
            assert_eq!(t.len(), model.len());
        }
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(v));
        }
        assert_eq!(t.iter().count(), model.len());
    }

    #[test]
    fn rehash_is_incremental_and_drains() {
        let mut t: OaTable<K, u32> = OaTable::new();
        for i in 0..100u32 {
            t.insert(K { h: i as u64 * 1031, tag: i }, i);
        }
        // 100 entries over several grows; the drain from the latest grow
        // may still be in flight, but a handful more operations finish it.
        for i in 0..100u32 {
            assert_eq!(t.get(&K { h: i as u64 * 1031, tag: i }), Some(&i));
        }
        let mut i = 100u32;
        while t.rehash_in_flight() {
            t.insert(K { h: i as u64 * 1031, tag: i }, i);
            i += 1;
            assert!(i < 1000, "drain must complete");
        }
        assert_eq!(t.len() as u32, i);
    }

    #[test]
    fn iteration_is_slab_ordered_and_deterministic() {
        let build = || {
            let mut t: OaTable<K, u32> = OaTable::new();
            for i in 0..50u32 {
                t.insert(K { h: (i as u64) * 977, tag: i }, i);
            }
            t.remove(&K { h: 10 * 977, tag: 10 });
            t.remove(&K { h: 20 * 977, tag: 20 });
            t.insert(K { h: 999_999, tag: 99 }, 99); // reuses freed slot 20
            t
        };
        let a: Vec<(K, u32)> = build().iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(K, u32)> = build().iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b, "same history -> same slab order");
        // Freed slots are reused LIFO: the later insert sits where tag 20
        // was (collected index 19 — the vacant slot 10 is skipped).
        assert_eq!(a[19].1, 99);
    }

    #[test]
    fn retain_removes_and_counts_in_slot_order() {
        let mut t: OaTable<K, u32> = OaTable::new();
        for i in 0..30u32 {
            t.insert(K { h: i as u64, tag: i }, i);
        }
        let removed = t.retain(|_, v| v % 3 != 0);
        assert_eq!(removed, 10);
        assert_eq!(t.len(), 20);
        assert!(t.iter().all(|(_, v)| v % 3 != 0));
    }

    #[test]
    fn slot_cursor_sees_every_entry() {
        let mut t: OaTable<K, u32> = OaTable::new();
        for i in 0..17u32 {
            t.insert(K { h: i as u64 * 3, tag: i }, i);
        }
        let mut seen = 0;
        for i in 0..t.slot_count() {
            if t.slot(i).is_some() {
                seen += 1;
            }
        }
        assert_eq!(seen, 17);
    }

    #[test]
    fn allocated_bytes_tracks_capacity() {
        let mut t: OaTable<K, u64> = OaTable::new();
        assert_eq!(t.allocated_bytes(), 0);
        for i in 0..1000u64 {
            t.insert(K { h: i.wrapping_mul(0x9E3779B9), tag: i as u32 }, i);
        }
        let bytes = t.allocated_bytes();
        assert!(bytes > 0);
        // Sanity bound: well under 200 bytes/entry for a u64 payload.
        assert!(bytes < 1000 * 200, "{bytes} bytes for 1000 entries");
    }

    #[test]
    fn negative_cache_caps_and_evicts_stalest() {
        let mut c = NegativeCache::new(1); // one 8-way set: everything collides
        for i in 0..NEG_WAYS as u16 {
            c.insert(ft(i + 1, 80), SimTime(i as u64));
        }
        assert_eq!(c.len(), NEG_WAYS);
        assert_eq!(c.evictions(), 0);
        // Refresh the stalest so the *second*-stalest is evicted next.
        assert!(c.refresh(&ft(1, 80), SimTime(100)));
        c.insert(ft(200, 80), SimTime(101));
        assert_eq!(c.len(), NEG_WAYS, "capacity is a hard cap");
        assert_eq!(c.evictions(), 1);
        assert!(c.last_seen(&ft(2, 80)).is_none(), "stalest way evicted");
        assert!(c.last_seen(&ft(1, 80)).is_some(), "refreshed way survives");
        assert!(c.last_seen(&ft(200, 80)).is_some());
    }

    #[test]
    fn negative_cache_insert_refreshes_existing() {
        let mut c = NegativeCache::new(4);
        c.insert(ft(1, 80), SimTime(0));
        c.insert(ft(1, 80), SimTime(50));
        assert_eq!(c.len(), 1);
        assert_eq!(c.last_seen(&ft(1, 80)), Some(SimTime(50)));
    }

    #[test]
    fn negative_cache_remove_and_purge() {
        let mut c = NegativeCache::new(16);
        for i in 0..10u16 {
            c.insert(ft(i + 1, 80), SimTime(i as u64));
        }
        assert!(c.remove(&ft(1, 80)));
        assert!(!c.remove(&ft(1, 80)));
        assert_eq!(c.len(), 9);
        let dropped = c.purge(|ls| ls.0 < 5);
        assert_eq!(dropped, 4, "last_seen 1..=4 purged (0 was removed)");
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn negative_cache_is_lazy() {
        let c = NegativeCache::new(DEFAULT_NEG_SETS);
        assert_eq!(c.allocated_bytes(), 0);
        assert_eq!(c.slot_count(), 0, "no virtual slots before first insert");
        let mut c = c;
        c.insert(ft(1, 80), SimTime(0));
        assert_eq!(c.slot_count(), DEFAULT_NEG_SETS * NEG_WAYS);
        // One boxed set plus the directory; far below full allocation.
        assert!(c.allocated_bytes() < DEFAULT_NEG_SETS * 64);
    }

    #[test]
    fn negative_cache_set_index_uses_raw_low_bits() {
        // The shard-invariance argument requires set == stable_hash % sets.
        let c = NegativeCache::new(64);
        let f = ft(123, 456);
        assert_eq!(c.set_index(&f), (f.stable_hash() as usize) & 63);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn negative_cache_rejects_non_pow2() {
        let _ = NegativeCache::new(12);
    }

    #[test]
    fn negative_cache_shard_partition_invariance() {
        // Splitting the same flow sequence across N=4 "shard" caches (by
        // stable_hash % 4) must reproduce the single-cache per-flow state
        // and total evictions, because 4 divides the set count.
        let flows: Vec<FiveTuple> = (0..2000u32)
            .map(|i| ft((i % 500 + 1) as u16, (i / 500 + 1) as u16))
            .collect();
        let mut single = NegativeCache::new(8);
        let mut sharded: Vec<NegativeCache> = (0..4).map(|_| NegativeCache::new(8)).collect();
        for (i, f) in flows.iter().enumerate() {
            let now = SimTime(i as u64);
            single.insert(*f, now);
            sharded[(f.stable_hash() % 4) as usize].insert(*f, now);
        }
        assert_eq!(
            single.len(),
            sharded.iter().map(|c| c.len()).sum::<usize>()
        );
        assert_eq!(
            single.evictions(),
            sharded.iter().map(|c| c.evictions()).sum::<u64>()
        );
        for f in &flows {
            let shard = &sharded[(f.stable_hash() % 4) as usize];
            assert_eq!(single.last_seen(f), shard.last_seen(f));
        }
    }
}
