//! The classifier a proxy or middlebox actually runs against its local
//! policy table `P_x`: either the straightforward linear first-match scan
//! or the hierarchical trie of [`crate::TrieClassifier`] (§III.D's
//! software lookup), behind one interface.

use sdm_netsim::FiveTuple;

use crate::classifier::TrieClassifier;
use crate::policy::{Policy, PolicyId, PolicySet, ProjectedPolicies};

/// Which lookup structure a device builds over its local policy table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClassifierKind {
    /// Linear first-match scan — fine for the small per-node tables of the
    /// paper's evaluation.
    #[default]
    Linear,
    /// Hierarchical source×destination trie — flat per-lookup cost, the
    /// right choice for large policy tables (§III.D).
    Trie,
}

/// A device-local policy classifier over a projection `P_x`, preserving
/// global policy ids and first-match priority.
///
/// # Example
///
/// ```
/// use sdm_policy::*;
/// use sdm_netsim::{FiveTuple, Protocol};
///
/// let mut set = PolicySet::new();
/// let id = set.push(Policy::new(
///     TrafficDescriptor::new().dst_port(80),
///     ActionList::chain([NetworkFunction::Firewall]),
/// ));
/// let projection = set.project(&[id]);
/// let linear = LocalClassifier::new(projection.clone(), ClassifierKind::Linear);
/// let trie = LocalClassifier::new(projection, ClassifierKind::Trie);
/// let ft = FiveTuple {
///     src: "10.0.0.1".parse().unwrap(), dst: "10.1.0.1".parse().unwrap(),
///     src_port: 9000, dst_port: 80, proto: Protocol::Tcp,
/// };
/// assert_eq!(linear.first_match(&ft).unwrap().0, id);
/// assert_eq!(trie.first_match(&ft).unwrap().0, id);
/// ```
#[derive(Debug)]
pub struct LocalClassifier {
    table: ProjectedPolicies,
    /// Trie over the densified projection, plus the dense→global id map.
    trie: Option<(TrieClassifier, Vec<PolicyId>)>,
}

impl LocalClassifier {
    /// Builds the classifier of the requested kind over a projection.
    pub fn new(table: ProjectedPolicies, kind: ClassifierKind) -> Self {
        let trie = match kind {
            ClassifierKind::Linear => None,
            ClassifierKind::Trie => {
                // Densify: projection order is global priority order, so
                // dense ids preserve first-match semantics.
                let ids: Vec<PolicyId> = table.iter().map(|(id, _)| id).collect();
                let dense: PolicySet = table.iter().map(|(_, p)| p.clone()).collect();
                Some((TrieClassifier::build(&dense), ids))
            }
        };
        LocalClassifier { table, trie }
    }

    /// First matching policy in global priority order, with its global id.
    pub fn first_match(&self, ft: &FiveTuple) -> Option<(PolicyId, &Policy)> {
        match &self.trie {
            None => self.table.first_match(ft),
            Some((trie, ids)) => {
                let dense = trie.classify(ft)?;
                let global = ids[dense.index()];
                Some((global, self.table.get(global)?))
            }
        }
    }

    /// Number of local policies.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The underlying projection.
    pub fn table(&self) -> &ProjectedPolicies {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionList, NetworkFunction::*};
    use crate::descriptor::TrafficDescriptor;
    use sdm_netsim::{Prefix, Protocol};

    fn ft(src: &str, dst: &str, dp: u16) -> FiveTuple {
        FiveTuple {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_port: 9999,
            dst_port: dp,
            proto: Protocol::Tcp,
        }
    }

    fn sample_set() -> PolicySet {
        let mut set = PolicySet::new();
        set.push(Policy::new(
            TrafficDescriptor::new()
                .src_prefix("10.0.0.0/12".parse::<Prefix>().unwrap())
                .dst_port(80),
            ActionList::chain([Firewall]),
        ));
        set.push(Policy::new(
            TrafficDescriptor::new().dst_port(80),
            ActionList::chain([Ids]),
        ));
        set.push(Policy::new(
            TrafficDescriptor::new().dst_port(22),
            ActionList::chain([TrafficMonitor]),
        ));
        set
    }

    #[test]
    fn both_kinds_agree_with_global_ids() {
        let set = sample_set();
        // project a subset out of order
        let proj = set.project(&[PolicyId(2), PolicyId(0)]);
        let linear = LocalClassifier::new(proj.clone(), ClassifierKind::Linear);
        let trie = LocalClassifier::new(proj, ClassifierKind::Trie);
        for t in [
            ft("10.1.0.1", "20.0.0.1", 80),
            ft("99.0.0.1", "20.0.0.1", 80),
            ft("10.1.0.1", "20.0.0.1", 22),
            ft("10.1.0.1", "20.0.0.1", 443),
        ] {
            assert_eq!(
                linear.first_match(&t).map(|(id, _)| id),
                trie.first_match(&t).map(|(id, _)| id),
                "packet {t}"
            );
        }
        // global ids survive the trie densification
        assert_eq!(
            trie.first_match(&ft("10.1.0.1", "2.2.2.2", 80)).unwrap().0,
            PolicyId(0)
        );
        assert_eq!(
            trie.first_match(&ft("10.1.0.1", "2.2.2.2", 22)).unwrap().0,
            PolicyId(2)
        );
    }

    #[test]
    fn empty_projection_matches_nothing() {
        let proj = ProjectedPolicies::default();
        for kind in [ClassifierKind::Linear, ClassifierKind::Trie] {
            let c = LocalClassifier::new(proj.clone(), kind);
            assert!(c.is_empty());
            assert!(c.first_match(&ft("1.1.1.1", "2.2.2.2", 80)).is_none());
        }
    }

    #[test]
    fn priority_preserved_within_projection() {
        let set = sample_set();
        let proj = set.project(&[PolicyId(0), PolicyId(1)]);
        let trie = LocalClassifier::new(proj, ClassifierKind::Trie);
        // a 10/12-sourced web packet matches both; policy 0 must win
        assert_eq!(
            trie.first_match(&ft("10.1.0.1", "2.2.2.2", 80)).unwrap().0,
            PolicyId(0)
        );
        // outside 10/12, only policy 1 matches
        assert_eq!(
            trie.first_match(&ft("99.1.0.1", "2.2.2.2", 80)).unwrap().0,
            PolicyId(1)
        );
    }
}
