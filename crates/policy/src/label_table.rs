//! The middlebox label table of §III.E: `⟨src | l, a⟩` entries (the last
//! middlebox in a chain also stores the flow's final destination `dst`),
//! keyed by the concatenation of the flow's source address and the
//! proxy-assigned label.

use std::fmt;

use sdm_netsim::{Ipv4Addr, Label, SimTime};
use sdm_util::FxHashMap;

use crate::action::ActionList;
use crate::policy::PolicyId;

/// The lookup key `src | l`: source address concatenated with label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelKey {
    /// The flow's (inner) source address.
    pub src: Ipv4Addr,
    /// The proxy-assigned label carried in the packet header.
    pub label: Label,
}

impl fmt::Display for LabelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}|{}", self.src, self.label)
    }
}

/// One label-table entry at a middlebox.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelEntry {
    /// The action list retrieved from the policy table when the first
    /// packet passed through.
    pub actions: ActionList,
    /// Which policy produced the action list.
    pub policy: PolicyId,
    /// Position of *this* middlebox's function within `actions`.
    pub position: usize,
    /// Address of the next middlebox chosen for this flow (pinned when the
    /// first packet passed through, so label-switched packets follow the
    /// same path), or `None` at the last middlebox.
    pub next_hop: Option<Ipv4Addr>,
    /// The flow's original destination — stored only by the last middlebox
    /// in the chain (`⟨src | l, a, dst⟩`).
    pub final_dst: Option<Ipv4Addr>,
    last_seen: SimTime,
}

/// Soft-state label table (§III.E), one per middlebox.
///
/// # Example
///
/// ```
/// use sdm_policy::{LabelTable, LabelKey, ActionList, NetworkFunction, PolicyId};
/// use sdm_netsim::{Label, SimTime};
///
/// let mut t = LabelTable::new(1000);
/// let key = LabelKey { src: "10.0.0.1".parse().unwrap(), label: Label(1) };
/// t.insert(key, ActionList::chain([NetworkFunction::Firewall]), PolicyId(0),
///          0, Some("172.16.0.2".parse().unwrap()), None, SimTime(0));
/// assert!(t.lookup(&key, SimTime(10)).is_some());
/// ```
#[derive(Debug)]
pub struct LabelTable {
    entries: FxHashMap<LabelKey, LabelEntry>,
    ttl: u64,
}

impl LabelTable {
    /// Creates an empty table with soft-state lifetime `ttl` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `ttl == 0`.
    pub fn new(ttl: u64) -> Self {
        assert!(ttl > 0, "label-table ttl must be positive");
        LabelTable {
            entries: FxHashMap::default(),
            ttl,
        }
    }

    /// Installs an entry for `key`. Replaces any previous entry.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        key: LabelKey,
        actions: ActionList,
        policy: PolicyId,
        position: usize,
        next_hop: Option<Ipv4Addr>,
        final_dst: Option<Ipv4Addr>,
        now: SimTime,
    ) {
        self.entries.insert(
            key,
            LabelEntry {
                actions,
                policy,
                position,
                next_hop,
                final_dst,
                last_seen: now,
            },
        );
    }

    /// Looks up a label key, refreshing its soft state; expired entries are
    /// removed and report as misses.
    pub fn lookup(&mut self, key: &LabelKey, now: SimTime) -> Option<&LabelEntry> {
        let expired = match self.entries.get(key) {
            None => return None,
            Some(e) => now.0.saturating_sub(e.last_seen.0) > self.ttl,
        };
        if expired {
            self.entries.remove(key);
            return None;
        }
        let e = self.entries.get_mut(key).expect("checked above");
        e.last_seen = now;
        Some(e)
    }

    /// Removes an entry, returning it if present.
    pub fn remove(&mut self, key: &LabelKey) -> Option<LabelEntry> {
        self.entries.remove(key)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::NetworkFunction::*;

    fn key(label: u16) -> LabelKey {
        LabelKey {
            src: "10.0.0.1".parse().unwrap(),
            label: Label(label),
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let mut t = LabelTable::new(100);
        t.insert(
            key(1),
            ActionList::chain([Firewall, Ids]),
            PolicyId(2),
            0,
            Some("172.16.0.5".parse().unwrap()),
            None,
            SimTime(0),
        );
        let e = t.lookup(&key(1), SimTime(5)).unwrap();
        assert_eq!(e.policy, PolicyId(2));
        assert_eq!(e.position, 0);
        assert_eq!(e.next_hop, Some("172.16.0.5".parse().unwrap()));
        assert_eq!(e.final_dst, None);
        assert!(t.remove(&key(1)).is_some());
        assert!(t.is_empty());
    }

    #[test]
    fn last_hop_entry_stores_dst() {
        let mut t = LabelTable::new(100);
        t.insert(
            key(2),
            ActionList::chain([Ids]),
            PolicyId(0),
            0,
            None,
            Some("10.5.0.9".parse().unwrap()),
            SimTime(0),
        );
        let e = t.lookup(&key(2), SimTime(1)).unwrap();
        assert_eq!(e.final_dst, Some("10.5.0.9".parse().unwrap()));
        assert!(e.next_hop.is_none());
    }

    #[test]
    fn distinct_sources_do_not_collide() {
        let mut t = LabelTable::new(100);
        let k1 = LabelKey {
            src: "10.0.0.1".parse().unwrap(),
            label: Label(7),
        };
        let k2 = LabelKey {
            src: "10.0.0.2".parse().unwrap(),
            label: Label(7),
        };
        t.insert(k1, ActionList::permit(), PolicyId(0), 0, None, None, SimTime(0));
        assert!(t.lookup(&k2, SimTime(0)).is_none());
        assert!(t.lookup(&k1, SimTime(0)).is_some());
    }

    #[test]
    fn soft_state_expiry() {
        let mut t = LabelTable::new(10);
        t.insert(key(3), ActionList::permit(), PolicyId(0), 0, None, None, SimTime(0));
        assert!(t.lookup(&key(3), SimTime(9)).is_some()); // refreshes
        assert!(t.lookup(&key(3), SimTime(18)).is_some());
        assert!(t.lookup(&key(3), SimTime(40)).is_none()); // expired
        assert_eq!(t.len(), 0);
    }

    #[test]
    #[should_panic(expected = "ttl")]
    fn zero_ttl_rejected() {
        let _ = LabelTable::new(0);
    }
}
