//! The middlebox label table of §III.E: `⟨src | l, a⟩` entries (the last
//! middlebox in a chain also stores the flow's final destination `dst`),
//! keyed by the concatenation of the flow's source address and the
//! proxy-assigned label.
//!
//! Since PR 9 the storage is the open-addressed [`OaTable`] (slab-backed,
//! incremental rehash, backward-shift deletion) shared with the flow cache
//! — see [`crate::oa_table`].

use std::fmt;

use sdm_netsim::{Ipv4Addr, Label, SimTime};

use crate::action::ActionList;
use crate::oa_table::{OaKey, OaTable};
use crate::policy::PolicyId;

/// The lookup key `src | l`: source address concatenated with label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelKey {
    /// The flow's (inner) source address.
    pub src: Ipv4Addr,
    /// The proxy-assigned label carried in the packet header.
    pub label: Label,
}

impl fmt::Display for LabelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}|{}", self.src, self.label)
    }
}

impl OaKey for LabelKey {
    /// Stable FNV-1a over the 6 key bytes (`src` then `label`, big-endian)
    /// — the same construction as [`sdm_netsim::FiveTuple::stable_hash`].
    fn oa_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        };
        for b in self.src.0.to_be_bytes() {
            eat(b);
        }
        for b in self.label.0.to_be_bytes() {
            eat(b);
        }
        h
    }
}

/// One label-table entry at a middlebox.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelEntry {
    /// The action list retrieved from the policy table when the first
    /// packet passed through.
    pub actions: ActionList,
    /// Which policy produced the action list.
    pub policy: PolicyId,
    /// Position of *this* middlebox's function within `actions`.
    pub position: usize,
    /// Address of the next middlebox chosen for this flow (pinned when the
    /// first packet passed through, so label-switched packets follow the
    /// same path), or `None` at the last middlebox.
    pub next_hop: Option<Ipv4Addr>,
    /// The flow's original destination — stored only by the last middlebox
    /// in the chain (`⟨src | l, a, dst⟩`).
    pub final_dst: Option<Ipv4Addr>,
    last_seen: SimTime,
}

/// Soft-state label table (§III.E), one per middlebox.
///
/// # Example
///
/// ```
/// use sdm_policy::{LabelTable, LabelKey, ActionList, NetworkFunction, PolicyId};
/// use sdm_netsim::{Label, SimTime};
///
/// let mut t = LabelTable::new(1000);
/// let key = LabelKey { src: "10.0.0.1".parse().unwrap(), label: Label(1) };
/// t.insert(key, ActionList::chain([NetworkFunction::Firewall]), PolicyId(0),
///          0, Some("172.16.0.2".parse().unwrap()), None, SimTime(0));
/// assert!(t.lookup(&key, SimTime(10)).is_some());
/// ```
#[derive(Debug)]
pub struct LabelTable {
    entries: OaTable<LabelKey, LabelEntry>,
    ttl: u64,
}

impl LabelTable {
    /// Creates an empty table with soft-state lifetime `ttl` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `ttl == 0`.
    pub fn new(ttl: u64) -> Self {
        assert!(ttl > 0, "label-table ttl must be positive");
        LabelTable {
            entries: OaTable::new(),
            ttl,
        }
    }

    /// Installs an entry for `key`. Replaces any previous entry.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        key: LabelKey,
        actions: ActionList,
        policy: PolicyId,
        position: usize,
        next_hop: Option<Ipv4Addr>,
        final_dst: Option<Ipv4Addr>,
        now: SimTime,
    ) {
        self.entries.insert(
            key,
            LabelEntry {
                actions,
                policy,
                position,
                next_hop,
                final_dst,
                last_seen: now,
            },
        );
    }

    /// Looks up a label key, refreshing its soft state; expired entries are
    /// removed and report as misses.
    pub fn lookup(&mut self, key: &LabelKey, now: SimTime) -> Option<&LabelEntry> {
        let expired = match self.entries.get(key) {
            None => return None,
            Some(e) => now.0.saturating_sub(e.last_seen.0) > self.ttl,
        };
        if expired {
            self.entries.remove(key);
            return None;
        }
        let e = self.entries.get_mut(key)?;
        e.last_seen = now;
        Some(e)
    }

    /// Removes an entry, returning it if present.
    pub fn remove(&mut self, key: &LabelKey) -> Option<LabelEntry> {
        self.entries.remove(key)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Heap bytes held by the table (probe arrays + slab; allocation, not
    /// occupancy).
    pub fn allocated_bytes(&self) -> usize {
        self.entries.allocated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::NetworkFunction::*;

    fn key(label: u16) -> LabelKey {
        LabelKey {
            src: "10.0.0.1".parse().unwrap(),
            label: Label(label),
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let mut t = LabelTable::new(100);
        t.insert(
            key(1),
            ActionList::chain([Firewall, Ids]),
            PolicyId(2),
            0,
            Some("172.16.0.5".parse().unwrap()),
            None,
            SimTime(0),
        );
        let e = t.lookup(&key(1), SimTime(5)).unwrap();
        assert_eq!(e.policy, PolicyId(2));
        assert_eq!(e.position, 0);
        assert_eq!(e.next_hop, Some("172.16.0.5".parse().unwrap()));
        assert_eq!(e.final_dst, None);
        assert!(t.remove(&key(1)).is_some());
        assert!(t.is_empty());
    }

    #[test]
    fn last_hop_entry_stores_dst() {
        let mut t = LabelTable::new(100);
        t.insert(
            key(2),
            ActionList::chain([Ids]),
            PolicyId(0),
            0,
            None,
            Some("10.5.0.9".parse().unwrap()),
            SimTime(0),
        );
        let e = t.lookup(&key(2), SimTime(1)).unwrap();
        assert_eq!(e.final_dst, Some("10.5.0.9".parse().unwrap()));
        assert!(e.next_hop.is_none());
    }

    #[test]
    fn distinct_sources_do_not_collide() {
        let mut t = LabelTable::new(100);
        let k1 = LabelKey {
            src: "10.0.0.1".parse().unwrap(),
            label: Label(7),
        };
        let k2 = LabelKey {
            src: "10.0.0.2".parse().unwrap(),
            label: Label(7),
        };
        t.insert(k1, ActionList::permit(), PolicyId(0), 0, None, None, SimTime(0));
        assert!(t.lookup(&k2, SimTime(0)).is_none());
        assert!(t.lookup(&k1, SimTime(0)).is_some());
    }

    #[test]
    fn soft_state_expiry() {
        let mut t = LabelTable::new(10);
        t.insert(key(3), ActionList::permit(), PolicyId(0), 0, None, None, SimTime(0));
        assert!(t.lookup(&key(3), SimTime(9)).is_some()); // refreshes
        assert!(t.lookup(&key(3), SimTime(18)).is_some());
        assert!(t.lookup(&key(3), SimTime(40)).is_none()); // expired
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn many_labels_survive_incremental_growth() {
        // cross several resize thresholds and keep every entry reachable
        let mut t = LabelTable::new(1_000_000);
        for l in 0..2000u16 {
            t.insert(key(l), ActionList::permit(), PolicyId(0), 0, None, None, SimTime(0));
        }
        assert_eq!(t.len(), 2000);
        for l in 0..2000u16 {
            assert!(t.lookup(&key(l), SimTime(1)).is_some(), "label {l}");
        }
        for l in (0..2000u16).step_by(2) {
            assert!(t.remove(&key(l)).is_some());
        }
        assert_eq!(t.len(), 1000);
        for l in (1..2000u16).step_by(2) {
            assert!(t.lookup(&key(l), SimTime(2)).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "ttl")]
    fn zero_ttl_rejected() {
        let _ = LabelTable::new(0);
    }
}
