//! Middlebox policy model for the SDM policy-enforcement reproduction.
//!
//! Implements the policy machinery of §II–III of the paper:
//!
//! * [`TrafficDescriptor`] — multi-field, wildcard-capable match conditions
//!   (the columns of Table I).
//! * [`ActionList`], [`NetworkFunction`] — ordered function chains such as
//!   `FW -> IDS -> WP`.
//! * [`Policy`], [`PolicySet`] — the network-wide ordered policy list with
//!   first-match semantics, plus the relevance projections (`P_x`) the
//!   controller installs at proxies and middleboxes.
//! * [`TrieClassifier`] — hierarchical-trie multi-field classification,
//!   semantically identical to the linear scan (§III.D's software lookup).
//! * [`FlowTable`], [`LabelAllocator`] — the soft-state per-flow cache with
//!   negative caching that spares most packets the multi-field lookup
//!   (§III.D), extended with the label fields of §III.E.
//! * [`LabelTable`] — the middlebox-side `⟨src|l, a⟩` table that supports
//!   label switching without IP-over-IP encapsulation (§III.E).
//!
//! # Example
//!
//! ```
//! use sdm_policy::*;
//! use sdm_netsim::{FiveTuple, Protocol};
//!
//! let mut set = PolicySet::new();
//! set.push(Policy::new(
//!     TrafficDescriptor::new().dst_port(80),
//!     ActionList::chain([NetworkFunction::Firewall, NetworkFunction::Ids]),
//! ));
//! let trie = TrieClassifier::build(&set);
//! let ft = FiveTuple {
//!     src: "10.0.0.1".parse().unwrap(),
//!     dst: "10.1.0.1".parse().unwrap(),
//!     src_port: 4000, dst_port: 80, proto: Protocol::Tcp,
//! };
//! let id = trie.classify(&ft).unwrap();
//! assert_eq!(set.get(id).unwrap().actions.to_string(), "FW -> IDS");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod classifier;
mod descriptor;
mod flow_table;
mod label_table;
mod local;
pub mod oa_table;
mod policy;
mod text;

pub use action::{ActionList, NetworkFunction};
pub use classifier::TrieClassifier;
pub use local::{ClassifierKind, LocalClassifier};
pub use descriptor::{PortMatch, ProtoMatch, TrafficDescriptor};
pub use flow_table::{ClassInterner, FlowEntry, FlowTable, FlowTableStats, LabelAllocator, PolicyClassId};
pub use label_table::{LabelEntry, LabelKey, LabelTable};
pub use oa_table::{NegativeCache, OaKey, OaTable, DEFAULT_NEG_SETS, NEG_WAYS};
pub use policy::{Policy, PolicyId, PolicySet, ProjectedPolicies};
pub use text::{parse_policies, parse_policy_line, policy_to_line, ParsePolicyError};
